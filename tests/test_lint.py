"""Tests for the ``repro.lint`` static-analysis engine and its rules.

Each rule gets a known-bad fixture it must fire on and a known-good
fixture it must stay silent on; the engine-level tests cover suppression
comments, syntax-error handling, the reporters, the mypy ratchet, and —
the self-check the whole PR hangs on — a clean run over the shipped tree.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Finding,
    LintEngine,
    module_name,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.lint import ratchet
from repro.lint.reporters import REPORT_SCHEMA

REPO = Path(__file__).resolve().parents[1]


def lint_file(tmp_path, relpath, code, schema_path=None):
    """Write ``code`` at ``tmp_path/relpath`` and lint just that file."""
    file = tmp_path / relpath
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(code))
    engine = LintEngine(schema_path=schema_path or tmp_path / "schema.json")
    return engine.lint_paths([file])


def rules_fired(report):
    return {finding.rule for finding in report.findings}


class TestCatalog:
    def test_all_eight_rules_registered(self):
        assert sorted(RULES) == [f"SIM00{i}" for i in range(1, 9)]

    def test_rule_codes_match_convention(self):
        for code, rule in RULES.items():
            assert re.fullmatch(r"SIM\d{3}", code)
            assert rule.code == code
            assert rule.title
            assert rule.rationale

    def test_explain_includes_examples(self):
        for rule in RULES.values():
            text = rule.explain()
            assert rule.code in text
            assert "bad:" in text
            assert "good:" in text


class TestSim001UnseededRandom:
    def test_global_random_call_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        assert rules_fired(report) == {"SIM001"}

    def test_numpy_global_state_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
        )
        assert report.counts_by_rule() == {"SIM001": 2}

    def test_from_import_of_global_fn_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            from random import shuffle

            def mix(items):
                shuffle(items)
            """,
        )
        assert "SIM001" in rules_fired(report)

    def test_seeded_instances_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            import numpy as np

            def make(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + float(gen.random())
            """,
        )
        assert report.clean


class TestSim002WallClock:
    def test_time_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rules_fired(report) == {"SIM002"}

    def test_from_time_import_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """,
        )
        assert "SIM002" in rules_fired(report)

    def test_profile_module_is_exempt(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/analysis/profile.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
        )
        assert report.clean

    def test_benchmarks_path_is_exempt(self, tmp_path):
        report = lint_file(
            tmp_path,
            "benchmarks/bench_sim.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
        )
        assert report.clean


class TestSim003ImportTimeEnv:
    def test_module_scope_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            DEBUG = os.environ.get("REPRO_DEBUG", "")
            """,
        )
        assert rules_fired(report) == {"SIM003"}

    def test_class_body_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            class Config:
                level = int(os.getenv("LEVEL", "0"))
            """,
        )
        assert rules_fired(report) == {"SIM003"}

    def test_call_time_read_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            def check_level():
                return os.environ.get("REPRO_SIM_CHECK", "")
            """,
        )
        assert report.clean


class TestSim004HookGating:
    BAD = """
    class FTQ:
        def push(self, block):
            self.observer.emit("ftq_enqueue", count=block.count)
    """

    def test_ungated_hook_fires_in_core(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/ftq.py", self.BAD)
        assert rules_fired(report) == {"SIM004"}

    def test_outside_pipeline_packages_not_checked(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/analysis/ftq.py", self.BAD)
        assert report.clean

    def test_hoisted_pointer_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    observer = self.observer
                    if observer is not None:
                        observer.emit("ftq_enqueue", count=block.count)
            """,
        )
        assert report.clean

    def test_early_exit_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if self.observer is None:
                        return
                    self.observer.emit("ftq_enqueue", count=block.count)
            """,
        )
        assert report.clean

    def test_and_chain_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if self.checker is not None and self.checker.armed:
                        self.checker.check(block)
            """,
        )
        assert report.clean

    def test_gate_on_other_object_still_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if block is not None:
                        self.observer.emit("ftq_enqueue")
            """,
        )
        assert rules_fired(report) == {"SIM004"}


class TestSim005FloatCounters:
    def test_ratio_into_counter_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def tick(self, served, asked):
                    self.stats.add("service_ratio", served / asked)
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_float_literal_set_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def reset(self):
                    self.stats.set("weight", 1.5)
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_float_typed_statblock_field_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/common/stats2.py",
            """
            class StatBlock:
                def add(self, key: str, amount: float = 1) -> None:
                    pass
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_integer_counts_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def tick(self, served, asked):
                    self.stats.add("uops_served", served)
                    self.stats.add("uops_asked", asked)
            """,
        )
        assert report.clean


class TestSim006SetIteration:
    def test_for_over_set_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(stats):
                pending = {4, 8, 15}
                out = []
                for line in pending:
                    out.append(line)
                return out
            """,
        )
        assert rules_fired(report) == {"SIM006"}

    def test_annotated_set_param_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(pending, stats):
                lines: set[int] = pending
                return [line for line in lines]
            """,
        )
        assert rules_fired(report) == {"SIM006"}

    def test_sorted_iteration_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(stats):
                pending = {4, 8, 15}
                return [line for line in sorted(pending)]
            """,
        )
        assert report.clean

    def test_order_free_reductions_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def summarize(pending):
                seen = {4, 8, 15}
                total = sum(x for x in seen)
                return len(seen), total, any(x > 3 for x in seen), max(seen)
            """,
        )
        assert report.clean


SIM007_RUNNER = """
CACHE_VERSION = 7
"""

SIM007_PIPELINE = """
class SimResult:
    SCHEMA = 1

    def __init__(self, name):
        self.name = name

    def to_dict(self):
        return {"schema": self.SCHEMA, "name": self.name}
"""

SIM007_STATS = """
class StatBlock:
    SCHEMA = 1

    def __init__(self, name=""):
        self.name = name

    def to_dict(self):
        return {"schema": self.SCHEMA, "name": self.name, "counters": {}}
"""


class TestSim007CacheSchema:
    def write_tree(self, tmp_path, runner=SIM007_RUNNER, pipeline=SIM007_PIPELINE):
        for relpath, code in (
            ("src/repro/analysis/runner.py", runner),
            ("src/repro/core/pipeline.py", pipeline),
            ("src/repro/common/stats.py", SIM007_STATS),
        ):
            file = tmp_path / relpath
            file.parent.mkdir(parents=True, exist_ok=True)
            file.write_text(textwrap.dedent(code))
        return tmp_path / "src"

    def test_missing_snapshot_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "--write-schema" in report.findings[0].message

    def test_snapshot_roundtrip_is_clean(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        snapshot = engine.write_schema_snapshot([src])
        assert snapshot["cache_version"] == 7
        assert engine.lint_paths([src]).clean

    def test_shape_change_without_bump_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        grown = SIM007_PIPELINE.replace(
            '"name": self.name}', '"name": self.name, "power_w": 0}'
        )
        self.write_tree(tmp_path, pipeline=grown)
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "CACHE_VERSION" in report.findings[0].message

    def test_version_bump_with_stale_snapshot_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        self.write_tree(tmp_path, runner="CACHE_VERSION = 8\n")
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "stale" in report.findings[0].message

    def test_bump_plus_refresh_is_clean(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        grown = SIM007_PIPELINE.replace(
            '"name": self.name}', '"name": self.name, "power_w": 0}'
        )
        self.write_tree(tmp_path, runner="CACHE_VERSION = 8\n", pipeline=grown)
        engine.write_schema_snapshot([src])
        assert engine.lint_paths([src]).clean

    def test_partial_run_skips_the_rule(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/other.py", "X = 1\n")
        assert report.clean


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)  # lint-ok: SIM001 fixture needs global RNG
            """,
        )
        assert report.clean
        assert report.suppressed == 1

    def test_file_suppression(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            # lint-ok-file: SIM002
            import time

            def a():
                return time.time()

            def b():
                return time.monotonic()
            """,
        )
        assert report.clean
        assert report.suppressed == 2

    def test_suppression_is_rule_specific(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)  # lint-ok: SIM002 wrong code
            """,
        )
        assert rules_fired(report) == {"SIM001"}
        assert report.suppressed == 0

    def test_parse_multiple_codes(self):
        sup = parse_suppressions("x = 1  # lint-ok: SIM001, SIM005 both fine\n")
        assert sup.by_line[1] == frozenset({"SIM001", "SIM005"})
        assert not sup.whole_file


class TestEngine:
    def test_syntax_error_becomes_sim000(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        assert rules_fired(report) == {"SIM000"}

    def test_findings_are_sorted(self, tmp_path):
        src = tmp_path / "src" / "repro" / "core"
        src.mkdir(parents=True)
        (src / "b.py").write_text("import time\nT = time.time()\n")
        (src / "a.py").write_text("import time\nT = time.time()\n")
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        report = engine.lint_paths([tmp_path / "src"])
        paths = [finding.path for finding in report.findings]
        assert paths == sorted(paths)

    def test_module_name_anchors_on_repro(self):
        assert module_name(Path("src/repro/core/ucp.py")) == "repro.core.ucp"
        assert module_name(Path("/tmp/x/src/repro/common/__init__.py")) == (
            "repro.common"
        )
        assert module_name(Path("scripts/tool.py")) == "tool"


class TestReporters:
    def make_report(self, tmp_path):
        return lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )

    def test_text_format(self, tmp_path):
        report = self.make_report(tmp_path)
        text = render_text(report)
        finding = report.findings[0]
        assert f"{finding.path}:{finding.line}:{finding.col}: SIM002" in text
        assert "1 finding(s)" in text

    def test_json_format(self, tmp_path):
        report = self.make_report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["clean"] is False
        assert payload["counts_by_rule"] == {"SIM002": 1}
        assert payload["findings"][0]["rule"] == "SIM002"
        assert set(payload["findings"][0]) == {"path", "line", "col", "rule", "message"}


class TestRatchet:
    OUTPUT = textwrap.dedent(
        """\
        src/repro/core/pipeline.py:10: error: Incompatible types  [assignment]
        src/repro/core/pipeline.py:22: error: Missing annotation  [no-untyped-def]
        src/repro/core/ucp.py:5: error: Bad thing  [misc]
        Found 3 errors in 2 files (checked 100 source files)
        """
    )

    def test_count_errors(self):
        counts = ratchet.count_errors(self.OUTPUT)
        assert counts == {
            "src/repro/core/pipeline.py": 2,
            "src/repro/core/ucp.py": 1,
        }

    def test_check_flags_unlisted_files(self):
        ok, messages = ratchet.check(
            {"src/repro/core/new.py": 1}, {"src/repro/core/pipeline.py": 2}
        )
        assert not ok
        assert any("not in the ratchet" in message for message in messages)

    def test_check_flags_budget_regressions(self):
        ok, _ = ratchet.check(
            {"src/repro/core/pipeline.py": 3}, {"src/repro/core/pipeline.py": 2}
        )
        assert not ok

    def test_check_tolerates_null_pins(self):
        ok, messages = ratchet.check(
            {"src/repro/core/pipeline.py": 9}, {"src/repro/core/pipeline.py": None}
        )
        assert ok
        assert any("unpinned" in message for message in messages)

    def test_update_lowers_and_pins(self):
        budget, _ = ratchet.update(
            {"src/repro/core/a.py": 1},
            {"src/repro/core/a.py": 5, "src/repro/core/b.py": None},
        )
        assert budget == {"src/repro/core/a.py": 1, "src/repro/core/b.py": 0}

    def test_update_refuses_raises_without_force(self):
        with pytest.raises(ValueError):
            ratchet.update(
                {"src/repro/core/a.py": 9}, {"src/repro/core/a.py": 1}
            )
        budget, _ = ratchet.update(
            {"src/repro/core/a.py": 9}, {"src/repro/core/a.py": 1}, force=True
        )
        assert budget["src/repro/core/a.py"] == 9

    def test_repo_ratchet_file_is_valid(self):
        budget = ratchet.load_ratchet(REPO / "mypy-ratchet.json")
        assert budget
        for path, pin in budget.items():
            assert (REPO / path).exists(), f"stale ratchet entry {path}"
            assert pin is None or pin >= 0
        # The strict trio must be pinned at zero, not merely tracked.
        for prefix in ("src/repro/common/", "src/repro/isa/", "src/repro/observe/"):
            pins = [pin for path, pin in budget.items() if path.startswith(prefix)]
            assert pins and all(pin == 0 for pin in pins)


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        """`repro lint src/` over this repository must exit clean."""
        report = LintEngine().lint_paths([REPO / "src"])
        assert report.clean, render_text(report)

    def test_schema_snapshot_is_committed_and_current(self):
        engine = LintEngine()
        assert engine.schema_path.exists()
        snapshot = json.loads(engine.schema_path.read_text())
        assert snapshot["schema"] == 1
        assert snapshot["cache_version"] >= 7

    def test_known_suppressions_are_the_telemetry_sites(self):
        report = LintEngine().lint_paths([REPO / "src"])
        # Wall-clock telemetry + timeout-deadline bookkeeping in
        # parallel.py (7), worker/queue timing in serve/scheduler.py (4),
        # the eviction grace-window clock in serve/eviction.py (1), the
        # kernel-vs-interpreter speedup telemetry in verify/kernel_diff.py
        # (3), and the span/flight-recorder timestamps in
        # observe/telemetry (4).
        assert report.suppressed == 19

    def test_finding_ordering_is_total(self):
        a = Finding("a.py", 1, 1, "SIM001", "x")
        b = Finding("a.py", 2, 1, "SIM001", "x")
        assert a < b
