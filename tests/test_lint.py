"""Tests for the ``repro.lint`` static-analysis engine and its rules.

Each rule gets a known-bad fixture it must fire on and a known-good
fixture it must stay silent on; the engine-level tests cover suppression
comments, syntax-error handling, the reporters, the mypy ratchet, and —
the self-check the whole PR hangs on — a clean run over the shipped tree.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Finding,
    LintEngine,
    module_name,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.lint import ratchet
from repro.lint.reporters import REPORT_SCHEMA

REPO = Path(__file__).resolve().parents[1]


def lint_file(tmp_path, relpath, code, schema_path=None):
    """Write ``code`` at ``tmp_path/relpath`` and lint just that file."""
    file = tmp_path / relpath
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(code))
    engine = LintEngine(schema_path=schema_path or tmp_path / "schema.json")
    return engine.lint_paths([file])


def rules_fired(report):
    return {finding.rule for finding in report.findings}


class TestCatalog:
    def test_all_thirteen_rules_registered(self):
        assert sorted(RULES) == [f"SIM{i:03d}" for i in range(1, 14)]

    def test_rule_codes_match_convention(self):
        for code, rule in RULES.items():
            assert re.fullmatch(r"SIM\d{3}", code)
            assert rule.code == code
            assert rule.title
            assert rule.rationale

    def test_explain_includes_examples(self):
        for rule in RULES.values():
            text = rule.explain()
            assert rule.code in text
            assert "bad:" in text
            assert "good:" in text


class TestSim001UnseededRandom:
    def test_global_random_call_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        assert rules_fired(report) == {"SIM001"}

    def test_numpy_global_state_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """,
        )
        assert report.counts_by_rule() == {"SIM001": 2}

    def test_from_import_of_global_fn_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            from random import shuffle

            def mix(items):
                shuffle(items)
            """,
        )
        assert "SIM001" in rules_fired(report)

    def test_seeded_instances_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            import numpy as np

            def make(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + float(gen.random())
            """,
        )
        assert report.clean


class TestSim002WallClock:
    def test_time_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rules_fired(report) == {"SIM002"}

    def test_from_time_import_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """,
        )
        assert "SIM002" in rules_fired(report)

    def test_profile_module_is_exempt(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/analysis/profile.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
        )
        assert report.clean

    def test_benchmarks_path_is_exempt(self, tmp_path):
        report = lint_file(
            tmp_path,
            "benchmarks/bench_sim.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
        )
        assert report.clean


class TestSim003ImportTimeEnv:
    def test_module_scope_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            DEBUG = os.environ.get("REPRO_DEBUG", "")
            """,
        )
        assert rules_fired(report) == {"SIM003"}

    def test_class_body_read_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            class Config:
                level = int(os.getenv("LEVEL", "0"))
            """,
        )
        assert rules_fired(report) == {"SIM003"}

    def test_call_time_read_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import os

            def check_level():
                return os.environ.get("REPRO_SIM_CHECK", "")
            """,
        )
        assert report.clean


class TestSim004HookGating:
    BAD = """
    class FTQ:
        def push(self, block):
            self.observer.emit("ftq_enqueue", count=block.count)
    """

    def test_ungated_hook_fires_in_core(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/ftq.py", self.BAD)
        assert rules_fired(report) == {"SIM004"}

    def test_outside_pipeline_packages_not_checked(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/analysis/ftq.py", self.BAD)
        assert report.clean

    def test_hoisted_pointer_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    observer = self.observer
                    if observer is not None:
                        observer.emit("ftq_enqueue", count=block.count)
            """,
        )
        assert report.clean

    def test_early_exit_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if self.observer is None:
                        return
                    self.observer.emit("ftq_enqueue", count=block.count)
            """,
        )
        assert report.clean

    def test_and_chain_gate_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if self.checker is not None and self.checker.armed:
                        self.checker.check(block)
            """,
        )
        assert report.clean

    def test_gate_on_other_object_still_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/ftq.py",
            """
            class FTQ:
                def push(self, block):
                    if block is not None:
                        self.observer.emit("ftq_enqueue")
            """,
        )
        assert rules_fired(report) == {"SIM004"}


class TestSim005FloatCounters:
    def test_ratio_into_counter_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def tick(self, served, asked):
                    self.stats.add("service_ratio", served / asked)
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_float_literal_set_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def reset(self):
                    self.stats.set("weight", 1.5)
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_float_typed_statblock_field_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/common/stats2.py",
            """
            class StatBlock:
                def add(self, key: str, amount: float = 1) -> None:
                    pass
            """,
        )
        assert rules_fired(report) == {"SIM005"}

    def test_integer_counts_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            class Fetch:
                def tick(self, served, asked):
                    self.stats.add("uops_served", served)
                    self.stats.add("uops_asked", asked)
            """,
        )
        assert report.clean


class TestSim006SetIteration:
    def test_for_over_set_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(stats):
                pending = {4, 8, 15}
                out = []
                for line in pending:
                    out.append(line)
                return out
            """,
        )
        assert rules_fired(report) == {"SIM006"}

    def test_annotated_set_param_fires(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(pending, stats):
                lines: set[int] = pending
                return [line for line in lines]
            """,
        )
        assert rules_fired(report) == {"SIM006"}

    def test_sorted_iteration_is_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def drain(stats):
                pending = {4, 8, 15}
                return [line for line in sorted(pending)]
            """,
        )
        assert report.clean

    def test_order_free_reductions_are_clean(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            def summarize(pending):
                seen = {4, 8, 15}
                total = sum(x for x in seen)
                return len(seen), total, any(x > 3 for x in seen), max(seen)
            """,
        )
        assert report.clean


SIM007_RUNNER = """
CACHE_VERSION = 7
"""

SIM007_PIPELINE = """
class SimResult:
    SCHEMA = 1

    def __init__(self, name):
        self.name = name

    def to_dict(self):
        return {"schema": self.SCHEMA, "name": self.name}
"""

SIM007_STATS = """
class StatBlock:
    SCHEMA = 1

    def __init__(self, name=""):
        self.name = name

    def to_dict(self):
        return {"schema": self.SCHEMA, "name": self.name, "counters": {}}
"""


class TestSim007CacheSchema:
    def write_tree(self, tmp_path, runner=SIM007_RUNNER, pipeline=SIM007_PIPELINE):
        for relpath, code in (
            ("src/repro/analysis/runner.py", runner),
            ("src/repro/core/pipeline.py", pipeline),
            ("src/repro/common/stats.py", SIM007_STATS),
        ):
            file = tmp_path / relpath
            file.parent.mkdir(parents=True, exist_ok=True)
            file.write_text(textwrap.dedent(code))
        return tmp_path / "src"

    def test_missing_snapshot_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "--write-schema" in report.findings[0].message

    def test_snapshot_roundtrip_is_clean(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        snapshot = engine.write_schema_snapshot([src])
        assert snapshot["cache_version"] == 7
        assert engine.lint_paths([src]).clean

    def test_shape_change_without_bump_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        grown = SIM007_PIPELINE.replace(
            '"name": self.name}', '"name": self.name, "power_w": 0}'
        )
        self.write_tree(tmp_path, pipeline=grown)
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "CACHE_VERSION" in report.findings[0].message

    def test_version_bump_with_stale_snapshot_fires(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        self.write_tree(tmp_path, runner="CACHE_VERSION = 8\n")
        report = engine.lint_paths([src])
        assert rules_fired(report) == {"SIM007"}
        assert "stale" in report.findings[0].message

    def test_bump_plus_refresh_is_clean(self, tmp_path):
        src = self.write_tree(tmp_path)
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        engine.write_schema_snapshot([src])
        grown = SIM007_PIPELINE.replace(
            '"name": self.name}', '"name": self.name, "power_w": 0}'
        )
        self.write_tree(tmp_path, runner="CACHE_VERSION = 8\n", pipeline=grown)
        engine.write_schema_snapshot([src])
        assert engine.lint_paths([src]).clean

    def test_partial_run_skips_the_rule(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/other.py", "X = 1\n")
        assert report.clean


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)  # lint-ok: SIM001 fixture needs global RNG
            """,
        )
        assert report.clean
        assert report.suppressed == 1

    def test_file_suppression(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            # lint-ok-file: SIM002
            import time

            def a():
                return time.time()

            def b():
                return time.monotonic()
            """,
        )
        assert report.clean
        assert report.suppressed == 2

    def test_suppression_is_rule_specific(self, tmp_path):
        report = lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)  # lint-ok: SIM002 wrong code
            """,
        )
        assert rules_fired(report) == {"SIM001"}
        assert report.suppressed == 0

    def test_parse_multiple_codes(self):
        sup = parse_suppressions("x = 1  # lint-ok: SIM001, SIM005 both fine\n")
        assert sup.by_line[1] == frozenset({"SIM001", "SIM005"})
        assert not sup.whole_file


class TestEngine:
    def test_syntax_error_becomes_sim000(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        assert rules_fired(report) == {"SIM000"}

    def test_findings_are_sorted(self, tmp_path):
        src = tmp_path / "src" / "repro" / "core"
        src.mkdir(parents=True)
        (src / "b.py").write_text("import time\nT = time.time()\n")
        (src / "a.py").write_text("import time\nT = time.time()\n")
        engine = LintEngine(schema_path=tmp_path / "schema.json")
        report = engine.lint_paths([tmp_path / "src"])
        paths = [finding.path for finding in report.findings]
        assert paths == sorted(paths)

    def test_module_name_anchors_on_repro(self):
        assert module_name(Path("src/repro/core/ucp.py")) == "repro.core.ucp"
        assert module_name(Path("/tmp/x/src/repro/common/__init__.py")) == (
            "repro.common"
        )
        assert module_name(Path("scripts/tool.py")) == "tool"


class TestReporters:
    def make_report(self, tmp_path):
        return lint_file(
            tmp_path,
            "src/repro/core/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )

    def test_text_format(self, tmp_path):
        report = self.make_report(tmp_path)
        text = render_text(report)
        finding = report.findings[0]
        assert f"{finding.path}:{finding.line}:{finding.col}: SIM002" in text
        assert "1 finding(s)" in text

    def test_json_format(self, tmp_path):
        report = self.make_report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["clean"] is False
        assert payload["counts_by_rule"] == {"SIM002": 1}
        assert payload["findings"][0]["rule"] == "SIM002"
        # Schema v2: every finding carries effects/call_path (empty lists
        # for per-file findings) so consumers need no presence checks.
        assert set(payload["findings"][0]) == {
            "path",
            "line",
            "col",
            "rule",
            "message",
            "effects",
            "call_path",
        }
        assert payload["findings"][0]["effects"] == []
        assert payload["findings"][0]["call_path"] == []

    def test_report_schema_is_v2(self):
        assert REPORT_SCHEMA == 2


class TestRatchet:
    OUTPUT = textwrap.dedent(
        """\
        src/repro/core/pipeline.py:10: error: Incompatible types  [assignment]
        src/repro/core/pipeline.py:22: error: Missing annotation  [no-untyped-def]
        src/repro/core/ucp.py:5: error: Bad thing  [misc]
        Found 3 errors in 2 files (checked 100 source files)
        """
    )

    def test_count_errors(self):
        counts = ratchet.count_errors(self.OUTPUT)
        assert counts == {
            "src/repro/core/pipeline.py": 2,
            "src/repro/core/ucp.py": 1,
        }

    def test_check_flags_unlisted_files(self):
        ok, messages = ratchet.check(
            {"src/repro/core/new.py": 1}, {"src/repro/core/pipeline.py": 2}
        )
        assert not ok
        assert any("not in the ratchet" in message for message in messages)

    def test_check_flags_budget_regressions(self):
        ok, _ = ratchet.check(
            {"src/repro/core/pipeline.py": 3}, {"src/repro/core/pipeline.py": 2}
        )
        assert not ok

    def test_check_tolerates_null_pins(self):
        ok, messages = ratchet.check(
            {"src/repro/core/pipeline.py": 9}, {"src/repro/core/pipeline.py": None}
        )
        assert ok
        assert any("unpinned" in message for message in messages)

    def test_update_lowers_and_pins(self):
        budget, _ = ratchet.update(
            {"src/repro/core/a.py": 1},
            {"src/repro/core/a.py": 5, "src/repro/core/b.py": None},
        )
        assert budget == {"src/repro/core/a.py": 1, "src/repro/core/b.py": 0}

    def test_update_refuses_raises_without_force(self):
        with pytest.raises(ValueError):
            ratchet.update(
                {"src/repro/core/a.py": 9}, {"src/repro/core/a.py": 1}
            )
        budget, _ = ratchet.update(
            {"src/repro/core/a.py": 9}, {"src/repro/core/a.py": 1}, force=True
        )
        assert budget["src/repro/core/a.py"] == 9

    def test_repo_ratchet_file_is_valid(self):
        budget = ratchet.load_ratchet(REPO / "mypy-ratchet.json")
        assert budget
        for path, pin in budget.items():
            assert (REPO / path).exists(), f"stale ratchet entry {path}"
            assert pin is None or pin >= 0
        # The strict packages must be pinned at zero, not merely tracked
        # (repro.lint joined the trio: the analyzer passes its own bar).
        for prefix in (
            "src/repro/common/",
            "src/repro/isa/",
            "src/repro/observe/",
            "src/repro/lint/",
        ):
            pins = [pin for path, pin in budget.items() if path.startswith(prefix)]
            assert pins and all(pin == 0 for pin in pins)


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        """`repro lint src/` over this repository must exit clean."""
        report = LintEngine().lint_paths([REPO / "src"])
        assert report.clean, render_text(report)

    def test_schema_snapshot_is_committed_and_current(self):
        engine = LintEngine()
        assert engine.schema_path.exists()
        snapshot = json.loads(engine.schema_path.read_text())
        assert snapshot["schema"] == 1
        assert snapshot["cache_version"] >= 7

    def test_known_suppressions_are_the_telemetry_sites(self):
        report = LintEngine().lint_paths([REPO / "src"])
        # Wall-clock telemetry + timeout-deadline bookkeeping in
        # parallel.py (7), worker/queue timing in serve/scheduler.py (4),
        # the eviction grace-window clock in serve/eviction.py (1), the
        # kernel-vs-interpreter speedup telemetry in verify/kernel_diff.py
        # (3), and the span/flight-recorder timestamps in
        # observe/telemetry (4).  The SIM009/SIM010 lint-ok comments added
        # with the interprocedural pass are effect cuts: they remove the
        # effect before any finding is generated, so they do not increment
        # this counter.
        assert report.suppressed == 19

    def test_finding_ordering_is_total(self):
        a = Finding("a.py", 1, 1, "SIM001", "x")
        b = Finding("a.py", 2, 1, "SIM001", "x")
        assert a < b

    def test_rule_selfcheck_passes(self):
        """Every selfcheckable rule catches its own bad example and
        passes its good one (mirrors the CI mutation-style step)."""
        from repro.lint import selfcheck

        assert selfcheck.main([]) == 0


def lint_tree(tmp_path, files):
    """Write a multi-file src tree and lint it whole; returns
    (report, engine) so tests can inspect ``engine.analysis``."""
    for relpath, code in files:
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(code))
    engine = LintEngine(schema_path=tmp_path / "schema.json")
    return engine.lint_paths([tmp_path / "src"]), engine


class TestCallGraph:
    def test_direct_and_method_edges(self, tmp_path):
        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    class Engine:
                        def run(self) -> None:
                            self.step()

                        def step(self) -> None:
                            helper()

                    def helper() -> None:
                        pass
                    """,
                )
            ],
        )
        graph = engine.analysis.graph
        callees = {
            edge.caller: edge.callee for edge in graph.edges
        }
        assert callees["repro.core.mod.Engine.run"] == "repro.core.mod.Engine.step"
        assert callees["repro.core.mod.Engine.step"] == "repro.core.mod.helper"

    def test_cross_module_import_edge(self, tmp_path):
        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/helpers.py",
                    """
                    def load() -> int:
                        return 1
                    """,
                ),
                (
                    "src/repro/core/mod.py",
                    """
                    from repro.core.helpers import load

                    def boot() -> int:
                        return load()
                    """,
                ),
            ],
        )
        graph = engine.analysis.graph
        assert any(
            edge.caller == "repro.core.mod.boot"
            and edge.callee == "repro.core.helpers.load"
            for edge in graph.edges
        )

    def test_unresolvable_calls_make_no_edge(self, tmp_path):
        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    def run(callback) -> None:
                        callback()
                        getattr(callback, "close")()
                    """,
                )
            ],
        )
        assert not engine.analysis.graph.edges

    def test_payload_shape(self, tmp_path):
        from repro.lint import CALLGRAPH_SCHEMA

        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    def a() -> None:
                        b()

                    def b() -> None:
                        pass
                    """,
                )
            ],
        )
        payload = engine.analysis.to_payload()
        # Round-trips through JSON (this is the CI artifact).
        payload = json.loads(json.dumps(payload))
        assert payload["schema"] == CALLGRAPH_SCHEMA
        entry = next(
            f for f in payload["functions"] if f["qname"] == "repro.core.mod.a"
        )
        assert set(entry) == {
            "qname",
            "module",
            "name",
            "class",
            "line",
            "async",
            "effects",
            "intrinsic",
        }
        assert any(
            e["caller"] == "repro.core.mod.a" and e["callee"] == "repro.core.mod.b"
            for e in payload["edges"]
        )


class TestEffects:
    def test_effect_propagates_up_the_chain(self, tmp_path):
        from repro.lint.effects import WALL_CLOCK

        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/profile.py",
                    """
                    import time

                    def now() -> float:
                        return time.time()

                    def outer() -> float:
                        return now()
                    """,
                )
            ],
        )
        effects = engine.analysis.effects
        assert WALL_CLOCK in effects.effects_of("repro.analysis.profile.now")
        assert WALL_CLOCK in effects.effects_of("repro.analysis.profile.outer")
        path, site = effects.trace("repro.analysis.profile.outer", WALL_CLOCK)
        assert path == [
            "repro.analysis.profile.outer",
            "repro.analysis.profile.now",
        ]
        assert site.detail == "time.time()"

    def test_suppression_cuts_the_edge(self, tmp_path):
        from repro.lint.effects import WALL_CLOCK

        _, engine = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/profile.py",
                    """
                    import time

                    def now() -> float:
                        return time.time()

                    def outer() -> float:
                        return now()  # lint-ok: SIM002 profiling wrapper

                    def unaudited() -> float:
                        return now()
                    """,
                )
            ],
        )
        effects = engine.analysis.effects
        # The suppressed edge is cut; the unsuppressed one still taints.
        assert WALL_CLOCK not in effects.effects_of(
            "repro.analysis.profile.outer"
        )
        assert WALL_CLOCK in effects.effects_of(
            "repro.analysis.profile.unaudited"
        )


class TestSim009AsyncBlocking:
    def test_direct_blocking_call_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    import time

                    async def handle() -> None:
                        time.sleep(0.05)
                    """,
                )
            ],
        )
        assert rules_fired(report) == {"SIM009"}

    def test_indirect_blocking_call_fires_with_path(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    async def handle() -> str:
                        return probe()

                    def probe() -> str:
                        return load()

                    def load() -> str:
                        with open("state.json") as fh:
                            return fh.read()
                    """,
                )
            ],
        )
        assert rules_fired(report) == {"SIM009"}
        finding = report.findings[0]
        assert finding.call_path == (
            "repro.serve.mod.handle",
            "repro.serve.mod.probe",
            "repro.serve.mod.load",
        )
        assert "blocking" in finding.message

    def test_executor_hop_is_clean(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    import asyncio

                    async def handle() -> None:
                        await asyncio.to_thread(warm)

                    def warm() -> None:
                        with open("cache.bin", "rb") as fh:
                            fh.read()
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()

    def test_blocking_outside_async_scope_is_clean(self, tmp_path):
        # Same shape, but in repro.analysis: no event loop, no SIM009.
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    async def handle() -> str:
                        return load()

                    def load() -> str:
                        with open("state.json") as fh:
                            return fh.read()
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()


class TestSim010AsyncLock:
    def test_threading_lock_in_async_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    import threading

                    _lock = threading.Lock()

                    async def handle() -> None:
                        with _lock:
                            pass
                    """,
                )
            ],
        )
        assert "SIM010" in rules_fired(report)

    def test_indirect_lock_anchored_at_acquire_site(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    import threading

                    _lock = threading.Lock()

                    async def handle() -> None:
                        protect()

                    def protect() -> None:
                        with _lock:
                            pass
                    """,
                )
            ],
        )
        sim010 = [f for f in report.findings if f.rule == "SIM010"]
        assert len(sim010) == 1
        # Anchored at the acquire (`with _lock:`) so one suppression
        # there covers every async route.
        assert sim010[0].line == 10
        assert sim010[0].call_path == (
            "repro.serve.mod.handle",
            "repro.serve.mod.protect",
        )

    def test_cross_await_mutation_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    class Tracker:
                        def __init__(self) -> None:
                            self.active = 0

                        async def track(self, job) -> None:
                            self.active = self.active + 1
                            await job.run()
                            self.active = self.active - 1
                    """,
                )
            ],
        )
        assert rules_fired(report) == {"SIM010"}
        assert "both sides of an await" in report.findings[0].message

    def test_asyncio_lock_is_clean(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    import asyncio

                    class Tracker:
                        def __init__(self) -> None:
                            self.active = 0
                            self.lock = asyncio.Lock()

                        async def track(self, job) -> None:
                            async with self.lock:
                                self.active = self.active + 1
                                await job.run()
                                self.active = self.active - 1
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()


class TestSim011LockAcrossAwait:
    def test_with_lock_around_await_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    import threading

                    _lock = threading.Lock()

                    async def refresh(source) -> None:
                        with _lock:
                            await source.fetch()
                    """,
                )
            ],
        )
        assert "SIM011" in rules_fired(report)

    def test_manual_acquire_across_await_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    async def refresh(cache_lock, source) -> None:
                        cache_lock.acquire()
                        await source.fetch()
                        cache_lock.release()
                    """,
                )
            ],
        )
        assert "SIM011" in rules_fired(report)

    def test_async_with_is_clean(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    import asyncio

                    _lock = asyncio.Lock()

                    async def refresh(source) -> None:
                        async with _lock:
                            await source.fetch()
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()

    def test_sync_critical_section_is_clean(self, tmp_path):
        # Near-miss: the lock guards only sync work; the await is outside.
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    import threading

                    _lock = threading.Lock()
                    _state = {}

                    async def refresh(source) -> None:
                        data = await source.fetch()
                        with _lock:
                            _state.update(data)
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()


class TestSim012ProcessBoundary:
    def test_open_handle_into_submit_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    from concurrent.futures import ProcessPoolExecutor

                    def run_jobs(jobs) -> None:
                        pool = ProcessPoolExecutor()
                        log = open("run.log", "w")
                        for job in jobs:
                            pool.submit(execute, job, log)

                    def execute(job, log) -> None:
                        log.write(str(job))
                    """,
                )
            ],
        )
        assert "SIM012" in rules_fired(report)

    def test_lambda_into_submit_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/serve/mod.py",
                    """
                    def run(pool, job) -> None:
                        pool.submit(lambda: job.execute())
                    """,
                )
            ],
        )
        assert "SIM012" in rules_fired(report)

    def test_plain_data_payload_is_clean(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/analysis/mod.py",
                    """
                    from concurrent.futures import ProcessPoolExecutor

                    def run_jobs(jobs) -> None:
                        pool = ProcessPoolExecutor()
                        for job in jobs:
                            pool.submit(execute, job, "run.log")

                    def execute(job, log_path: str) -> None:
                        with open(log_path, "a") as fh:
                            fh.write(str(job))
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()


class TestSim013StatFeedDeterminism:
    def test_wall_clock_behind_helper_fires(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    import time

                    class Retire:
                        def commit(self, uops_stats) -> None:
                            uops_stats.add("retired", self._stamp())

                        def _stamp(self) -> int:
                            return int(time.time())
                    """,
                )
            ],
        )
        fired = rules_fired(report)
        # SIM002 anchors on the read itself; SIM013 on the counter feed.
        assert "SIM013" in fired
        sim013 = next(f for f in report.findings if f.rule == "SIM013")
        assert "wall-clock" in sim013.effects
        assert "pure function" in sim013.message

    def test_pure_counter_feed_is_clean(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    class Retire:
                        def commit(self, uops_stats, cycle: int) -> None:
                            uops_stats.add("retired_cycle", cycle)
                    """,
                )
            ],
        )
        assert rules_fired(report) == set()

    def test_effectful_function_without_stats_feed_is_clean(self, tmp_path):
        # Near-miss: wall-clock effect but nothing feeds a StatBlock —
        # SIM002 still anchors the read, but SIM013 stays silent.
        report, _ = lint_tree(
            tmp_path,
            [
                (
                    "src/repro/core/mod.py",
                    """
                    import time

                    def stamp() -> int:
                        return int(time.time())
                    """,
                )
            ],
        )
        assert "SIM013" not in rules_fired(report)


class TestInterproceduralRegressions:
    """The acceptance case: indirect SIM002/SIM003 violations that the
    per-file engine provably misses and only the call-graph pass catches."""

    PROFILE = """
    import time

    def now() -> float:
        return time.time()  # allowed here: profiling module is exempt
    """
    CALLER = """
    from repro.analysis.profile import now

    def tick() -> float:
        return now()
    """

    def test_per_file_engine_misses_indirect_wall_clock(self, tmp_path):
        # Linting the caller alone (the per-file view): the wall-clock
        # read is invisible — it lives behind an import the single-file
        # run cannot resolve.
        report = lint_file(tmp_path, "src/repro/core/mod.py", self.CALLER)
        assert rules_fired(report) == set()

    def test_project_run_catches_indirect_wall_clock(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                ("src/repro/analysis/profile.py", self.PROFILE),
                ("src/repro/core/mod.py", self.CALLER),
            ],
        )
        assert rules_fired(report) == {"SIM002"}
        finding = report.findings[0]
        assert finding.path.endswith("core/mod.py")
        assert finding.call_path[-1] == "repro.analysis.profile.now"
        assert "wall-clock" in finding.effects

    KNOB = """
    import os

    def knob() -> str:
        return os.environ.get("REPRO_LIMIT", "8")  # call-time read: fine
    """
    IMPORTER = """
    from repro.serve.helpers import knob

    LIMIT = knob()
    """

    def test_per_file_engine_misses_indirect_env_read(self, tmp_path):
        report = lint_file(tmp_path, "src/repro/serve/mod.py", self.IMPORTER)
        assert rules_fired(report) == set()

    def test_project_run_catches_indirect_env_read(self, tmp_path):
        report, _ = lint_tree(
            tmp_path,
            [
                ("src/repro/serve/helpers.py", self.KNOB),
                ("src/repro/serve/mod.py", self.IMPORTER),
            ],
        )
        assert rules_fired(report) == {"SIM003"}
        finding = report.findings[0]
        assert finding.path.endswith("serve/mod.py")
        assert "import-time call" in finding.message
