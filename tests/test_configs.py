"""Tests for simulation configuration plumbing."""

from dataclasses import replace

import pytest

from repro.core.codemap import CodeMap
from repro.core.configs import SimConfig, UCPConfig
from repro.isa import BranchClass


class TestSimConfig:
    def test_hashable_for_caching(self):
        # The experiment runner keys caches on config repr/hash.
        a, b = SimConfig(), SimConfig()
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)

    def test_without_uop_cache(self):
        config = SimConfig().without_uop_cache()
        assert config.uop_cache is None
        assert SimConfig().uop_cache is not None  # original untouched

    def test_with_uop_cache_kops_geometry(self):
        for kops in (4, 8, 16, 32, 64):
            config = SimConfig().with_uop_cache_kops(kops)
            cache = config.uop_cache
            assert cache.n_sets * cache.ways * cache.uops_per_entry == kops * 1024

    def test_table_ii_defaults(self):
        config = SimConfig()
        assert config.frontend.decode_width == 6
        assert config.frontend.ftq_capacity == 192
        assert config.backend.rob_entries == 512
        assert config.backend.commit_width == 10
        assert config.uop_cache.n_sets == 64
        assert config.uop_cache.ways == 8
        assert config.uop_cache.uops_per_entry == 8
        assert config.btb.n_entries == 65536
        assert config.btb.n_banks == 16
        assert config.hierarchy.l1i.size_bytes == 32 * 1024
        assert config.hierarchy.l1i.hit_latency == 4
        assert config.hierarchy.l2.hit_latency == 10
        assert config.hierarchy.llc.hit_latency == 40

    def test_replace_is_isolated(self):
        base = SimConfig()
        modified = replace(base, ideal_uop_cache=True)
        assert not base.ideal_uop_cache
        assert modified.ideal_uop_cache


class TestUCPConfig:
    def test_disabled_by_default(self):
        assert not SimConfig().ucp.enabled

    def test_paper_defaults(self):
        ucp = UCPConfig(enabled=True)
        assert ucp.stop_threshold == 500
        assert ucp.alt_ftq_entries == 24
        assert ucp.mshr_entries == 32
        assert ucp.alt_decode_entries == 32
        assert ucp.alt_ras_entries == 16
        assert ucp.confidence == "ucp"

    def test_storage_budgets(self):
        with_ind = UCPConfig(enabled=True).storage_kb
        without = UCPConfig(enabled=True, use_indirect=False).storage_kb
        assert with_ind - without == pytest.approx(4.0)


class TestCodeMap:
    def test_record_and_query(self):
        codemap = CodeMap()
        assert not codemap.known(0x1000)
        assert codemap.branch_class(0x1000) is None
        codemap.record(0x1000, int(BranchClass.COND_DIRECT))
        assert codemap.known(0x1000)
        assert codemap.branch_class(0x1000) is BranchClass.COND_DIRECT
        assert len(codemap) == 1

    def test_rerecord_overwrites(self):
        codemap = CodeMap()
        codemap.record(0x1000, int(BranchClass.NOT_BRANCH))
        codemap.record(0x1000, int(BranchClass.RETURN))
        assert codemap.branch_class(0x1000) is BranchClass.RETURN
        assert len(codemap) == 1
