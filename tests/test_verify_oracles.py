"""Differential and metamorphic tests against the functional oracles.

The architectural stream of a trace-replay simulator is known in advance;
these tests assert the full timing model hits it under every
configuration, plus the metamorphic properties that relate configurations
to each other.
"""

import pytest

from repro.core.configs import SimConfig, UCPConfig
from repro.verify.differential import (
    HITRATE_MONOTONIC_TOL,
    check_commit_stream,
    check_hitrate_monotonic,
    check_timing_independence,
    oracle_configs,
    run_with_commit_capture,
)
from repro.verify.oracles import reference_commit_stream

N = 2_500


def test_reference_commit_stream_shape():
    assert reference_commit_stream(0) == []
    assert reference_commit_stream(4) == [0, 1, 2, 3]


def test_commit_hook_taps_full_stream():
    result, stream = run_with_commit_capture("fp_01", SimConfig(), N)
    assert len(stream) == N
    assert result.instructions == N


def test_timing_independence_across_all_configs():
    """UCP, prefetchers, MRC, idealisation, sizing: the architectural
    stream is bit-identical everywhere (the central metamorphic law)."""
    results = check_timing_independence("int_02", N)
    assert set(results) == set(oracle_configs())
    # The configs genuinely differ in timing — otherwise this test would
    # pass vacuously on a simulator that ignores its config.
    cycle_counts = {r.cycles for r in results.values()}
    assert len(cycle_counts) > 1


def test_ucp_on_off_identical_stream():
    _, off = run_with_commit_capture("srv_04", SimConfig(), N)
    _, on = run_with_commit_capture(
        "srv_04", SimConfig(ucp=UCPConfig(enabled=True)), N
    )
    assert on == off == reference_commit_stream(N)


@pytest.mark.parametrize("workload", ["int_02", "srv_04"])
def test_hitrate_monotonic_in_cache_size(workload):
    rates = check_hitrate_monotonic(workload, N, kops=(4, 8, 16))
    assert len(rates) == 3
    assert all(0 <= rate <= 100 for rate in rates)


def test_monotonicity_tolerance_is_tight():
    """Guard the tolerance itself: it exists for sub-half-point set-index
    remapping wobble, not to paper over real regressions."""
    assert 0 < HITRATE_MONOTONIC_TOL <= 0.5


def test_commit_stream_check_passes_under_checker():
    check_commit_stream("fp_01", SimConfig(), 1_500, check=True)
