"""Batched kernel: column/stream units plus the differential gate.

The replay kernel (:mod:`repro.core.kernel`) promises bit-identical
results to the interpreter.  This file holds the committed enforcement:
unit tests for the precomputed columns and the recorded prediction
stream, the kernel-vs-interpreter differential over the pinned perf
suite, the dc_* slice and the config variants, and the fallback/routing
contract for ``REPRO_SIM_KERNEL``.
"""

from dataclasses import replace

import pytest

from repro.core.configs import SimConfig
from repro.core.kernel import (
    KernelSimulator,
    build_columns,
    get_columns,
    get_stream,
    kernel_applicable,
    kernel_enabled,
    record_stream,
)
from repro.core.pipeline import Simulator, simulate
from repro.isa import BranchClass
from repro.verify.kernel_diff import kernel_differential, run_kernel_differential
from repro.workloads import load_workload

from .conftest import build_branchy_trace


# ----------------------------------------------------------------------
# Columns
# ----------------------------------------------------------------------


class TestColumns:
    def test_next_branch_matches_naive_scan(self):
        trace = load_workload("int_02", 1_500).trace
        columns = build_columns(trace, SimConfig())
        classes = list(trace.branch_classes)
        n = len(trace)
        for i in range(n):
            expected = next((j for j in range(i, n) if classes[j]), n)
            assert columns.next_branch[i] == expected

    def test_next_branch_on_branchy_trace(self):
        trace = build_branchy_trace()
        columns = build_columns(trace, SimConfig())
        # Index 0 is a plain instruction, 1 is the first branch; the two
        # trailing plain instructions point at the sentinel.
        assert columns.next_branch[0] == 1
        assert columns.next_branch[1] == 1
        assert columns.next_branch[10] == len(trace)
        assert columns.next_branch[11] == len(trace)

    def test_latency_and_distance_match_backend_hash(self):
        trace = load_workload("fp_01", 1_000).trace
        config = SimConfig()
        columns = build_columns(trace, config)
        backend = config.backend
        for i in range(len(trace)):
            value = int(trace.pcs[i]) >> 2
            value ^= value >> 7
            value ^= value >> 13
            h = value & 0xFFFF
            if h % backend.load_hash_mod == 0:
                if (h >> 8) % backend.long_load_every == 0:
                    latency = backend.long_load_latency
                else:
                    latency = backend.load_latency
            else:
                latency = backend.simple_latency
            assert columns.latency[i] == latency
            assert columns.distance[i] == 1 + (h >> 4) % backend.dep_window

    def test_lines_column(self):
        trace = build_branchy_trace()
        config = SimConfig()
        columns = build_columns(trace, config)
        line_size = config.hierarchy.l1i.line_size
        assert columns.lines == [int(pc) // line_size for pc in trace.pcs]

    def test_cache_reuses_per_trace_and_config(self):
        trace = load_workload("int_02", 1_000).trace
        config = SimConfig()
        assert get_columns(trace, config) is get_columns(trace, config)
        # A config differing only in non-column scalars shares nothing by
        # key identity but an equal-key config hits the same entry.
        same_key = replace(config, warmup_fraction=0.5)
        assert get_columns(trace, same_key) is get_columns(trace, config)


# ----------------------------------------------------------------------
# Prediction stream
# ----------------------------------------------------------------------


class TestStream:
    def test_stream_lengths_match_branch_mix(self):
        trace = load_workload("int_02", 2_000).trace
        stream = record_stream(trace, SimConfig())
        classes = list(trace.branch_classes)
        conds = sum(1 for c in classes if c == int(BranchClass.COND_DIRECT))
        indirects = sum(
            1
            for c in classes
            if c in (int(BranchClass.INDIRECT), int(BranchClass.CALL_INDIRECT))
        )
        assert len(stream.cond_predictions) == conds
        assert len(stream.indirect_mispredicts) == indirects

    def test_stream_cached_per_trace(self):
        trace = load_workload("fp_01", 1_000).trace
        config = SimConfig()
        assert get_stream(trace, config) is get_stream(trace, config)


# ----------------------------------------------------------------------
# Differential: the committed bit-identity gate
# ----------------------------------------------------------------------

PINNED = ["fp_01", "int_02", "srv_05"]
DC_SLICE = ["dc_call_01", "dc_interp_01", "dc_mega_01"]


def _variants():
    from repro.experiments.common import baseline_config, ucp_config

    return {"base": baseline_config(), "ucp": ucp_config()}


class TestDifferential:
    @pytest.mark.parametrize("workload", PINNED)
    @pytest.mark.parametrize("label", ["base", "ucp"])
    def test_pinned_suite_bit_identical(self, workload, label):
        trace = load_workload(workload, 2_500).trace
        kernel_differential(trace, _variants()[label], f"{workload}/{label}")

    @pytest.mark.parametrize("workload", DC_SLICE)
    def test_dc_slice_bit_identical(self, workload):
        trace = load_workload(workload, 2_000).trace
        for label, config in _variants().items():
            kernel_differential(trace, config, f"{workload}/{label}")

    @pytest.mark.parametrize(
        "label,config_fn",
        [
            ("no_uop", lambda c: c.without_uop_cache()),
            ("ideal", lambda c: replace(c, ideal_uop_cache=True)),
            ("brcond", lambda c: replace(c, ideal_brcond_window=64)),
            ("l1i_uop", lambda c: replace(c, l1i_hits_are_uop_hits=True)),
            ("mrc", lambda c: replace(c, mrc_entries=64)),
            ("djolt", lambda c: replace(c, l1i_prefetcher="djolt")),
        ],
    )
    def test_config_variants_bit_identical(self, label, config_fn):
        trace = load_workload("int_02", 2_000).trace
        kernel_differential(trace, config_fn(SimConfig()), f"int_02/{label}")

    def test_tiny_hand_trace_bit_identical(self, branchy_trace):
        kernel_differential(branchy_trace, SimConfig(), "branchy")

    def test_report_sweep_smoke(self):
        report = run_kernel_differential(
            n_instructions=1_000, workloads=("int_02",)
        )
        assert len(report.cases) == 2
        payload = report.to_dict()
        assert payload["oracle"] == "kernel-differential"
        assert report.render().startswith("kernel-vs-interpreter")


# ----------------------------------------------------------------------
# Fallback + routing contract
# ----------------------------------------------------------------------


class TestGating:
    def test_kernel_applicable_truth_table(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CHECK", raising=False)
        monkeypatch.delenv("REPRO_SIM_TRACE", raising=False)
        assert kernel_applicable(None, None)
        assert kernel_applicable(False, False)
        assert not kernel_applicable(True, None)
        assert not kernel_applicable(None, True)
        monkeypatch.setenv("REPRO_SIM_CHECK", "1")
        assert not kernel_applicable(None, None)
        assert kernel_applicable(False, None)
        monkeypatch.delenv("REPRO_SIM_CHECK")
        monkeypatch.setenv("REPRO_SIM_TRACE", "1")
        assert not kernel_applicable(None, None)
        assert kernel_applicable(None, False)

    def test_checker_forces_interpreter_components(self):
        trace = load_workload("int_02", 1_000).trace
        sim = KernelSimulator(trace, SimConfig(), check=True)
        assert not sim.kernel_active
        assert type(sim.bpu).__name__ == "BPU"
        assert type(sim.backend).__name__ == "Backend"
        sim.run()  # invariants armed, interpreter path, must stay green

    def test_observer_fallback_is_bit_identical(self):
        trace = load_workload("int_02", 1_500).trace
        reference = simulate(trace, SimConfig(), observe=True, kernel=False)
        fallback = simulate(trace, SimConfig(), observe=True, kernel=True)
        assert reference.to_dict() == fallback.to_dict()

    def test_kernel_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert kernel_enabled() is True
        monkeypatch.setenv("REPRO_SIM_KERNEL", "0")
        assert kernel_enabled() is False
        assert kernel_enabled(True) is True
        monkeypatch.setenv("REPRO_SIM_KERNEL", "1")
        assert kernel_enabled() is True
        assert kernel_enabled(False) is False

    def test_simulate_routes_by_env(self, monkeypatch):
        trace = load_workload("fp_01", 1_500).trace
        monkeypatch.setenv("REPRO_SIM_KERNEL", "0")
        interp = simulate(trace, SimConfig())
        monkeypatch.setenv("REPRO_SIM_KERNEL", "1")
        kernel = simulate(trace, SimConfig())
        assert interp.to_dict() == kernel.to_dict()

    def test_kernel_components_are_swapped(self):
        trace = load_workload("fp_01", 1_000).trace
        sim = KernelSimulator(trace, SimConfig(), check=False, observe=False)
        assert sim.kernel_active
        assert type(sim.bpu).__name__ == "ReplayBPU"
        assert type(sim.backend).__name__ == "KernelBackend"

    def test_plain_simulator_untouched(self):
        trace = load_workload("fp_01", 1_000).trace
        sim = Simulator(trace, SimConfig())
        assert type(sim.bpu).__name__ == "BPU"
        assert type(sim.backend).__name__ == "Backend"
