"""End-to-end tests for the experiment server (:mod:`repro.serve`).

The headline property is **exactly-once execution**: any number of
concurrent clients submitting overlapping experiment matrices must
trigger exactly one simulation per unique ``(workload, config,
n_instructions)`` cache key — everything else coalesces onto the same
flight or is served from cache without touching a worker pool.

Tests run the real server on a real localhost socket with the scheduler
in ``thread`` mode (same-process workers, so the run-counter hook can
observe every execution).  No pytest-asyncio in the container: tests are
sync functions driving :func:`run_async`.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter

import pytest

import repro.analysis.runner as runner
import repro.serve.scheduler as scheduler_mod
from repro.core import SimConfig
from repro.serve.client import RunReply, ServeClient, ServeRequestError
from repro.serve.protocol import (
    ERROR_CODES,
    ServeError,
    decode_line,
    encode_message,
    expand_matrix,
    parse_run_request,
)
from repro.serve.server import ExperimentServer

N_INSTRUCTIONS = 2_000
WORKLOADS = ("fp_01", "int_01", "srv_02")


def run_async(coro, timeout: float = 120.0):
    """Drive one async test body to completion with a safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    runner._memory_cache.clear()
    yield tmp_path
    runner._memory_cache.clear()


@pytest.fixture()
def run_counter(monkeypatch):
    """Count every actual job execution, keyed by cache key."""
    calls: Counter[str] = Counter()
    lock = threading.Lock()
    real = scheduler_mod._default_job_entry

    def counting(workload, config, n_instructions):
        with lock:
            calls[runner.cache_key(workload, n_instructions, config)] += 1
        return real(workload, config, n_instructions)

    monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", counting)
    return calls


async def _with_server(body, **server_kwargs):
    kwargs = {"mode": "thread", "shards": 2, "log": lambda *_: None}
    kwargs.update(server_kwargs)
    server = ExperimentServer(**kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.close()


class TestProtocol:
    def test_matrix_expands_to_runner_cache_keys(self):
        jobs = expand_matrix(
            {
                "workloads": ["fp_01"],
                "configs": [{"ucp": True, "stop_threshold": 300}],
                "n_instructions": 5_000,
            }
        )
        assert len(jobs) == 1
        # The served job's key must equal the CLI/runner key for the
        # equivalent config — that is what makes the caches shared.
        from repro.core.configs import config_from_spec

        config = config_from_spec({"ucp": True, "stop_threshold": 300})
        assert jobs[0].key == runner.cache_key("fp_01", 5_000, config)

    def test_matrix_is_cross_product_with_dedup(self):
        jobs = expand_matrix(
            {
                "workloads": ["fp_01", "int_01"],
                "configs": [{}, {"ucp": True}, {}],  # duplicate baseline
                "n_instructions": 2_000,
            }
        )
        assert len(jobs) == 4  # 2 workloads x 2 unique configs

    @pytest.mark.parametrize(
        "matrix, code",
        [
            ({"workloads": ["nope"]}, "unknown-workload"),
            ({"workloads": []}, "bad-request"),
            ({"workloads": ["fp_01"], "n_instructions": -5}, "bad-request"),
            ({"workloads": ["fp_01"], "configs": [{"bogus": 1}]}, "bad-request"),
            ({"workloads": ["fp_01"], "extra": True}, "bad-request"),
            ("not-a-dict", "bad-request"),
        ],
    )
    def test_bad_matrices_raise_typed_errors(self, matrix, code):
        with pytest.raises(ServeError) as excinfo:
            expand_matrix(matrix)
        assert excinfo.value.code == code

    def test_run_request_validation(self):
        good = parse_run_request(
            {
                "type": "run",
                "id": "r1",
                "priority": 3,
                "timeout": 2.5,
                "stream": True,
                "matrix": {"workloads": ["fp_01"], "n_instructions": 1_000},
            }
        )
        assert good.priority == 3 and good.timeout == 2.5 and good.stream
        with pytest.raises(ServeError):
            parse_run_request({"type": "run", "id": "", "matrix": {}})
        with pytest.raises(ServeError):
            parse_run_request(
                {"type": "run", "id": "r1", "matrix": {"workloads": ["fp_01"]},
                 "priority": "high"}
            )

    def test_encode_decode_roundtrip(self):
        message = {"type": "run", "id": "x", "matrix": {"workloads": ["fp_01"]}}
        assert decode_line(encode_message(message).strip()) == message

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            ServeError("no-such-code", "boom")
        assert "timeout" in ERROR_CODES


class TestExactlyOnce:
    def test_32_concurrent_clients_one_simulation_per_key(
        self, fresh_cache, run_counter
    ):
        async def body(server):
            async def one_client(i: int) -> RunReply:
                # Overlapping matrices: every client asks for two of the
                # three workloads, so every key is requested many times.
                names = [WORKLOADS[i % 3], WORKLOADS[(i + 1) % 3]]
                async with ServeClient(port=server.port) as client:
                    return await client.run(names, n_instructions=N_INSTRUCTIONS)

            return await asyncio.gather(*[one_client(i) for i in range(32)])

        replies = run_async(_with_server(body))
        assert all(reply.ok and len(reply.results) == 2 for reply in replies)
        # Exactly one execution per unique key, despite 64 requested jobs.
        expected_keys = {
            runner.cache_key(name, N_INSTRUCTIONS, SimConfig())
            for name in WORKLOADS
        }
        assert set(run_counter) == expected_keys
        assert all(count == 1 for count in run_counter.values()), run_counter
        # Every client got bit-identical numbers for the shared keys.
        by_workload: dict[str, set] = {}
        for reply in replies:
            for record in reply.results:
                by_workload.setdefault(record["workload"], set()).add(
                    (record["ipc"], record["cycles"], record["key"])
                )
        assert all(len(seen) == 1 for seen in by_workload.values())

    def test_cache_hits_bypass_the_pool(self, fresh_cache, run_counter):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                first = await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
                status_after_first = await client.status()
                second = await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
                status_after_second = await client.status()
            return first, second, status_after_first, status_after_second

        first, second, after_first, after_second = run_async(_with_server(body))
        assert first.results[0]["cached"] is False
        assert second.results[0]["cached"] is True
        assert second.results[0]["source"] == "memory"
        # The second request never touched a worker pool.
        c1 = after_first["scheduler"]["counters"]
        c2 = after_second["scheduler"]["counters"]
        assert c1["pool_dispatches"] == c2["pool_dispatches"] == 1
        assert c2["jobs_from_memory"] == 1
        assert sum(run_counter.values()) == 1

    def test_disk_cache_hit_after_memory_flush(self, fresh_cache, run_counter):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
                runner._memory_cache.clear()  # simulate a server restart
                reply = await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
            return reply

        reply = run_async(_with_server(body))
        assert reply.results[0]["cached"] is True
        assert reply.results[0]["source"] == "disk"
        assert sum(run_counter.values()) == 1


class TestCancellation:
    def test_cancel_mid_run_leaves_pool_schedulable(self, fresh_cache, monkeypatch):
        release = threading.Event()
        real = scheduler_mod._default_job_entry

        def blocking(workload, config, n_instructions):
            if workload == "srv_02":
                release.wait(30.0)
            return real(workload, config, n_instructions)

        monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", blocking)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                victim = asyncio.create_task(
                    client.run(
                        ["srv_02"],
                        n_instructions=N_INSTRUCTIONS,
                        request_id="victim",
                    )
                )
                # Wait until the job is actually running on a shard.
                for _ in range(200):
                    status = await client.status()
                    if status["scheduler"]["in_flight"] >= 1:
                        break
                    await asyncio.sleep(0.02)
                else:
                    pytest.fail("victim job never started running")
                await client.cancel("victim")
                with pytest.raises(ServeRequestError) as excinfo:
                    await victim
                assert excinfo.value.code == "cancelled"
                # The shard must still schedule new work afterwards.
                after = await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
                status = await client.status()
            return after, status

        after, status = run_async(_with_server(body, shards=1))
        release.set()  # free the abandoned worker thread
        assert after.ok and after.results[0]["workload"] == "fp_01"
        assert status["scheduler"]["restarts"] >= 1
        assert status["scheduler"]["counters"]["jobs_cancelled"] == 1

    def test_queued_cancellation_never_executes(
        self, fresh_cache, run_counter, monkeypatch
    ):
        release = threading.Event()
        counted = scheduler_mod._JOB_ENTRY  # the run_counter wrapper

        def blocking(workload, config, n_instructions):
            if workload == "srv_02":
                release.wait(30.0)
            return counted(workload, config, n_instructions)

        monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", blocking)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                blocker = asyncio.create_task(
                    client.run(
                        ["srv_02"], n_instructions=N_INSTRUCTIONS,
                        request_id="blocker",
                    )
                )
                await asyncio.sleep(0.05)  # let the blocker reach the shard
                queued = asyncio.create_task(
                    client.run(
                        ["int_01"], n_instructions=N_INSTRUCTIONS,
                        request_id="queued",
                    )
                )
                await asyncio.sleep(0.05)
                await client.cancel("queued")
                with pytest.raises(ServeRequestError) as excinfo:
                    await queued
                assert excinfo.value.code == "cancelled"
                release.set()
                await blocker
            return True

        assert run_async(_with_server(body, shards=1))
        # The cancelled job never reached a worker.
        cancelled_key = runner.cache_key("int_01", N_INSTRUCTIONS, SimConfig())
        assert cancelled_key not in run_counter


class TestPriority:
    def test_higher_priority_jobs_run_first(self, fresh_cache, monkeypatch):
        release = threading.Event()
        order: list[str] = []
        lock = threading.Lock()
        real = scheduler_mod._default_job_entry

        def recording(workload, config, n_instructions):
            with lock:
                order.append(workload)
            if workload == "srv_02":
                release.wait(30.0)
            return real(workload, config, n_instructions)

        monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", recording)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                blocker = asyncio.create_task(
                    client.run(["srv_02"], n_instructions=N_INSTRUCTIONS)
                )
                await asyncio.sleep(0.05)  # blocker occupies the only shard
                low = asyncio.create_task(
                    client.run(["fp_01"], n_instructions=N_INSTRUCTIONS, priority=0)
                )
                high = asyncio.create_task(
                    client.run(["int_01"], n_instructions=N_INSTRUCTIONS, priority=10)
                )
                await asyncio.sleep(0.05)  # both queued behind the blocker
                release.set()
                await asyncio.gather(blocker, low, high)
            return True

        assert run_async(_with_server(body, shards=1))
        assert order == ["srv_02", "int_01", "fp_01"]


class TestStreaming:
    def test_stream_carries_intervals_and_taxonomy(self, fresh_cache):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                return await client.run(
                    ["fp_01"], n_instructions=N_INSTRUCTIONS, stream=True
                )

        reply = run_async(_with_server(body))
        kinds = [event["event"] for event in reply.events]
        assert "job-started" in kinds
        assert "job-finished" in kinds
        assert "interval" in kinds
        assert "taxonomy" in kinds
        interval = next(e for e in reply.events if e["event"] == "interval")
        assert {"cycle", "ipc", "uop_hit_rate"} <= set(interval)
        taxonomy = next(e for e in reply.events if e["event"] == "taxonomy")
        # The taxonomy partitions the run: buckets sum to total cycles.
        assert sum(taxonomy["cycles"].values()) == reply.results[0]["cycles"]

    def test_unstreamed_requests_get_no_events(self, fresh_cache):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                return await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)

        reply = run_async(_with_server(body))
        assert reply.events == []


class TestTypedErrors:
    def test_unknown_workload_fails_request(self, fresh_cache):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    await client.run(["no_such_workload"])
                return excinfo.value.code

        assert run_async(_with_server(body)) == "unknown-workload"

    def test_malformed_line_answers_bad_request(self, fresh_cache):
        async def body(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return decode_line(line.strip())

        message = run_async(_with_server(body))
        assert message["type"] == "error" and message["code"] == "bad-request"

    def test_duplicate_request_id_rejected(self, fresh_cache):
        async def body(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            request = {
                "type": "run",
                "id": "dup",
                "matrix": {"workloads": ["fp_01"], "n_instructions": 1_000},
            }
            writer.write(encode_message(request))
            writer.write(encode_message(request))
            await writer.drain()
            codes = []
            while True:
                line = await reader.readline()
                message = decode_line(line.strip())
                if message["type"] == "error":
                    codes.append(message["code"])
                if message["type"] == "done":
                    break
            writer.close()
            await writer.wait_closed()
            return codes

        assert "bad-request" in run_async(_with_server(body))

    def test_cancel_unknown_id_is_bad_request(self, fresh_cache):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                await client._write({"type": "cancel", "id": "ghost"})
                received = await client._control.get()
            return received

        message = run_async(_with_server(body))
        assert message["type"] == "error" and message["code"] == "bad-request"

    def test_overloaded_when_queue_bound_hit(self, fresh_cache, monkeypatch):
        release = threading.Event()
        real = scheduler_mod._default_job_entry

        def blocking(workload, config, n_instructions):
            release.wait(30.0)
            return real(workload, config, n_instructions)

        monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", blocking)

        async def body(server):
            async with ServeClient(port=server.port) as client:
                first = asyncio.create_task(
                    client.run(
                        ["fp_01", "int_01", "srv_02"],
                        n_instructions=N_INSTRUCTIONS,
                        request_id="fill",
                    )
                )
                await asyncio.sleep(0.1)  # one running, two queued >= bound
                with pytest.raises(ServeRequestError) as excinfo:
                    await client.run(["crypto_02"], n_instructions=N_INSTRUCTIONS)
                code = excinfo.value.code
                await client.cancel("fill")
                with pytest.raises(ServeRequestError):
                    await first
            return code

        code = run_async(_with_server(body, shards=1, max_pending=2))
        release.set()
        assert code == "overloaded"


class TestControlPlane:
    def test_ping_and_status(self, fresh_cache):
        async def body(server):
            async with ServeClient(port=server.port) as client:
                pong = await client.ping()
                status = await client.status()
            return pong, status

        pong, status = run_async(_with_server(body))
        assert pong["type"] == "pong" and pong["protocol"] == 2
        assert status["scheduler"]["mode"] == "thread"
        assert status["cache"]["cache_version"] == runner.CACHE_VERSION
