"""Tests for the frontend energy model."""

from dataclasses import replace

from repro.analysis.energy import EnergyWeights, decode_overhead_pct, frontend_energy
from repro.core import SimConfig, simulate
from repro.core.configs import UCPConfig
from repro.workloads import load_workload


def results(name="int_03", n=8_000):
    trace = load_workload(name, n).trace
    base = simulate(trace, SimConfig())
    no_uop = simulate(trace, SimConfig().without_uop_cache())
    ucp = simulate(trace, replace(SimConfig(), ucp=UCPConfig(enabled=True)))
    return base, no_uop, ucp


class TestFrontendEnergy:
    def test_components_non_negative(self):
        base, _no_uop, _ucp = results()
        report = frontend_energy(base)
        assert report.total > 0
        assert all(value >= 0 for value in report.components.values())

    def test_uop_cache_saves_decode_energy(self):
        """The µ-op cache's raison d'être (paper Section II)."""
        base, no_uop, _ucp = results()
        base_energy = frontend_energy(base)
        no_uop_energy = frontend_energy(no_uop)
        assert base_energy.components["decode"] < no_uop_energy.components["decode"]
        # And total frontend energy drops with the µ-op cache.
        assert base_energy.total < no_uop_energy.total

    def test_ucp_adds_alt_decode_energy(self):
        base, _no_uop, ucp = results()
        assert frontend_energy(base).components["alt_decode"] == 0
        assert frontend_energy(ucp).components["alt_decode"] > 0

    def test_share_and_per_instruction(self):
        base, _no_uop, _ucp = results()
        report = frontend_energy(base)
        assert 0 <= report.share("decode") <= 1
        assert report.share("nonexistent") == 0
        assert report.per_instruction(base.window_instructions) > 0
        assert report.per_instruction(0) == 0

    def test_custom_weights(self):
        base, _no_uop, _ucp = results()
        free_decode = frontend_energy(base, EnergyWeights(decode_per_instr=0.0))
        assert free_decode.components["decode"] == 0


class TestDecodeOverhead:
    def test_ucp_decode_overhead_is_moderate(self):
        """Paper Section VI-F: UCP increases decoded instructions ~25.5%."""
        base, _no_uop, ucp = results("srv_04", 10_000)
        overhead = decode_overhead_pct(ucp, base)
        assert overhead > 0
        # "Moderate": well below doubling the decode work.
        assert overhead < 100.0

    def test_zero_baseline_decode(self):
        class NoDecode:
            window = {"uops_decode": 0}

        _base, _no_uop, ucp = results()
        assert decode_overhead_pct(ucp, NoDecode()) == 0.0
