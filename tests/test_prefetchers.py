"""Unit tests for the L1I prefetcher implementations."""

import pytest

from repro.caches.hierarchy import MemoryHierarchy
from repro.prefetch import (
    DJoltPrefetcher,
    EntanglingPrefetcher,
    FnlMmaPrefetcher,
    NextLinePrefetcher,
    make_prefetcher,
)


def drain(hierarchy, cycles=200):
    """Issue all queued prefetches; returns the issued line numbers."""
    issued = []
    for cycle in range(cycles):
        result = hierarchy.tick_prefetch(cycle)
        if result is not None:
            issued.append(result[0] // hierarchy.config.l1i.line_size)
    return issued


class TestFactory:
    def test_all_names_resolve(self):
        for name in ("next_line", "fnl_mma", "fnl_mma++", "djolt", "ep", "ep++"):
            prefetcher = make_prefetcher(name)
            assert prefetcher is not None
            assert prefetcher.storage_kb >= 0

    def test_none_returns_none(self):
        assert make_prefetcher(None) is None

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_prefetcher("nope")

    def test_plus_plus_flavours_cost_more(self):
        assert make_prefetcher("fnl_mma++").storage_kb > make_prefetcher("fnl_mma").storage_kb
        assert make_prefetcher("ep++").storage_kb > make_prefetcher("ep").storage_kb


class TestNextLine:
    def test_prefetches_sequential_lines(self):
        hierarchy = MemoryHierarchy()
        prefetcher = NextLinePrefetcher(degree=2)
        prefetcher.on_demand_access(100, hit=False, cycle=0, hierarchy=hierarchy)
        issued = drain(hierarchy)
        assert 101 in issued and 102 in issued


class TestFnlMma:
    def test_sequential_training_enables_next_line(self):
        hierarchy = MemoryHierarchy()
        prefetcher = FnlMmaPrefetcher()
        # Train: two sequential sweeps (the first teaches the footprint,
        # the second finds the worthiness counters above threshold).
        for _sweep in range(2):
            for line in range(200, 212):
                prefetcher.on_demand_access(line, hit=True, cycle=line, hierarchy=hierarchy)
        issued = drain(hierarchy)
        assert any(line > 200 for line in issued)

    def test_mma_chains_misses(self):
        hierarchy = MemoryHierarchy()
        prefetcher = FnlMmaPrefetcher()
        # Teach a recurring miss pair (far apart, so FNL doesn't cover it).
        for _ in range(3):
            prefetcher.on_demand_access(500, hit=False, cycle=0, hierarchy=hierarchy)
            prefetcher.on_demand_access(900, hit=False, cycle=1, hierarchy=hierarchy)
            drain(hierarchy)
            hierarchy.l1i.invalidate(900 * 64)
        prefetcher.on_demand_access(500, hit=False, cycle=2, hierarchy=hierarchy)
        issued = drain(hierarchy)
        assert 900 in issued


class TestDJolt:
    def test_context_miss_association(self):
        hierarchy = MemoryHierarchy()
        prefetcher = DJoltPrefetcher()
        # Build a signature, then far later miss a line, repeatedly.
        for round_ in range(3):
            prefetcher.update_context(0x4000, 0x9000)
            for i in range(30):  # distance filler
                prefetcher.on_demand_access(10 + i, hit=True, cycle=i, hierarchy=hierarchy)
            prefetcher.on_demand_access(777, hit=False, cycle=50, hierarchy=hierarchy)
            drain(hierarchy)
            hierarchy.l1i.invalidate(777 * 64)
            prefetcher.update_context(0x1234, 0x5678)  # change context away
            prefetcher.on_demand_access(5, hit=True, cycle=60, hierarchy=hierarchy)
        # Re-entering the trained context should prefetch the distant miss.
        prefetcher.update_context(0x4000, 0x9000)
        prefetcher.on_demand_access(11, hit=True, cycle=100, hierarchy=hierarchy)
        issued = drain(hierarchy)
        assert 777 in issued


class TestEntangling:
    def test_entangles_source_with_miss(self):
        hierarchy = MemoryHierarchy()
        prefetcher = EntanglingPrefetcher()
        # Access a source line early, then miss a destination much later;
        # the filler accesses are too recent to hide the latency, so the
        # entangling source must be line 100.
        prefetcher.on_demand_access(100, hit=True, cycle=0, hierarchy=hierarchy)
        for i in range(10):
            prefetcher.on_demand_access(200 + i, hit=True, cycle=70 + i, hierarchy=hierarchy)
        prefetcher.on_demand_access(999, hit=False, cycle=100, hierarchy=hierarchy)
        drain(hierarchy)
        hierarchy.l1i.invalidate(999 * 64)
        # Touching the source again should trigger the destination.
        prefetcher.on_demand_access(100, hit=True, cycle=200, hierarchy=hierarchy)
        issued = drain(hierarchy)
        assert 999 in issued

    def test_destination_slots_bounded(self):
        prefetcher = EntanglingPrefetcher()
        hierarchy = MemoryHierarchy()
        prefetcher.on_demand_access(100, hit=True, cycle=0, hierarchy=hierarchy)
        for destination in range(900, 910):
            prefetcher.on_demand_access(destination, hit=False, cycle=100, hierarchy=hierarchy)
        slots = prefetcher._entangled.get(100, [])
        assert len(slots) <= prefetcher._dst_slots
