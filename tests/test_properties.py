"""Cross-cutting hypothesis property tests on core structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches import CacheConfig, SetAssocCache, UopCache, UopCacheConfig, UopCacheEntry
from repro.caches.uopcache import REGION_BYTES
from repro.workloads import WorkloadConfig, generate_trace


class TestCacheProperties:
    @given(
        accesses=st.lists(st.integers(0, 63), min_size=1, max_size=120),
        ways=st.integers(1, 4),
    )
    def test_set_occupancy_never_exceeds_ways(self, accesses, ways):
        cache = SetAssocCache(
            CacheConfig("p", size_bytes=64 * ways * 4, ways=ways, mshr_entries=64)
        )
        cycle = 0
        for slot in accesses:
            cache.access(slot * 64, cycle, fill_latency=3)
            cycle += 10
        for entries in cache._sets:
            assert len(entries) <= ways

    @given(accesses=st.lists(st.integers(0, 31), min_size=1, max_size=80))
    def test_ready_cycle_never_in_past(self, accesses):
        cache = SetAssocCache(CacheConfig("p", size_bytes=4096, ways=4))
        cycle = 0
        for slot in accesses:
            _hit, ready = cache.access(slot * 64, cycle, fill_latency=7)
            assert ready > cycle
            cycle += 2

    @given(accesses=st.lists(st.integers(0, 31), min_size=2, max_size=80))
    def test_repeat_access_eventually_hits(self, accesses):
        cache = SetAssocCache(CacheConfig("p", size_bytes=64 * 1024, ways=16))
        cycle = 0
        seen = set()
        for slot in accesses:
            hit, ready = cache.access(slot * 64, cycle, fill_latency=5)
            # With ample capacity, any previously accessed line whose fill
            # completed must hit.
            if slot in seen:
                assert hit or ready > cycle
            seen.add(slot)
            cycle = max(cycle + 1, ready + 1)


class TestUopCacheProperties:
    @given(
        starts=st.lists(st.integers(0, 400), min_size=1, max_size=120),
        ways=st.integers(1, 4),
    )
    def test_set_occupancy_bounded(self, starts, ways):
        cache = UopCache(UopCacheConfig(n_sets=8, ways=ways))
        for start in starts:
            pc = 0x1000 + 4 * start
            cache.insert(UopCacheEntry(pc, 4, pc + 16))
        for entries in cache._sets:
            assert len(entries) <= ways

    @given(starts=st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_probe_agrees_with_lookup(self, starts):
        cache = UopCache(UopCacheConfig(n_sets=4, ways=2))
        for start in starts:
            pc = 0x1000 + REGION_BYTES * start
            cache.insert(UopCacheEntry(pc, 4, pc + 16))
            assert cache.probe(pc)
            assert cache.lookup(pc) is not None


class TestWalkerProperties:
    @settings(deadline=None, max_examples=8)
    @given(
        seed=st.integers(0, 10_000),
        loop_fraction=st.floats(0.0, 0.5),
        h2p=st.floats(0.0, 0.3),
    )
    def test_walker_always_terminates_and_validates(self, seed, loop_fraction, h2p):
        config = WorkloadConfig(
            name="prop",
            seed=seed,
            n_functions=8,
            n_instructions=2_000,
            loop_fraction=loop_fraction,
            h2p_fraction=h2p,
        )
        trace = generate_trace(config)
        trace.validate()
        assert len(trace) == 2_000

    @settings(deadline=None, max_examples=6)
    @given(seed=st.integers(0, 1_000))
    def test_call_depth_bounded_by_levels(self, seed):
        config = WorkloadConfig(
            name="depth", seed=seed, n_functions=20, call_depth_levels=4,
            n_instructions=3_000,
        )
        trace = generate_trace(config)
        depth = max_depth = 0
        for entry in trace:
            if entry.branch_class.is_call:
                depth += 1
                max_depth = max(max_depth, depth)
            elif entry.branch_class.is_return:
                depth -= 1
        # Dispatcher + one call per level at most.
        assert max_depth <= 1 + 4
