"""The documented public API surface stays importable and coherent."""

import repro


class TestRootPackage:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_simulation(self):
        trace = repro.load_workload("fp_01", 2_000).trace
        result = repro.simulate(trace, repro.SimConfig())
        assert isinstance(result, repro.SimResult)
        assert result.ipc > 0

    def test_suite_exposed(self):
        assert "srv_01" in repro.SUITE
        assert "web_01" in repro.SUITE


class TestSubpackageExports:
    def test_branch_package(self):
        from repro.branch import (  # noqa: F401
            BTB,
            ITTAGE,
            ConfidenceStats,
            RegionBTB,
            ReturnAddressStack,
            TageScL,
            make_btb,
            tage_conf_is_h2p,
            ucp_conf_is_h2p,
        )

    def test_caches_package(self):
        from repro.caches import (  # noqa: F401
            MemoryHierarchy,
            SetAssocCache,
            UopCache,
            UopEntryBuilder,
        )

    def test_prefetch_package(self):
        from repro.prefetch import make_prefetcher  # noqa: F401

    def test_frontend_package(self):
        from repro.frontend import BPU, FTQ, FetchEngine  # noqa: F401

    def test_experiments_registry_complete(self):
        from repro.experiments.registry import EXPERIMENTS

        expected = {
            "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "taba",
        }
        assert set(EXPERIMENTS) == expected
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "render")

    def test_every_module_has_docstring(self):
        import importlib
        import pkgutil

        packages = ["repro"]
        seen = []
        while packages:
            package = importlib.import_module(packages.pop())
            seen.append(package)
            if hasattr(package, "__path__"):
                for info in pkgutil.iter_modules(package.__path__):
                    packages.append(f"{package.__name__}.{info.name}")
        assert len(seen) > 40
        for module in seen:
            assert module.__doc__, f"{module.__name__} lacks a docstring"
