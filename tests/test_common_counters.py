"""Unit and property tests for saturating counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SaturatingCounter, SignedSaturatingCounter, clamp


class TestSaturatingCounter:
    def test_initial_value(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 0
        assert counter.is_zero
        assert not counter.is_saturated

    def test_increment_saturates(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated

    def test_decrement_floors_at_zero(self):
        counter = SaturatingCounter(bits=3, value=1)
        counter.decrement(5)
        assert counter.value == 0

    def test_increment_amount(self):
        counter = SaturatingCounter(bits=6)
        counter.increment(10)
        assert counter.value == 10
        counter.increment(100)
        assert counter.value == 63

    def test_reset(self):
        counter = SaturatingCounter(bits=4, value=7)
        counter.reset()
        assert counter.value == 0
        counter.reset(15)
        assert counter.value == 15

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=-1)

    def test_invalid_reset(self):
        counter = SaturatingCounter(bits=2)
        with pytest.raises(ValueError):
            counter.reset(4)

    @given(
        bits=st.integers(1, 10),
        operations=st.lists(st.tuples(st.booleans(), st.integers(1, 5)), max_size=50),
    )
    def test_always_in_range(self, bits, operations):
        counter = SaturatingCounter(bits)
        for is_increment, amount in operations:
            if is_increment:
                counter.increment(amount)
            else:
                counter.decrement(amount)
            assert 0 <= counter.value <= counter.max_value


class TestSignedSaturatingCounter:
    def test_range_3bit(self):
        counter = SignedSaturatingCounter(bits=3)
        assert counter.min_value == -4
        assert counter.max_value == 3

    def test_prediction_sign(self):
        counter = SignedSaturatingCounter(bits=3, value=0)
        assert counter.prediction is True
        counter.update(False)
        assert counter.value == -1
        assert counter.prediction is False

    def test_saturation_both_ends(self):
        counter = SignedSaturatingCounter(bits=3)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3 and counter.is_saturated
        for _ in range(20):
            counter.update(False)
        assert counter.value == -4 and counter.is_saturated

    def test_weak_centre(self):
        assert SignedSaturatingCounter(3, value=0).is_weak
        assert SignedSaturatingCounter(3, value=-1).is_weak
        assert not SignedSaturatingCounter(3, value=1).is_weak

    def test_strength_symmetry(self):
        # TAGE convention: -1/0 weak (strength 0), -4/3 fully confident.
        assert SignedSaturatingCounter(3, value=0).strength == 0
        assert SignedSaturatingCounter(3, value=-1).strength == 0
        assert SignedSaturatingCounter(3, value=3).strength == 3
        assert SignedSaturatingCounter(3, value=-4).strength == 3
        assert SignedSaturatingCounter(3, value=2).strength == 2
        assert SignedSaturatingCounter(3, value=-3).strength == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            SignedSaturatingCounter(bits=1)
        with pytest.raises(ValueError):
            SignedSaturatingCounter(bits=3, value=4)

    @given(bits=st.integers(2, 8), outcomes=st.lists(st.booleans(), max_size=60))
    def test_always_in_range(self, bits, outcomes):
        counter = SignedSaturatingCounter(bits)
        for taken in outcomes:
            counter.update(taken)
            assert counter.min_value <= counter.value <= counter.max_value
            assert 0 <= counter.strength <= counter.max_value


class TestClamp:
    def test_basic(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)

    @given(st.integers(), st.integers(-100, 100), st.integers(0, 100))
    def test_result_in_interval(self, value, low, width):
        result = clamp(value, low, low + width)
        assert low <= result <= low + width
