"""Tests for global history registers and folded (CSR) views."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.common.history import FoldedHistory, GlobalHistory, PathHistory


def reference_fold(bits: list[int], length: int, width: int) -> int:
    """Naive folding: XOR of width-bit chunks of the newest `length` bits."""
    folded = 0
    for position, bit in enumerate(bits[:length]):
        if bit:
            folded ^= 1 << (position % width)
    return folded


class TestFoldedHistory:
    def test_matches_reference_after_pushes(self):
        history = GlobalHistory(capacity=64)
        fold = history.add_folded(length=13, width=5)
        pushed: list[int] = []
        for i in range(200):
            bit = (i * 7 + 3) % 3 == 0
            history.push(bit)
            pushed.insert(0, int(bit))  # newest first
            assert fold.value == reference_fold(pushed, 13, 5)

    @given(
        length=st.integers(1, 40),
        width=st.integers(1, 16),
        bits=st.lists(st.booleans(), min_size=0, max_size=120),
    )
    def test_incremental_equals_reference(self, length, width, bits):
        history = GlobalHistory(capacity=128)
        fold = history.add_folded(length, width)
        pushed: list[int] = []
        for bit in bits:
            history.push(bit)
            pushed.insert(0, int(bit))
        assert fold.value == reference_fold(pushed, length, width)

    def test_value_stays_within_width(self):
        history = GlobalHistory(capacity=32)
        fold = history.add_folded(31, 7)
        for i in range(500):
            history.push(i % 2 == 0)
            assert 0 <= fold.value < (1 << 7)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FoldedHistory(0, 4)
        with pytest.raises(ValueError):
            FoldedHistory(4, 0)


class TestGlobalHistory:
    def test_push_and_bit(self):
        history = GlobalHistory(capacity=8)
        history.push(True)
        history.push(False)
        assert history.bit(0) == 0  # newest
        assert history.bit(1) == 1

    def test_value_window(self):
        history = GlobalHistory(capacity=16)
        for bit in [1, 1, 0, 1]:
            history.push(bool(bit))
        assert history.value(4) == 0b1101

    def test_capacity_wraps(self):
        history = GlobalHistory(capacity=4)
        for _ in range(10):
            history.push(True)
        assert history.value(4) == 0b1111
        history.push(False)
        assert history.value(4) == 0b1110

    def test_snapshot_restore(self):
        history = GlobalHistory(capacity=32)
        fold = history.add_folded(20, 6)
        for i in range(25):
            history.push(i % 3 == 0)
        state = history.snapshot()
        value_before, fold_before = history.value(32), fold.value
        for i in range(10):
            history.push(i % 2 == 0)
        history.restore(state)
        assert history.value(32) == value_before
        assert fold.value == fold_before

    def test_copy_from_resynchronises(self):
        main = GlobalHistory(capacity=32)
        alt = GlobalHistory(capacity=32)
        main_fold = main.add_folded(16, 5)
        alt_fold = alt.add_folded(16, 5)
        for i in range(40):
            main.push(i % 5 == 0)
        alt.copy_from(main)
        assert alt.value(32) == main.value(32)
        assert alt_fold.value == main_fold.value
        # Diverge after copy: independent state.
        alt.push(True)
        main.push(False)
        assert alt.value(32) != main.value(32)

    def test_copy_from_mismatched_geometry(self):
        main = GlobalHistory(capacity=32)
        other = GlobalHistory(capacity=16)
        with pytest.raises(ValueError):
            main.copy_from(other)

    def test_bad_index(self):
        history = GlobalHistory(capacity=4)
        with pytest.raises(IndexError):
            history.bit(4)

    @given(bits=st.lists(st.booleans(), min_size=1, max_size=64))
    def test_newest_bit_is_last_pushed(self, bits):
        history = GlobalHistory(capacity=64)
        for bit in bits:
            history.push(bit)
        assert history.bit(0) == int(bits[-1])


class TestPathHistory:
    def test_push_mixes_pc(self):
        path = PathHistory(bits=16)
        path.push(0x1000)
        first = path.value
        path.push(0x1004)
        assert path.value != first

    def test_snapshot_restore(self):
        path = PathHistory()
        path.push(0x4000)
        saved = path.snapshot()
        path.push(0x4010)
        path.restore(saved)
        assert path.value == saved

    def test_bounded(self):
        path = PathHistory(bits=8)
        for pc in range(0, 4096, 4):
            path.push(pc)
            assert 0 <= path.value < 256
