"""The runtime invariant checker (sim sanitizer) on the clean model.

Covers the three guarantees the tentpole promises: the clean model never
fires an invariant, enabling checks never changes simulation results, and
the whole layer costs one pointer test per cycle when off.
"""

import pytest

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import Simulator, simulate
from repro.verify import check_level, checks_enabled, make_checker
from repro.verify.invariants import INVARIANTS, SimCheckError
from repro.workloads import load_workload


def _sim(workload="int_02", n=2_000, config=None, check=None):
    trace = load_workload(workload, n).trace
    return Simulator(trace, config or SimConfig(), name=workload, check=check)


class TestEnvGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CHECK", raising=False)
        assert check_level() == 0
        assert not checks_enabled()
        assert _sim(n=50).checker is None

    @pytest.mark.parametrize("raw", ["", "0"])
    def test_explicit_off(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_CHECK", raw)
        assert check_level() == 0

    def test_on_every_cycle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CHECK", "1")
        assert check_level() == 1
        assert _sim(n=50).checker is not None

    def test_stride(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CHECK", "8")
        assert check_level() == 8
        assert _sim(n=50).checker.stride == 8

    def test_garbage_means_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CHECK", "yes please")
        assert check_level() == 1

    def test_check_flag_overrides_env_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CHECK", raising=False)
        assert _sim(n=50, check=True).checker is not None

    def test_check_false_overrides_env_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CHECK", "1")
        assert _sim(n=50, check=False).checker is None
        assert make_checker(_sim(n=50, check=False), enabled=False) is None


CONFIGS = {
    "base": SimConfig(),
    "ucp": SimConfig(ucp=UCPConfig(enabled=True)),
    "no-uop": SimConfig().without_uop_cache(),
    "mrc": SimConfig(mrc_entries=64),
}


class TestCleanModel:
    @pytest.mark.parametrize("label", sorted(CONFIGS))
    def test_no_invariant_fires(self, label):
        sim = _sim(config=CONFIGS[label], check=True)
        sim.run()  # SimCheckError would propagate
        assert sim.checker.cycles_checked > 0

    def test_h2p_heavy_workload_clean(self):
        _sim("srv_04", config=CONFIGS["ucp"], check=True).run()

    def test_checking_never_changes_results(self):
        trace = load_workload("int_02", 2_000).trace
        checked = simulate(trace, SimConfig(), check=True)
        clean = simulate(trace, SimConfig(), check=False)
        assert checked.cycles == clean.cycles
        assert checked.ipc == clean.ipc
        assert checked.window == clean.window

    def test_stride_checks_fewer_cycles(self):
        trace = load_workload("int_02", 1_000).trace
        every = Simulator(trace, SimConfig(), check=True)
        every.run()
        import os

        os.environ["REPRO_SIM_CHECK"] = "16"
        try:
            strided = Simulator(trace, SimConfig(), check=True)
        finally:
            del os.environ["REPRO_SIM_CHECK"]
        strided.run()
        assert strided.checker.stride == 16
        assert 0 < strided.checker.cycles_checked < every.checker.cycles_checked


class TestCheckerMechanics:
    def test_registry_is_populated(self):
        expected = {
            "ftq-order",
            "fetch-queue",
            "uop-cache-bounds",
            "uop-cache-entries",
            "l1i-shadow",
            "bpu-ras",
            "commit-conservation",
            "commit-monotonic",
            "queue-dispatch-seam",
            "source-exclusive",
            "ucp-queues",
            "final-conservation",
        }
        assert expected <= set(INVARIANTS)

    def test_violation_wraps_into_simcheckerror(self):
        sim = _sim(n=200, check=True)
        sim.backend.committed += 3  # corrupt the commit counter
        with pytest.raises(SimCheckError) as caught:
            sim.checker.on_cycle(0)
        assert caught.value.invariant in ("commit-conservation", "commit-monotonic")
        assert caught.value.cycle == 0
        assert "int_02" in str(caught.value)

    def test_simcheckerror_is_assertionerror(self):
        # pytest and plain `assert`-style harnesses treat it natively.
        assert issubclass(SimCheckError, AssertionError)

    def test_shadow_structures_attached_only_when_checking(self):
        checked = _sim(n=50, check=True)
        assert checked.hierarchy.l1i.shadow is not None
        assert checked.bpu.ras.shadow is not None
        unchecked = _sim(n=50, check=False)
        assert unchecked.hierarchy.l1i.shadow is None
        assert unchecked.bpu.ras.shadow is None
