"""Differential and failure-path tests for the parallel experiment engine.

The engine's contract is *bit-identical results*: running a suite through
``ParallelRunner`` (any worker count) must produce exactly the same
``SimResult`` fields as serial ``run_cached`` — same seeds, same stats
dicts, same cycle counts.  These tests verify that contract, the
``jobs=1`` fallback, worker-count resolution, single-flight dedup, and
that a failed worker leaves the cache uncorrupted.
"""

from __future__ import annotations

import os
import time

import pytest

import repro.analysis.runner as runner
from repro.analysis.parallel import (
    JobTimeoutError,
    ParallelExecutionError,
    ParallelRunner,
    SimJob,
    resolve_job_count,
    resolve_job_timeout,
    run_jobs,
)
from repro.core import SimConfig

#: A QUICK-flavoured but test-sized suite: one workload per category.
SUITE = ("srv_02", "int_02", "crypto_02", "fp_01")
N_INSTRUCTIONS = 2_000


def _result_fields(result):
    """Every externally observable field of a SimResult, for equality."""
    return {
        "name": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "window": result.window,
        "window_instructions": result.window_instructions,
        "window_cycles": result.window_cycles,
        "confidence": {
            name: stats.stats.as_dict()
            for name, stats in result.confidence.items()
        },
    }


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    monkeypatch.delenv("REPRO_SIM_JOBS", raising=False)
    runner._memory_cache.clear()
    yield tmp_path
    runner._memory_cache.clear()


def _serial_reference(tmp_path, monkeypatch):
    """Serial run_cached results computed against an isolated cache."""
    serial_dir = tmp_path / "serial"
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(serial_dir))
    runner._memory_cache.clear()
    reference = {
        name: _result_fields(
            runner.run_cached(name, SimConfig(), N_INSTRUCTIONS)
        )
        for name in SUITE
    }
    runner._memory_cache.clear()
    return reference


class TestDifferential:
    def test_parallel_identical_to_serial(self, fresh_cache, monkeypatch):
        reference = _serial_reference(fresh_cache, monkeypatch)

        parallel_dir = fresh_cache / "parallel"
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(parallel_dir))
        engine = ParallelRunner(jobs=2)
        jobs = [SimJob(name, SimConfig(), N_INSTRUCTIONS) for name in SUITE]
        results = engine.run(jobs)

        assert engine.stats.counters["jobs_simulated"] == len(SUITE)
        for job in jobs:
            assert _result_fields(results[job.key]) == reference[job.workload]

    def test_jobs_1_fallback_identical(self, fresh_cache, monkeypatch):
        reference = _serial_reference(fresh_cache, monkeypatch)

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(fresh_cache / "one"))
        engine = ParallelRunner(jobs=1)
        jobs = [SimJob(name, SimConfig(), N_INSTRUCTIONS) for name in SUITE]
        results = engine.run(jobs)
        for job in jobs:
            assert _result_fields(results[job.key]) == reference[job.workload]

    def test_run_suite_matches_run_cached(self, fresh_cache):
        suite = runner.run_suite(list(SUITE), SimConfig(), N_INSTRUCTIONS)
        for name in SUITE:
            direct = runner.run_cached(name, SimConfig(), N_INSTRUCTIONS)
            assert _result_fields(suite[name]) == _result_fields(direct)


class TestScheduling:
    def test_duplicate_jobs_simulate_once(self, fresh_cache):
        engine = ParallelRunner(jobs=2)
        job = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        results = engine.run([job, job, job])
        assert engine.stats.counters["jobs_requested"] == 3
        assert engine.stats.counters["jobs_deduped"] == 2
        assert engine.stats.counters["jobs_simulated"] == 1
        assert set(results) == {job.key}

    def test_cache_hits_not_resimulated(self, fresh_cache):
        job = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        ParallelRunner(jobs=1).run([job])
        runner._memory_cache.clear()  # force the disk path
        engine = ParallelRunner(jobs=1)
        engine.run([job])
        assert engine.stats.counters["jobs_from_disk"] == 1
        assert engine.stats.counters["jobs_simulated"] == 0
        engine2 = ParallelRunner(jobs=1)
        engine2.run([job])
        assert engine2.stats.counters["jobs_from_memory"] == 1

    def test_progress_callback_sees_every_job(self, fresh_cache):
        seen = []
        engine = ParallelRunner(
            jobs=2, progress=lambda done, total, job: seen.append((done, total))
        )
        jobs = [SimJob(name, SimConfig(), N_INSTRUCTIONS) for name in SUITE]
        engine.run(jobs)
        assert len(seen) == len(SUITE)
        assert seen[-1] == (len(SUITE), len(SUITE))
        assert [done for done, _ in seen] == list(range(1, len(SUITE) + 1))

    def test_worker_count_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_JOBS", raising=False)
        assert resolve_job_count(3) == 3
        assert resolve_job_count() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_SIM_JOBS", "7")
        assert resolve_job_count() == 7
        assert resolve_job_count(2) == 2  # explicit arg wins
        monkeypatch.setenv("REPRO_SIM_JOBS", "not-a-number")
        assert resolve_job_count() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_SIM_JOBS", "0")
        assert resolve_job_count() == 1  # clamped

    def test_engine_stats_render(self, fresh_cache):
        engine = ParallelRunner(jobs=1)
        engine.run([SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)])
        text = engine.stats.render()
        assert "1 simulated" in text and "jobs/s" in text
        assert engine.stats.throughput > 0.0


class TestFailurePaths:
    def test_failed_worker_raises_and_preserves_cache(self, fresh_cache):
        engine = ParallelRunner(jobs=2)
        jobs = [
            SimJob("fp_01", SimConfig(), N_INSTRUCTIONS),
            SimJob("no_such_workload", SimConfig(), N_INSTRUCTIONS),
            SimJob("crypto_02", SimConfig(), N_INSTRUCTIONS),
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            engine.run(jobs)
        assert "no_such_workload" in str(excinfo.value)
        assert engine.stats.counters["jobs_failed"] == 1
        # The good jobs landed in the cache, and every entry is valid.
        assert engine.stats.counters["jobs_simulated"] == 2
        report = runner.verify_disk_cache()
        assert report["corrupt"] == []
        assert report["ok"] == 2

    def test_failed_worker_serial_fallback(self, fresh_cache):
        engine = ParallelRunner(jobs=1)
        with pytest.raises(ParallelExecutionError):
            engine.run([SimJob("no_such_workload", SimConfig(), 1_000)])
        assert runner.verify_disk_cache() == {"ok": 0, "corrupt": []}

    def test_results_usable_after_partial_failure(self, fresh_cache):
        engine = ParallelRunner(jobs=2)
        good = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        bad = SimJob("no_such_workload", SimConfig(), N_INSTRUCTIONS)
        with pytest.raises(ParallelExecutionError):
            engine.run([good, bad])
        # The good result is cached: a retry without the bad job is a hit.
        retry = ParallelRunner(jobs=2)
        retry.run([good])
        assert retry.stats.counters["jobs_simulated"] == 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="wall-clock speedup needs >= 2 cores"
)
class TestSpeedup:
    def test_parallel_faster_than_serial_uncached(self, fresh_cache, monkeypatch):
        from repro.experiments.common import QUICK

        jobs = [
            SimJob(name, SimConfig(), QUICK.n_instructions)
            for name in QUICK.workloads
        ]

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(fresh_cache / "serial"))
        runner._memory_cache.clear()
        start = time.perf_counter()
        ParallelRunner(jobs=1).run(jobs)
        serial_seconds = time.perf_counter() - start

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(fresh_cache / "par"))
        runner._memory_cache.clear()
        start = time.perf_counter()
        ParallelRunner(jobs=4).run(jobs)
        parallel_seconds = time.perf_counter() - start

        assert parallel_seconds < serial_seconds


class TestRunJobsHelper:
    def test_run_jobs_wrapper(self, fresh_cache):
        job = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        results = run_jobs([job], workers=1)
        assert results[job.key].name == "fp_01"


def _wedged_execute(workload, config, n_instructions):
    """Module-level (picklable) stand-in for ``_execute_job`` that wedges
    on one workload — pool workers resolve it by qualified name."""
    import repro.analysis.parallel as parallel

    if workload == "int_02":
        time.sleep(60.0)  # far past the test timeout; the pool is killed
    return parallel._original_execute_job(workload, config, n_instructions)


class TestJobTimeout:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_JOB_TIMEOUT", raising=False)
        assert resolve_job_timeout() is None
        assert resolve_job_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_SIM_JOB_TIMEOUT", "7")
        assert resolve_job_timeout() == 7.0
        assert resolve_job_timeout(2.5) == 2.5  # explicit arg wins
        for garbage in ("0", "-3", "soon", ""):
            monkeypatch.setenv("REPRO_SIM_JOB_TIMEOUT", garbage)
            assert resolve_job_timeout() is None

    def test_runner_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_JOB_TIMEOUT", "9.5")
        assert ParallelRunner(jobs=2).job_timeout == 9.5
        assert ParallelRunner(jobs=2, job_timeout=1.0).job_timeout == 1.0

    def test_wedged_job_fails_cleanly(self, fresh_cache, monkeypatch):
        import repro.analysis.parallel as parallel

        monkeypatch.setattr(
            parallel, "_original_execute_job", parallel._execute_job,
            raising=False,
        )
        monkeypatch.setattr(parallel, "_execute_job", _wedged_execute)
        engine = ParallelRunner(jobs=2, job_timeout=1.5)
        good = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        wedged = SimJob("int_02", SimConfig(), N_INSTRUCTIONS)
        start = time.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            engine.run([good, wedged])
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0  # abandoned, not awaited for 60s
        failures = excinfo.value.failures
        assert len(failures) == 1
        job, error = failures[0]
        assert job.key == wedged.key
        assert isinstance(error, JobTimeoutError)
        assert "per-job timeout" in str(error)
        assert engine.stats.counters["jobs_timed_out"] == 1
        # The healthy job completed and is cached: a retry is a pure hit.
        retry = ParallelRunner(jobs=2)
        retry.run([good])
        assert retry.stats.counters["jobs_simulated"] == 0
        # The wedged key never produced a (possibly truncated) entry.
        report = runner.verify_disk_cache()
        assert report["corrupt"] == []

    def test_serial_path_ignores_timeout(self, fresh_cache):
        # The in-process fallback cannot abandon a job; a tiny timeout
        # must not fail healthy serial runs.
        engine = ParallelRunner(jobs=1, job_timeout=0.001)
        job = SimJob("fp_01", SimConfig(), N_INSTRUCTIONS)
        results = engine.run([job])
        assert results[job.key].name == "fp_01"
