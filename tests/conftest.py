"""Shared fixtures for the test suite.

Centralises the helpers that had grown up independently in
``test_champsim_io.py`` / ``test_runner_cache.py`` / ``test_textio.py``:
tiny hand-built traces, a redirected result-cache directory, and a
redirected ingested-trace store.
"""

from __future__ import annotations

import pytest

from repro.isa import BranchClass, Trace, TraceEntry


def build_sample_trace() -> Trace:
    """Six-entry call/return/conditional trace (the classic textio sample)."""
    return Trace.from_entries(
        "sample",
        [
            TraceEntry(0x1000),
            TraceEntry(0x1004, BranchClass.CALL_DIRECT, True, 0x2000),
            TraceEntry(0x2000),
            TraceEntry(0x2004, BranchClass.RETURN, True, 0x1008),
            TraceEntry(0x1008, BranchClass.COND_DIRECT, False, 0),
            TraceEntry(0x100C),
        ],
    )


def build_branchy_trace() -> Trace:
    """Twelve-entry canonical trace exercising every :class:`BranchClass`."""
    return Trace.from_entries(
        "branchy",
        [
            TraceEntry(0x1000),
            TraceEntry(0x1004, BranchClass.COND_DIRECT, True, 0x1010),
            TraceEntry(0x1010, BranchClass.CALL_DIRECT, True, 0x2000),
            TraceEntry(0x2000),
            TraceEntry(0x2004, BranchClass.RETURN, True, 0x1014),
            TraceEntry(0x1014, BranchClass.COND_DIRECT, False, 0),
            TraceEntry(0x1018, BranchClass.UNCOND_DIRECT, True, 0x1020),
            TraceEntry(0x1020, BranchClass.CALL_INDIRECT, True, 0x3000),
            TraceEntry(0x3000, BranchClass.RETURN, True, 0x1024),
            TraceEntry(0x1024, BranchClass.INDIRECT, True, 0x1030),
            TraceEntry(0x1030),
            TraceEntry(0x1034),
        ],
    )


@pytest.fixture()
def sample_trace() -> Trace:
    return build_sample_trace()


@pytest.fixture()
def branchy_trace() -> Trace:
    trace = build_branchy_trace()
    trace.validate()
    return trace


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Redirect the result disk cache to a fresh directory, clear memory."""
    import repro.analysis.runner as runner

    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    runner._memory_cache.clear()
    yield tmp_path
    runner._memory_cache.clear()


@pytest.fixture()
def trace_store(tmp_path, monkeypatch):
    """Redirect the ingested-trace store to a fresh directory."""
    from repro.workloads.suite import _cached_ingested

    store = tmp_path / "simtraces"
    monkeypatch.setenv("REPRO_TRACE_DIR", str(store))
    _cached_ingested.cache_clear()
    yield store
    _cached_ingested.cache_clear()
