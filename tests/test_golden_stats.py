"""Golden-stat regression fixtures: pinned end-to-end simulator numbers.

Three workloads spanning the suite's regimes (small/predictable fp_01,
medium int_02, H2P-heavy srv_05) are simulated under the baseline and UCP
configurations and compared against checksummed JSON fixtures in
``tests/golden/``.  Any semantic change to the simulator shows up here as
an explicit, reviewable diff.

Regenerate after an *intentional* semantics change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_stats.py

and commit the updated fixtures (the simulator is fully deterministic, so
regeneration is reproducible on any machine).
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import simulate
from repro.workloads import load_workload

GOLDEN_DIR = Path(__file__).parent / "golden"
N_INSTRUCTIONS = 6_000

#: (workload, config label) -> SimConfig
CASES = {
    ("fp_01", "base"): SimConfig(),
    ("fp_01", "ucp"): SimConfig(ucp=UCPConfig(enabled=True)),
    ("int_02", "base"): SimConfig(),
    ("int_02", "ucp"): SimConfig(ucp=UCPConfig(enabled=True)),
    ("srv_05", "base"): SimConfig(),
    ("srv_05", "ucp"): SimConfig(ucp=UCPConfig(enabled=True)),
}

#: Comparison tolerances, explicit per stat.  The simulator is
#: deterministic, so integers must match exactly; the float tolerances
#: only absorb formatting (fixtures store floats rounded to 6 places).
TOLERANCES = {
    "cycles": 0,
    "uops_committed": 0,
    "uops_uop": 0,
    "uops_decode": 0,
    "uops_mrc": 0,
    "cond_mispredictions": 0,
    "mode_switches": 0,
    "ipc": 1e-6,
    "uop_hit_rate": 1e-6,
    "cond_mpki": 1e-6,
    "switch_pki": 1e-6,
}


def _compute_stats(workload: str, config: SimConfig) -> dict:
    trace = load_workload(workload, N_INSTRUCTIONS).trace
    result = simulate(trace, config, name=workload)
    window = result.window
    return {
        "cycles": result.cycles,
        "uops_committed": result.instructions,
        "uops_uop": window.get("uops_uop", 0),
        "uops_decode": window.get("uops_decode", 0),
        "uops_mrc": window.get("uops_mrc", 0),
        "cond_mispredictions": window.get("cond_mispredictions", 0),
        "mode_switches": window.get("mode_switches", 0),
        "ipc": round(result.ipc, 6),
        "uop_hit_rate": round(result.uop_hit_rate, 6),
        "cond_mpki": round(result.cond_mpki, 6),
        "switch_pki": round(result.switch_pki, 6),
    }


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _fixture_path(workload: str, label: str) -> Path:
    return GOLDEN_DIR / f"{workload}_{label}.json"


def _write_fixture(workload: str, label: str, stats: dict) -> None:
    payload = {
        "schema": 1,
        "workload": workload,
        "config": label,
        "n_instructions": N_INSTRUCTIONS,
        "stats": stats,
    }
    payload["sha256"] = _digest(
        {key: payload[key] for key in sorted(payload) if key != "sha256"}
    )
    GOLDEN_DIR.mkdir(exist_ok=True)
    _fixture_path(workload, label).write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize(("workload", "label"), sorted(CASES))
def test_golden_stats(workload, label):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        _write_fixture(workload, label, _compute_stats(workload, CASES[(workload, label)]))

    path = _fixture_path(workload, label)
    assert path.exists(), (
        f"missing golden fixture {path.name} — regenerate with "
        f"REPRO_REGEN_GOLDEN=1"
    )
    fixture = json.loads(path.read_text())

    # Integrity first: a hand-edited or truncated fixture is an error in
    # its own right, distinct from a simulator regression.
    body = {key: fixture[key] for key in sorted(fixture) if key != "sha256"}
    assert _digest(body) == fixture["sha256"], (
        f"{path.name} failed its checksum — fixture corrupted or "
        f"hand-edited; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert fixture["n_instructions"] == N_INSTRUCTIONS

    actual = _compute_stats(workload, CASES[(workload, label)])
    expected = fixture["stats"]
    assert set(actual) == set(expected) == set(TOLERANCES)
    for stat, tolerance in TOLERANCES.items():
        got, want = actual[stat], expected[stat]
        if tolerance == 0:
            assert got == want, (
                f"{workload}/{label}: {stat} changed {want} -> {got} "
                f"(exact-match stat; if intentional, regenerate fixtures)"
            )
        else:
            assert got == pytest.approx(want, abs=tolerance), (
                f"{workload}/{label}: {stat} changed {want} -> {got} "
                f"(tolerance {tolerance})"
            )
