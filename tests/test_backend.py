"""Tests for the abstract backend."""

from repro.common.stats import StatBlock
from repro.core.backend import Backend
from repro.core.configs import BackendConfig
from repro.isa import BranchClass, Trace, TraceEntry


def make_trace(n=64, branch_every=0):
    entries = []
    pc = 0x1000
    for i in range(n):
        if branch_every and i % branch_every == branch_every - 1:
            entries.append(TraceEntry(pc, BranchClass.COND_DIRECT, False, 0))
        else:
            entries.append(TraceEntry(pc))
        pc += 4
    return Trace.from_entries("t", entries)


class TestDispatchCommit:
    def test_simple_flow(self):
        trace = make_trace(8)
        backend = Backend(BackendConfig(), trace, StatBlock())
        for i in range(8):
            completion = backend.dispatch(i, cycle=0)
            assert completion > 0
        # Eventually everything commits.
        cycle = 0
        while backend.committed < 8:
            backend.commit(cycle)
            cycle += 1
            assert cycle < 1000
        assert backend.committed == 8

    def test_commit_in_order_and_width_limited(self):
        trace = make_trace(32)
        config = BackendConfig(commit_width=4)
        backend = Backend(config, trace, StatBlock())
        for i in range(32):
            backend.dispatch(i, cycle=0)
        retired = backend.commit(cycle=10_000)  # all long complete
        assert retired == 4

    def test_rob_capacity(self):
        trace = make_trace(64)
        config = BackendConfig(rob_entries=16)
        backend = Backend(config, trace, StatBlock())
        for i in range(16):
            assert backend.rob_has_room()
            backend.dispatch(i, cycle=0)
        assert not backend.rob_has_room()
        backend.commit(cycle=10_000)
        assert backend.rob_has_room()

    def test_completion_of_unknown_index(self):
        trace = make_trace(4)
        backend = Backend(BackendConfig(), trace, StatBlock())
        assert backend.completion_of(0) is None
        backend.dispatch(0, cycle=5)
        assert backend.completion_of(0) is not None


class TestBranchResolution:
    def test_branch_latency_is_fixed(self):
        trace = make_trace(16, branch_every=4)
        config = BackendConfig(branch_latency=8)
        backend = Backend(config, trace, StatBlock())
        completion = backend.dispatch(3, cycle=10)  # index 3 is a branch
        assert completion == 10 + 1 + 8

    def test_branch_ignores_dependency_chain(self):
        trace = make_trace(16, branch_every=4)
        config = BackendConfig(branch_latency=8, long_load_latency=500)
        backend = Backend(config, trace, StatBlock())
        # Dispatch a bunch of slow work first.
        for i in range(3):
            backend.dispatch(i, cycle=0)
        completion = backend.dispatch(3, cycle=0)
        assert completion == 0 + 1 + 8


class TestIssueWidth:
    def test_completions_rate_limited(self):
        trace = make_trace(64)
        config = BackendConfig(issue_width=2, simple_latency=1, load_hash_mod=10**9, dep_window=1)
        backend = Backend(config, trace, StatBlock())
        completions = [backend.dispatch(i, cycle=0) for i in range(10)]
        # At most 2 completions may land on any single cycle.
        from collections import Counter

        per_cycle = Counter(completions)
        assert max(per_cycle.values()) <= 2
