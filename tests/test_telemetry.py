"""Tests for the service-wide telemetry plane (:mod:`repro.observe.telemetry`).

Four layers, bottom-up:

* unit — metrics registry semantics (families, labels, exposition),
  span sinks/trees/Perfetto export, flight-recorder rings and dumps,
  the HTTP exposition endpoint's pure ``render``;
* gating — ``REPRO_SIM_TELEMETRY`` off must mean ``maybe*()`` is None
  and simulation results are **bit-identical** to telemetry-on runs;
* service — a served job yields one connected span tree
  (client.run → serve.request → sched.job → worker.job →
  runner.simulate), a crashed worker dumps a flight-recorder artifact
  containing the job's final events, streamed interval/taxonomy events
  are bit-identical to a local observer run even when the worker falls
  back from the replay kernel to the interpreter, and the
  ``--metrics-port`` endpoint scrapes over real HTTP;
* CLI — ``repro top``, ``repro cache stats`` lifetime rates and
  ``--json``, and the ``repro metrics`` engine/fallback surface.

Server tests reuse the :mod:`tests.test_serve` harness idioms: thread
mode on a real localhost socket, sync tests driving :func:`run_async`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from concurrent.futures import BrokenExecutor

import pytest

import repro.analysis.runner as runner
import repro.core.kernel.engine as kernel_engine
import repro.serve.scheduler as scheduler_mod
from repro.cli import main
from repro.core import SimConfig
from repro.core.kernel import KernelSimulator
from repro.core.pipeline import Simulator
from repro.observe import stream, telemetry
from repro.observe.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    SpanContext,
    SpanSink,
    span_tree,
    spans_to_perfetto,
)
from repro.observe.telemetry.httpd import MetricsEndpoint
from repro.observe.telemetry.top import render_status, run_top
from repro.serve.client import ServeClient
from repro.serve.server import ExperimentServer
from repro.workloads.suite import load_workload

N_INSTRUCTIONS = 2_000


def run_async(coro, timeout: float = 120.0):
    """Drive one async test body to completion with a safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture()
def telemetry_on(monkeypatch):
    """Fresh singletons with the telemetry plane enabled."""
    monkeypatch.setenv("REPRO_SIM_TELEMETRY", "1")
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture()
def telemetry_off(monkeypatch):
    """Fresh singletons with the telemetry plane explicitly disabled."""
    monkeypatch.delenv("REPRO_SIM_TELEMETRY", raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    runner._memory_cache.clear()
    yield tmp_path
    runner._memory_cache.clear()


async def _with_server(body, **server_kwargs):
    kwargs = {"mode": "thread", "shards": 2, "log": lambda *_: None}
    kwargs.update(server_kwargs)
    server = ExperimentServer(**kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.close()


# ---------------------------------------------------------------------------
# gating


class TestGating:
    def test_off_by_default(self, telemetry_off):
        assert telemetry.telemetry_level() == 0
        assert telemetry.telemetry_enabled() is False
        assert telemetry.maybe() is None
        assert telemetry.maybe_spans() is None
        assert telemetry.maybe_recorder() is None

    @pytest.mark.parametrize("raw", ["", "0"])
    def test_empty_and_zero_mean_off(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_TELEMETRY", raw)
        assert telemetry.telemetry_level() == 0

    def test_on_returns_process_singletons(self, telemetry_on):
        tel = telemetry.maybe()
        assert isinstance(tel, MetricsRegistry)
        assert telemetry.maybe() is tel  # same object every call
        assert telemetry.registry() is tel
        assert isinstance(telemetry.maybe_spans(), SpanSink)
        assert isinstance(telemetry.maybe_recorder(), FlightRecorder)

    def test_override_beats_environment(self, telemetry_off):
        assert telemetry.telemetry_enabled(override=True) is True
        assert telemetry.maybe(override=True) is not None
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv("REPRO_SIM_TELEMETRY", "1")
            assert telemetry.telemetry_enabled(override=False) is False
            assert telemetry.maybe(override=False) is None

    def test_reset_discards_state(self, telemetry_on):
        telemetry.registry().counter("repro_test_total").inc()
        before = telemetry.registry()
        telemetry.reset()
        after = telemetry.registry()
        assert after is not before
        assert after.value("repro_test_total") is None


# ---------------------------------------------------------------------------
# metrics registry


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        family = reg.counter("repro_jobs_total", "jobs", labels=("outcome",))
        family.inc(outcome="ok")
        family.inc(2, outcome="ok")
        family.inc(outcome="failed")
        assert reg.value("repro_jobs_total", outcome="ok") == 3
        assert reg.value("repro_jobs_total", outcome="failed") == 1

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_jobs_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("repro_queue_depth", "depth", labels=("shard",))
        gauge.set(4, shard="0")
        gauge.labels(shard="0").inc()
        gauge.labels(shard="0").dec(2.0)
        assert reg.value("repro_queue_depth", shard="0") == 3.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_seconds", buckets=(0.1, 1.0)).labels()
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.cumulative() == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
        assert hist.total == 4
        assert hist.sum == pytest.approx(6.05)

    def test_label_schema_is_enforced(self):
        reg = MetricsRegistry()
        family = reg.counter("repro_jobs_total", labels=("outcome",))
        with pytest.raises(ValueError):
            family.inc(shard="0")  # wrong label name
        with pytest.raises(ValueError):
            family.inc()  # missing label

    def test_reregistration_idempotent_but_kind_checked(self):
        reg = MetricsRegistry()
        first = reg.counter("repro_jobs_total", labels=("outcome",))
        again = reg.counter("repro_jobs_total", labels=("outcome",))
        assert again is first
        with pytest.raises(ValueError):
            reg.gauge("repro_jobs_total", labels=("outcome",))
        with pytest.raises(ValueError):
            reg.counter("repro_jobs_total", labels=("shard",))

    def test_bad_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("Repro-Jobs")
        with pytest.raises(ValueError):
            reg.counter("0jobs")

    def test_value_never_creates_series(self):
        reg = MetricsRegistry()
        assert reg.value("repro_missing_total") is None
        reg.counter("repro_jobs_total", labels=("outcome",))
        assert reg.value("repro_jobs_total", outcome="never-fired") is None
        assert reg.families()[0].series() == []

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "jobs", labels=("outcome",)).inc(
            outcome="ok"
        )
        reg.histogram("repro_seconds", "latency", buckets=(1.0,)).observe(0.5)
        snapshot = reg.snapshot()
        assert snapshot["schema"] == 1
        by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
        jobs = by_name["repro_jobs_total"]
        assert jobs["kind"] == "counter"
        assert jobs["samples"] == [{"labels": {"outcome": "ok"}, "value": 1}]
        seconds = by_name["repro_seconds"]["samples"][0]
        assert seconds["count"] == 1
        assert seconds["sum"] == pytest.approx(0.5)
        assert seconds["buckets"]["+Inf"] == 1
        json.dumps(snapshot)  # JSON-safe end to end

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs by outcome.", labels=("outcome",)).inc(
            outcome='we"ird\nlabel\\'
        )
        reg.histogram("repro_seconds", "Latency.", buckets=(0.5,)).observe(0.1)
        text = reg.render_prometheus()
        assert "# HELP repro_jobs_total Jobs by outcome.\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert 'repro_jobs_total{outcome="we\\"ird\\nlabel\\\\"} 1\n' in text
        assert 'repro_seconds_bucket{le="0.5"} 1\n' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1\n' in text
        assert "repro_seconds_sum 0.1\n" in text
        assert "repro_seconds_count 1\n" in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# spans


class TestSpans:
    def test_context_wire_roundtrip(self):
        context = SpanContext(trace_id="t" * 32, span_id="s" * 16)
        assert SpanContext.from_wire(context.as_wire()) == context

    @pytest.mark.parametrize(
        "wire",
        [None, "nope", {}, {"trace_id": "t"}, {"trace_id": "", "span_id": "s"},
         {"trace_id": 7, "span_id": "s"}],
    )
    def test_from_wire_rejects_malformed(self, wire):
        assert SpanContext.from_wire(wire) is None

    def test_child_inherits_trace_and_parent(self):
        sink = SpanSink()
        root = sink.start_span("client.run")
        child = sink.start_span("serve.request", parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_finish_retains_and_merges_attrs(self):
        sink = SpanSink()
        span = sink.start_span("sched.job", attrs={"key": "k"})
        assert len(sink) == 0  # unfinished spans are not retained
        sink.finish(span, outcome="ok")
        assert len(sink) == 1
        kept = sink.spans()[0]
        assert kept.end is not None and kept.end >= kept.start
        assert kept.attrs == {"key": "k", "outcome": "ok"}

    def test_record_ingests_worker_dicts(self):
        sink = SpanSink()
        worker = SpanSink()
        span = worker.start_span("worker.job")
        worker.finish(span)
        assert sink.record(span.to_dict()) is not None
        assert sink.record({"name": 3}) is None  # malformed → dropped
        assert [s.span_id for s in sink.spans()] == [span.span_id]

    def test_span_tree_groups_children_under_parents(self):
        sink = SpanSink()
        root = sink.start_span("client.run")
        child = sink.start_span("sched.job", parent=root.context)
        orphan = sink.start_span("worker.job", parent=SpanContext("t", "gone"))
        for span in (root, child, orphan):
            sink.finish(span)
        tree = span_tree(sink.spans())
        assert {s.name for s in tree[None]} == {"client.run", "worker.job"}
        assert [s.name for s in tree[root.span_id]] == ["sched.job"]

    def test_perfetto_export(self):
        sink = SpanSink()
        root = sink.start_span("client.run")
        child = sink.start_span("runner.simulate", parent=root.context)
        sink.finish(child)
        sink.finish(root)
        sink.start_span("serve.request")  # unfinished → excluded
        trace = spans_to_perfetto(sink.spans())
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"client", "runner"}
        assert len(slices) == 2
        assert min(e["ts"] for e in slices) == 0.0  # rebased to t=0
        by_name = {e["name"]: e for e in slices}
        assert by_name["client.run"]["tid"] == 1
        assert by_name["runner.simulate"]["tid"] == 5
        assert by_name["runner.simulate"]["args"]["parent_id"] == root.span_id
        json.dumps(trace)


# ---------------------------------------------------------------------------
# flight recorder


class TestFlightRecorder:
    def test_rings_are_per_shard_and_bounded(self):
        rec = FlightRecorder(maxlen=3)
        for i in range(5):
            rec.record("shard-0", "job-started", key=f"k{i}")
        rec.record("shard-1", "job-started", key="other")
        assert [e["key"] for e in rec.events("shard-0")] == ["k2", "k3", "k4"]
        assert [e["shard"] for e in rec.events("shard-1")] == ["shard-1"]

    def test_merged_view_sorted_by_seq(self):
        rec = FlightRecorder()
        rec.record("shard-1", "a")
        rec.record("shard-0", "b")
        rec.record("shard-1", "c")
        merged = rec.events()
        assert [e["event"] for e in merged] == ["a", "b", "c"]
        assert [e["seq"] for e in merged] == sorted(e["seq"] for e in merged)

    def test_dump_writes_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        rec = FlightRecorder()
        rec.record("shard-0", "job-started", key="k")
        rec.record("shard-0", "job-quarantined", key="k", reason="worker died")
        path = rec.dump("shard-0", "worker-crash")
        assert path is not None
        assert path.parent == tmp_path
        assert path.name == "flight-recorder-shard-0-001.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["reason"] == "worker-crash"
        assert [e["event"] for e in payload["events"]] == [
            "job-started",
            "job-quarantined",
        ]
        assert rec.dumps == [path]

    def test_dump_of_empty_ring_is_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        rec = FlightRecorder()
        assert rec.dump("shard-9", "timeout") is None
        assert rec.dumps == []


# ---------------------------------------------------------------------------
# HTTP exposition


class TestMetricsEndpoint:
    def test_render_paths_when_on(self, telemetry_on):
        telemetry.registry().counter("repro_test_total", "T.").inc()
        endpoint = MetricsEndpoint()
        prom = endpoint.render("/metrics").decode()
        assert "200 OK" in prom and "repro_test_total 1" in prom
        body = endpoint.render("/metrics.json").decode().split("\r\n\r\n", 1)[1]
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["metrics"][0]["name"] == "repro_test_total"
        assert b"ok" in endpoint.render("/healthz")
        assert b"404" in endpoint.render("/nope")

    def test_render_when_off_still_answers(self, telemetry_off):
        endpoint = MetricsEndpoint()
        assert b"# telemetry disabled" in endpoint.render("/metrics")
        body = endpoint.render("/metrics.json").decode().split("\r\n\r\n", 1)[1]
        assert json.loads(body) == {"enabled": False, "metrics": []}

    def test_live_scrape(self, telemetry_on):
        telemetry.registry().counter("repro_live_total", "L.").inc(7)

        async def scenario():
            endpoint = MetricsEndpoint()
            await endpoint.start()
            try:
                return await _http_get(endpoint.port, "/metrics")
            finally:
                await endpoint.close()

        response = run_async(scenario())
        assert "HTTP/1.1 200 OK" in response
        assert "repro_live_total 7" in response


async def _http_get(port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return raw.decode()


# ---------------------------------------------------------------------------
# bit-identity: telemetry must never perturb simulation results


class TestBitIdentity:
    def _run(self, sim_cls, override: str | None, monkeypatch) -> dict:
        with pytest.MonkeyPatch.context() as mp:
            if override is None:
                mp.delenv("REPRO_SIM_TELEMETRY", raising=False)
            else:
                mp.setenv("REPRO_SIM_TELEMETRY", override)
            telemetry.reset()
            try:
                spec = load_workload("fp_01", N_INSTRUCTIONS)
                sim = sim_cls(spec.trace, SimConfig(), name="fp_01", observe=True)
                return sim.run().to_dict()
            finally:
                telemetry.reset()

    def test_interpreter_results_identical_on_vs_off(self, monkeypatch):
        off = self._run(Simulator, None, monkeypatch)
        on = self._run(Simulator, "1", monkeypatch)
        assert off == on

    def test_kernel_engine_results_identical_on_vs_off(self, monkeypatch):
        off = self._run(KernelSimulator, None, monkeypatch)
        on = self._run(KernelSimulator, "1", monkeypatch)
        assert off == on


# ---------------------------------------------------------------------------
# service acceptance: connected span tree through a served job


class TestServedSpanTree:
    def test_one_job_yields_one_connected_tree(self, fresh_cache, telemetry_on):
        async def scenario(server):
            async with ServeClient(port=server.port) as client:
                reply = await client.run(
                    ["fp_01"], n_instructions=N_INSTRUCTIONS
                )
            assert len(reply.results) == 1 and not reply.errors

        run_async(_with_server(scenario))
        spans = telemetry.spans().spans()
        roots = [s for s in spans if s.name == "client.run"]
        assert len(roots) == 1
        trace = telemetry.spans().for_trace(roots[0].trace_id)
        names = {span.name for span in trace}
        assert {
            "client.run",
            "serve.request",
            "sched.job",
            "worker.job",
            "runner.simulate",
        } <= names
        # Connected: exactly one root; every other span hangs off a
        # known parent (span_tree files unknown parents under None).
        tree = span_tree(trace)
        assert tree[None] == roots
        assert sum(len(children) for children in tree.values()) == len(trace)
        # And the tree is Perfetto-renderable: one slice per span, one
        # synthetic thread per service layer.
        events = spans_to_perfetto(trace)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(trace)
        layers = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"client", "serve", "sched", "worker", "runner"} <= layers

    def test_worker_spans_carry_job_attrs(self, fresh_cache, telemetry_on):
        async def scenario(server):
            async with ServeClient(port=server.port) as client:
                await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)

        run_async(_with_server(scenario))
        spans = {s.name: s for s in telemetry.spans().spans()}
        assert spans["worker.job"].attrs["workload"] == "fp_01"
        assert spans["runner.simulate"].attrs["instructions"] == N_INSTRUCTIONS
        assert spans["sched.job"].attrs["workload"] == "fp_01"


# ---------------------------------------------------------------------------
# service acceptance: crash → flight-recorder artifact


class TestCrashDump:
    def test_worker_crash_dumps_final_events(
        self, fresh_cache, telemetry_on, tmp_path, monkeypatch
    ):
        out = tmp_path / "artifacts"
        out.mkdir()
        monkeypatch.setenv("REPRO_BENCH_OUT", str(out))
        real = scheduler_mod._default_job_entry

        def crashing(workload, config, n_instructions):
            if workload == "int_01":
                raise BrokenExecutor("worker killed")
            return real(workload, config, n_instructions)

        monkeypatch.setattr(scheduler_mod, "_JOB_ENTRY", crashing)

        async def scenario(server):
            async with ServeClient(port=server.port) as client:
                reply = await client.run(
                    ["int_01"], n_instructions=N_INSTRUCTIONS
                )
            assert len(reply.errors) == 1
            assert reply.errors[0]["code"] == "worker-crash"

        run_async(_with_server(scenario, shards=1))

        key = runner.cache_key("int_01", N_INSTRUCTIONS, SimConfig())
        dumps = telemetry.recorder().dumps
        assert dumps and dumps[-1].parent == out
        payload = json.loads(dumps[-1].read_text())
        assert payload["shard"] == "shard-0"
        assert payload["reason"] == "worker-crash"
        events = [(e["event"], e.get("key")) for e in payload["events"]]
        # The ring ends with the crashed job's final events, in order.
        for expected in (
            ("job-submitted", key),
            ("job-started", key),
            ("job-retry", key),
            ("job-quarantined", key),
            ("shard-restart", key),
        ):
            assert expected in events
        assert events.index(("job-retry", key)) < events.index(
            ("job-quarantined", key)
        )
        # The restart counter carries the shard/reason labels.
        assert (
            telemetry.registry().value(
                "repro_sched_restarts_total", shard="0", reason="worker-crash"
            )
            == 1
        )


# ---------------------------------------------------------------------------
# satellite: streamed telemetry is bit-identical to a local observer run,
# including when the worker falls back from the replay kernel


class TestStreamedTelemetryBitIdentity:
    def test_streamed_events_match_local_run(self, fresh_cache, telemetry_on):
        async def scenario(server):
            async with ServeClient(port=server.port) as client:
                return await client.run(
                    ["fp_01"], n_instructions=N_INSTRUCTIONS, stream=True
                )

        reply = run_async(_with_server(scenario))
        assert len(reply.results) == 1 and not reply.errors
        streamed = [
            {k: v for k, v in event.items() if k not in ("type", "id")}
            for event in reply.events
        ]

        # The served worker ran KernelSimulator with the observer armed:
        # the kernel itself fell back to the interpreter mid-suite and
        # said so on the labeled counter.
        fallbacks = telemetry.registry().value(
            "repro_kernel_fallback_total", reason="observer-armed"
        )
        assert fallbacks is not None and fallbacks >= 1

        # A local observer run must stream the exact same numbers.
        spec = load_workload("fp_01", N_INSTRUCTIONS)
        sim = KernelSimulator(
            spec.trace, SimConfig(), name="fp_01", observe=True
        )
        assert sim.kernel_active is False
        assert sim.kernel_fallback_reason == "observer-armed"
        result = sim.run()
        key = runner.cache_key("fp_01", N_INSTRUCTIONS, SimConfig())
        assert sim.observer is not None
        expected_intervals = stream.interval_events(
            key, "fp_01", result.intervals
        )
        expected_taxonomy = stream.taxonomy_event(
            key, "fp_01", sim.observer.taxonomy.as_dict()
        )

        assert [
            e for e in streamed if e["event"] == "interval"
        ] == expected_intervals
        assert [
            e for e in streamed if e["event"] == "taxonomy"
        ] == [expected_taxonomy]
        finished = [e for e in streamed if e["event"] == "job-finished"]
        assert len(finished) == 1 and finished[0]["cached"] is False


# ---------------------------------------------------------------------------
# satellite: kernel fallback is loud (counter + one-time warning)


class TestKernelFallbackSurface:
    def test_counter_counts_every_run_warning_fires_once(
        self, telemetry_on, monkeypatch, caplog
    ):
        monkeypatch.setattr(kernel_engine, "_WARNED_REASONS", set())
        spec = load_workload("fp_01", N_INSTRUCTIONS)
        with caplog.at_level(logging.WARNING, logger=kernel_engine.__name__):
            for _ in range(3):
                KernelSimulator(
                    spec.trace, SimConfig(), name="fp_01", observe=True
                )
        warned = [
            record
            for record in caplog.records
            if "replay kernel inactive" in record.message
        ]
        assert len(warned) == 1
        assert "observer-armed" in warned[0].getMessage()
        assert (
            telemetry.registry().value(
                "repro_kernel_fallback_total", reason="observer-armed"
            )
            == 3
        )

    def test_repro_metrics_names_the_engine(self, fresh_cache, capsys):
        assert (
            main(["metrics", "fp_01", "--instructions", str(N_INSTRUCTIONS)])
            == 0
        )
        out = capsys.readouterr().out
        assert "engine: interpreter (observer-armed)" in out

    def test_repro_metrics_respects_kernel_kill_switch(
        self, fresh_cache, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "0")
        assert (
            main(["metrics", "fp_01", "--instructions", str(N_INSTRUCTIONS)])
            == 0
        )
        assert "engine: interpreter (REPRO_SIM_KERNEL=0)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# satellite: cache stats lifetime rates + --json


class TestCacheStatsCli:
    def test_lifetime_rates_from_counters(self, fresh_cache, telemetry_on, capsys):
        config = SimConfig()
        runner.run_cached("fp_01", config, N_INSTRUCTIONS)  # miss + store
        runner.run_cached("fp_01", config, N_INSTRUCTIONS)  # memory hit
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "lifetime       hit rate 50.0% (memory 1 + disk 0 hits, 1 misses)" in out
        assert "1 stores" in out

    def test_lifetime_off_message(self, fresh_cache, telemetry_off, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "lifetime       (off — set REPRO_SIM_TELEMETRY=1 to track rates)" in out

    def test_json_flag(self, fresh_cache, telemetry_on, capsys):
        config = SimConfig()
        runner.run_cached("fp_01", config, N_INSTRUCTIONS)
        runner.run_cached("fp_01", config, N_INSTRUCTIONS)
        assert main(["cache", "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["disk_entries"] == 1
        lifetime = stats["telemetry"]
        assert lifetime["hits_memory"] == 1
        assert lifetime["misses"] == 1
        assert lifetime["stores"] == 1
        assert lifetime["hit_rate"] == 0.5


# ---------------------------------------------------------------------------
# serve --metrics-port + status telemetry snapshot


class TestServeMetricsPort:
    def test_scrape_through_experiment_server(self, fresh_cache, telemetry_on):
        async def scenario(server):
            assert server.metrics_port not in (None, 0)  # read back after bind
            async with ServeClient(port=server.port) as client:
                await client.run(["fp_01"], n_instructions=N_INSTRUCTIONS)
                status = await client.status()
            text = await _http_get(server.metrics_port, "/metrics")
            return status, text

        status, text = run_async(_with_server(scenario, metrics_port=0))
        assert 'repro_serve_requests_total{verb="run"} 1' in text
        assert 'repro_sched_jobs_total{outcome="requested"} 1' in text
        assert "repro_sched_job_seconds_bucket" in text
        # The status verb carries the same registry as a JSON snapshot.
        names = {m["name"] for m in status["telemetry"]["metrics"]}
        assert "repro_serve_requests_total" in names
        assert "repro_sched_jobs_total" in names

    def test_status_telemetry_is_null_when_off(self, fresh_cache, telemetry_off):
        async def scenario(server):
            async with ServeClient(port=server.port) as client:
                return await client.status()

        status = run_async(_with_server(scenario))
        assert status["telemetry"] is None


# ---------------------------------------------------------------------------
# repro top


class _ServerThread:
    """A live server on a background thread (its own event loop), so the
    synchronous ``repro top`` CLI can poll it from the test thread."""

    def __init__(self, **kwargs):
        self._kwargs = {"mode": "thread", "shards": 1, "log": lambda *_: None}
        self._kwargs.update(kwargs)
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port = 0

    async def _serve(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = ExperimentServer(**self._kwargs)
        await server.start()
        self.port = server.port
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()), daemon=True
        )
        self._thread.start()
        assert self._started.wait(timeout=30), "server did not start"
        return self

    def __exit__(self, *exc):
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


class TestReproTop:
    def test_render_status_frame(self):
        status = {
            "protocol": 2,
            "max_pending": 64,
            "scheduler": {
                "mode": "thread",
                "shards": 2,
                "queued": 1,
                "in_flight": 1,
                "restarts": 0,
                "quarantined": ["k"],
                "counters": {"jobs_requested": 5, "jobs_simulated": 3},
            },
            "cache": {
                "disk_entries": 3,
                "disk_bytes": 1024,
                "directory": "/tmp/c",
                "disk_enabled": True,
                "telemetry": {
                    "hit_rate": 0.25,
                    "hits_memory": 1,
                    "hits_disk": 0,
                    "misses": 3,
                    "evictions": 0,
                },
            },
            "telemetry": {
                "metrics": [
                    {
                        "name": "repro_sched_jobs_total",
                        "samples": [
                            {"labels": {"outcome": "simulated"}, "value": 3}
                        ],
                    }
                ]
            },
        }
        frame = render_status(status, endpoint="127.0.0.1:9")
        assert "repro serve @ 127.0.0.1:9 · protocol 2 · mode thread · shards 2" in frame
        assert "jobs: requested 5" in frame and "simulated 3" in frame
        assert "1 quarantined" in frame
        assert "cache: 3 entries / 1024 bytes @ /tmp/c (disk on)" in frame
        assert "cache lifetime: hit rate 25.0%" in frame
        assert "telemetry: on (1 metric families)" in frame
        assert "repro_sched_jobs_total{outcome=simulated} 3" in frame

    def test_render_status_telemetry_off(self):
        frame = render_status({"scheduler": {}, "cache": {}, "telemetry": None})
        assert "telemetry: off (server runs without REPRO_SIM_TELEMETRY)" in frame

    def test_top_once_against_live_server(self, fresh_cache, telemetry_on, capsys):
        with _ServerThread() as server:
            code = main(
                ["top", "--port", str(server.port), "--once"]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro serve @ 127.0.0.1:" in out
        assert "protocol 2" in out
        assert "telemetry: on" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_top_json_frame(self, fresh_cache, telemetry_on, capsys):
        with _ServerThread() as server:
            code = run_top("127.0.0.1", server.port, once=True, as_json=True)
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["protocol"] == 2
        assert status["telemetry"] is not None

    def test_top_unreachable_port_exits_nonzero(self, capsys):
        with _ServerThread() as server:
            dead_port = server.port  # valid while the context is open
        # Out of the context the server is gone: the port refuses.
        code = main(["top", "--port", str(dead_port), "--once"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().out
