"""Tests for the synthetic workload generator and suite."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    SUITE,
    Bernoulli,
    BasicBlock,
    Function,
    GlobalCorrelated,
    LoopTrip,
    Pattern,
    Program,
    ProgramGenerator,
    TerminatorKind,
    WorkloadConfig,
    generate_trace,
    load_suite,
    load_workload,
)


class TestBehaviors:
    def test_bernoulli_extremes(self):
        rng = random.Random(0)
        always = Bernoulli(1.0)
        never = Bernoulli(0.0)
        assert all(always.next_outcome(rng, 0) for _ in range(20))
        assert not any(never.next_outcome(rng, 0) for _ in range(20))

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)

    def test_pattern_repeats(self):
        rng = random.Random(0)
        pattern = Pattern([True, False, False])
        outcomes = [pattern.next_outcome(rng, 0) for _ in range(6)]
        assert outcomes == [True, False, False, True, False, False]

    def test_pattern_reset(self):
        rng = random.Random(0)
        pattern = Pattern([True, False])
        pattern.next_outcome(rng, 0)
        pattern.reset()
        assert pattern.next_outcome(rng, 0) is True

    def test_loop_trip_fixed(self):
        rng = random.Random(0)
        loop = LoopTrip(4, 4)
        # Taken trip-1 times then not taken, repeatedly.
        for _ in range(3):
            outcomes = [loop.next_outcome(rng, 0) for _ in range(4)]
            assert outcomes == [True, True, True, False]

    def test_loop_trip_variable_in_range(self):
        rng = random.Random(7)
        loop = LoopTrip(2, 6)
        for _ in range(50):
            count = 0
            while loop.next_outcome(rng, 0):
                count += 1
                assert count < 6, "loop exceeded max trip"
            assert 1 <= count + 1 <= 6

    def test_loop_trip_invalid(self):
        with pytest.raises(ValueError):
            LoopTrip(0)
        with pytest.raises(ValueError):
            LoopTrip(5, 3)

    def test_correlated_pure_parity(self):
        rng = random.Random(0)
        behavior = GlobalCorrelated(taps=[0, 2], noise=0.0)
        assert behavior.next_outcome(rng, 0b101) is False  # 1 ^ 1
        assert behavior.next_outcome(rng, 0b001) is True  # 1 ^ 0

    def test_correlated_invalid(self):
        with pytest.raises(ValueError):
            GlobalCorrelated([])
        with pytest.raises(ValueError):
            GlobalCorrelated([1], noise=0.9)


class TestBasicBlockValidation:
    def test_cond_requires_behavior(self):
        with pytest.raises(ValueError):
            BasicBlock(4, TerminatorKind.COND, taken_block=1)

    def test_jump_requires_target(self):
        with pytest.raises(ValueError):
            BasicBlock(4, TerminatorKind.JUMP)

    def test_call_requires_callee(self):
        with pytest.raises(ValueError):
            BasicBlock(4, TerminatorKind.CALL)

    def test_indirect_requires_targets(self):
        with pytest.raises(ValueError):
            BasicBlock(4, TerminatorKind.INDIRECT)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            BasicBlock(0)


class TestProgramValidation:
    def _entry_function(self):
        return Function(
            [
                BasicBlock(4, TerminatorKind.CALL, callees=[1]),
                BasicBlock(2, TerminatorKind.JUMP, taken_block=0),
            ],
            base_pc=0x1000,
        )

    def _leaf_function(self, base_pc=0x2000):
        return Function(
            [
                BasicBlock(4, TerminatorKind.FALLTHROUGH),
                BasicBlock(2, TerminatorKind.RETURN),
            ],
            base_pc=base_pc,
        )

    def test_valid_program(self):
        program = Program([self._entry_function(), self._leaf_function()])
        assert program.static_instructions == 12

    def test_rejects_recursive_call(self):
        bad_leaf = Function(
            [
                BasicBlock(4, TerminatorKind.CALL, callees=[1]),  # self-call
                BasicBlock(2, TerminatorKind.RETURN),
            ],
            base_pc=0x2000,
        )
        with pytest.raises(ValueError, match="DAG"):
            Program([self._entry_function(), bad_leaf])

    def test_rejects_non_returning_function(self):
        bad_leaf = Function(
            [BasicBlock(4, TerminatorKind.JUMP, taken_block=0)], base_pc=0x2000
        )
        with pytest.raises(ValueError, match="RETURN"):
            Program([self._entry_function(), bad_leaf])

    def test_rejects_entry_ending_in_return(self):
        entry = Function([BasicBlock(4, TerminatorKind.RETURN)], base_pc=0x1000)
        with pytest.raises(ValueError, match="loop back"):
            Program([entry, self._leaf_function()])

    def test_rejects_out_of_range_successor(self):
        entry = Function(
            [
                BasicBlock(
                    4, TerminatorKind.COND, taken_block=9, behavior=Bernoulli(0.5)
                ),
                BasicBlock(2, TerminatorKind.JUMP, taken_block=0),
            ],
            base_pc=0x1000,
        )
        with pytest.raises(ValueError, match="out of range"):
            Program([entry, self._leaf_function()])

    def test_rejects_final_fallthrough(self):
        with pytest.raises(ValueError, match="fall through"):
            Program(
                [
                    Function(
                        [BasicBlock(4, TerminatorKind.FALLTHROUGH)], base_pc=0x1000
                    ),
                    self._leaf_function(),
                ]
            )


class TestWalk:
    def test_walk_emits_requested_length(self):
        config = WorkloadConfig(name="tiny", seed=3, n_functions=6, n_instructions=5_000)
        trace = generate_trace(config)
        assert len(trace) == 5_000

    def test_walk_is_deterministic(self):
        config = WorkloadConfig(name="det", seed=11, n_functions=8, n_instructions=3_000)
        a = generate_trace(config)
        b = generate_trace(config)
        assert (a.pcs == b.pcs).all()
        assert (a.takens == b.takens).all()

    def test_different_seeds_differ(self):
        base = WorkloadConfig(name="s", seed=1, n_functions=8, n_instructions=3_000)
        other = WorkloadConfig(name="s", seed=2, n_functions=8, n_instructions=3_000)
        a, b = generate_trace(base), generate_trace(other)
        assert not (a.pcs == b.pcs).all()

    def test_trace_control_flow_consistent(self):
        # generate_trace already validates; exercise a few extra seeds.
        for seed in range(5):
            config = WorkloadConfig(
                name=f"cfg{seed}", seed=seed, n_functions=10, n_instructions=4_000
            )
            generate_trace(config).validate()

    def test_returns_match_calls(self):
        config = WorkloadConfig(name="calls", seed=5, n_functions=12, n_instructions=8_000)
        trace = generate_trace(config)
        depth = 0
        for entry in trace:
            if entry.branch_class.is_call:
                depth += 1
            elif entry.branch_class.is_return:
                depth -= 1
            assert depth >= 0, "return without matching call"

    def test_return_targets_are_call_fallthroughs(self):
        config = WorkloadConfig(name="rt", seed=6, n_functions=10, n_instructions=6_000)
        trace = generate_trace(config)
        stack = []
        for entry in trace:
            if entry.branch_class.is_call:
                stack.append(entry.fallthrough)
            elif entry.branch_class.is_return:
                assert entry.target == stack.pop()

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 10_000))
    def test_any_seed_walks_cleanly(self, seed):
        config = WorkloadConfig(name="fuzz", seed=seed, n_functions=6, n_instructions=1_500)
        trace = generate_trace(config)
        trace.validate()
        assert len(trace) == 1_500


class TestFootprintControl:
    def test_more_functions_more_static_code(self):
        small = ProgramGenerator(WorkloadConfig(seed=1, n_functions=8)).build()
        large = ProgramGenerator(WorkloadConfig(seed=1, n_functions=80)).build()
        assert large.static_instructions > 4 * small.static_instructions

    def test_scaled_footprint_helper(self):
        config = WorkloadConfig(n_functions=40)
        assert config.scaled_footprint(2.0).n_functions == 80
        assert config.scaled_footprint(0.01).n_functions == 2

    def test_dynamic_coverage_scales(self):
        small = generate_trace(
            WorkloadConfig(name="s", seed=9, n_functions=8, n_instructions=20_000)
        )
        large = generate_trace(
            WorkloadConfig(name="l", seed=9, n_functions=160, n_instructions=20_000)
        )
        assert large.stats().static_instructions > 3 * small.stats().static_instructions


class TestSuite:
    def test_suite_has_categories(self):
        names = set(SUITE)
        assert any(name.startswith("srv") for name in names)
        assert any(name.startswith("int") for name in names)
        assert any(name.startswith("crypto") for name in names)
        assert any(name.startswith("fp") for name in names)
        assert len(names) >= 12

    def test_load_workload_caches(self):
        a = load_workload("crypto_01", 2_000)
        b = load_workload("crypto_01", 2_000)
        assert a.trace is b.trace  # same cached object

    def test_load_workload_unknown(self):
        with pytest.raises(KeyError):
            load_workload("nope")

    def test_load_suite_subset(self):
        specs = load_suite(["fp_01", "int_01"], n_instructions=2_000)
        assert [spec.name for spec in specs] == ["fp_01", "int_01"]
        assert all(len(spec.trace) == 2_000 for spec in specs)

    def test_srv_bigger_than_crypto(self):
        srv = load_workload("srv_02", 20_000).trace.stats()
        crypto = load_workload("crypto_01", 20_000).trace.stats()
        assert srv.static_instructions > 5 * crypto.static_instructions


class TestCategories:
    def test_every_workload_categorised(self):
        from repro.workloads.suite import CATEGORIES, SUITE

        categorised = {name for names in CATEGORIES.values() for name in names}
        assert categorised == set(SUITE)

    def test_categories_disjoint(self):
        from repro.workloads.suite import CATEGORIES

        seen = set()
        for names in CATEGORIES.values():
            assert not (seen & set(names))
            seen |= set(names)

    def test_extended_categories_present(self):
        from repro.workloads.suite import CATEGORIES

        for prefix in ("web", "db", "mix", "dc"):
            assert CATEGORIES[prefix], prefix


class TestDatacenterSuite:
    """The dc_* slice: deep-call / interpreter-dispatch / megamorphic."""

    def test_all_six_registered(self):
        from repro.workloads import DATACENTER_SUITE

        assert sorted(DATACENTER_SUITE) == [
            "dc_call_01", "dc_call_02",
            "dc_interp_01", "dc_interp_02",
            "dc_mega_01", "dc_mega_02",
        ]
        assert set(DATACENTER_SUITE) <= set(SUITE)

    @pytest.mark.parametrize(
        "name",
        [
            "dc_call_01", "dc_call_02",
            "dc_interp_01", "dc_interp_02",
            "dc_mega_01", "dc_mega_02",
        ],
    )
    def test_deterministic_under_seed(self, name):
        """Same name + length must regenerate the same dynamic stream —
        the property every cache key and golden fixture rests on."""
        config = SUITE[name]
        from dataclasses import replace

        a = generate_trace(replace(config, n_instructions=3_000))
        b = generate_trace(replace(config, n_instructions=3_000))
        a.validate()
        assert (a.pcs == b.pcs).all()
        assert (a.branch_classes == b.branch_classes).all()
        assert (a.takens == b.takens).all()
        assert (a.targets == b.targets).all()

    def test_call_shape_is_call_heavy(self):
        """Deep-call DAGs are dominated by *direct* call/return pairs.

        Combined call_pki would be misleading here: the interpreter's
        dispatcher loop issues indirect calls at a high rate, so the
        contrast that actually characterises the RPC-stack shape is the
        direct-call rate.
        """
        import numpy as np

        from repro.isa import BranchClass

        def direct_call_pki(name):
            trace = load_workload(name, 10_000).trace
            direct = trace.branch_classes == np.uint8(BranchClass.CALL_DIRECT)
            return float(direct.sum()) / 10.0

        assert direct_call_pki("dc_call_01") > 3 * direct_call_pki("dc_interp_01")

    def test_interp_and_mega_are_indirect_heavy(self):
        from repro.analysis.characterize import trace_profile

        base = trace_profile(load_workload("int_01", 10_000).trace)
        for name in ("dc_interp_01", "dc_mega_01"):
            profile = trace_profile(load_workload(name, 10_000).trace)
            assert profile["indirect_pki"] > 2 * base["indirect_pki"], name

    def test_mega_has_wider_fanout_than_interp(self):
        """Megamorphic sites revisit far more distinct targets."""
        import numpy as np

        from repro.isa import BranchClass

        def distinct_targets_per_site(name):
            trace = load_workload(name, 15_000).trace
            mask = np.isin(
                trace.branch_classes,
                [np.uint8(BranchClass.CALL_INDIRECT), np.uint8(BranchClass.INDIRECT)],
            )
            sites: dict[int, set[int]] = {}
            for pc, target in zip(trace.pcs[mask], trace.targets[mask]):
                sites.setdefault(int(pc), set()).add(int(target))
            assert sites, name
            return sum(len(t) for t in sites.values()) / len(sites)

        assert distinct_targets_per_site("dc_mega_01") > distinct_targets_per_site(
            "dc_interp_01"
        )
