"""Hardened result-cache tests: corruption recovery, atomicity, accounting.

The disk cache must never return a wrong result: any truncated, stale,
bit-flipped, or mis-keyed entry has to fail the envelope check and be
re-simulated.  These tests corrupt entries in every way a killed or
misbehaving writer could and assert ``run_cached`` recovers.
"""

from __future__ import annotations

import pickle
import threading

import repro.analysis.runner as runner
from repro.core import SimConfig

# The `cache_dir` fixture (redirected disk cache + cleared memory cache)
# is shared via tests/conftest.py.


def _simulate_once(n: int = 2_000):
    return runner.run_cached("fp_01", SimConfig(), n)


def _entry_file(cache_dir):
    files = list(cache_dir.glob("*.pkl"))
    assert len(files) == 1
    return files[0]


class TestCorruptionRecovery:
    def test_garbage_file_resimulated(self, cache_dir):
        good = _simulate_once()
        path = _entry_file(cache_dir)
        path.write_bytes(b"not a pickle at all")
        runner._memory_cache.clear()
        again = _simulate_once()
        assert again.ipc == good.ipc
        # The bad file was replaced by a valid entry.
        assert runner.verify_disk_cache() == {"ok": 1, "corrupt": []}

    def test_truncated_file_resimulated(self, cache_dir):
        good = _simulate_once()
        path = _entry_file(cache_dir)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        runner._memory_cache.clear()
        assert _simulate_once().ipc == good.ipc
        assert runner.verify_disk_cache() == {"ok": 1, "corrupt": []}

    def test_checksum_mismatch_rejected(self, cache_dir):
        """A loadable pickle whose payload doesn't match its digest is
        treated as corrupt — the 'loadable-but-wrong' case."""
        good = _simulate_once()
        path = _entry_file(cache_dir)
        version, key, digest, payload = pickle.loads(path.read_bytes())
        tampered = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        path.write_bytes(pickle.dumps((version, key, digest, tampered)))
        runner._memory_cache.clear()
        assert _simulate_once().ipc == good.ipc
        assert runner.verify_disk_cache()["corrupt"] == []

    def test_stale_version_rejected(self, cache_dir):
        _simulate_once()
        path = _entry_file(cache_dir)
        version, key, digest, payload = pickle.loads(path.read_bytes())
        path.write_bytes(pickle.dumps((version - 1, key, digest, payload)))
        assert runner._load_disk(path.stem) is None
        assert not path.exists()  # quarantined on load

    def test_wrong_key_rejected(self, cache_dir):
        """An entry renamed (or hash-collided) onto another key is refused."""
        _simulate_once()
        path = _entry_file(cache_dir)
        other = path.with_name("0" * 32 + ".pkl")
        path.rename(other)
        assert runner._load_disk(other.stem) is None

    def test_legacy_plain_pickle_rejected(self, cache_dir):
        """Pre-engine caches stored bare SimResult pickles; they must not
        load as valid entries."""
        good = _simulate_once()
        path = _entry_file(cache_dir)
        path.write_bytes(pickle.dumps(good))
        assert runner._load_disk(path.stem) is None


class TestAtomicity:
    def test_write_goes_through_temp_and_replace(self, cache_dir, monkeypatch):
        """If the final rename never happens, the final path is untouched —
        i.e. a writer killed mid-write cannot leave a partial entry."""

        def exploding_replace(src, dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(runner.os, "replace", exploding_replace)
        _simulate_once()
        assert list(cache_dir.glob("*.pkl")) == []
        assert list(cache_dir.glob(".*.tmp")) == []  # temp cleaned up

    def test_interrupted_writer_leaves_old_value_visible(
        self, cache_dir, monkeypatch
    ):
        good = _simulate_once()
        path = _entry_file(cache_dir)
        original = path.read_bytes()
        monkeypatch.setattr(
            runner.os, "replace", lambda s, d: (_ for _ in ()).throw(OSError())
        )
        runner._memory_cache.clear()
        runner._store_disk(path.stem, good)
        assert path.read_bytes() == original

    def test_stray_temp_files_ignored_and_cleared(self, cache_dir):
        _simulate_once()
        (cache_dir / ".deadbeef.12345.tmp").write_bytes(b"partial")
        runner._memory_cache.clear()
        assert _simulate_once() is not None
        assert runner.cache_stats()["temp_files"] == 1
        assert runner.clear_disk_cache() == 1  # counts entries, wipes temps
        assert list(cache_dir.iterdir()) == []


class TestBypassAndAccounting:
    def test_cache_env_zero_bypasses_disk(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        _simulate_once()
        assert list(cache_dir.glob("*.pkl")) == []
        assert runner.cache_stats()["disk_enabled"] is False

    def test_cache_dir_env_read_at_call_time(self, tmp_path, monkeypatch):
        runner._memory_cache.clear()
        first = tmp_path / "first"
        second = tmp_path / "second"
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(first))
        _simulate_once()
        assert list(first.glob("*.pkl"))
        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(second))
        runner._memory_cache.clear()
        runner.run_cached("fp_01", SimConfig(), 2_500)
        assert list(second.glob("*.pkl"))
        runner._memory_cache.clear()

    def test_clear_disk_cache_reports_accurate_counts(self, cache_dir):
        assert runner.clear_disk_cache() == 0
        runner.run_cached("fp_01", SimConfig(), 2_000)
        runner.run_cached("fp_02", SimConfig(), 2_000)
        runner.run_cached("fp_01", SimConfig().without_uop_cache(), 2_000)
        assert runner.cache_stats()["disk_entries"] == 3
        assert runner.clear_disk_cache() == 3
        assert runner.clear_disk_cache() == 0

    def test_clear_memory_cache_counts(self, cache_dir):
        _simulate_once()
        assert runner.clear_memory_cache() == 1
        assert runner.clear_memory_cache() == 0

    def test_verify_fix_deletes_corrupt_entries(self, cache_dir):
        _simulate_once()
        bad = cache_dir / ("1" * 32 + ".pkl")
        bad.write_bytes(b"junk")
        report = runner.verify_disk_cache(fix=False)
        assert report["ok"] == 1 and report["corrupt"] == [bad.name]
        assert bad.exists()
        report = runner.verify_disk_cache(fix=True)
        assert not bad.exists()
        assert runner.verify_disk_cache() == {"ok": 1, "corrupt": []}


class TestSingleFlight:
    def test_concurrent_requests_simulate_once(self, cache_dir, monkeypatch):
        calls = []
        real_simulate = runner.simulate

        def counting_simulate(trace, config, name=None):
            calls.append(name)
            return real_simulate(trace, config, name=name)

        monkeypatch.setattr(runner, "simulate", counting_simulate)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(_simulate_once(3_000))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert len(results) == 4
        assert all(r is results[0] for r in results)
