"""Tests for the cache substrate: generic caches, hierarchy, µ-op cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.caches import (
    CacheConfig,
    MemoryHierarchy,
    SetAssocCache,
    UopCache,
    UopCacheConfig,
    UopCacheEntry,
    UopEntryBuilder,
)
from repro.caches.uopcache import REGION_BYTES


def small_cache(ways=2, sets=4, mshr=2, latency=3) -> SetAssocCache:
    return SetAssocCache(
        CacheConfig("test", size_bytes=64 * ways * sets, ways=ways, hit_latency=latency, mshr_entries=mshr)
    )


class TestSetAssocCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        hit, ready = cache.access(0x1000, cycle=0, fill_latency=10)
        assert not hit
        assert ready == 0 + 3 + 10
        # After the fill arrives, the line hits.
        hit, ready = cache.access(0x1000, cycle=20, fill_latency=10)
        assert hit
        assert ready == 23

    def test_same_line_different_offsets(self):
        cache = small_cache()
        cache.access(0x1000, 0, 10)
        hit, _ = cache.access(0x103C, 50, 10)  # same 64B line
        assert hit

    def test_mshr_merge_before_fill(self):
        cache = small_cache()
        _, first_ready = cache.access(0x1000, 0, 100)
        hit, merged_ready = cache.access(0x1000, 5, 100)
        assert not hit
        assert merged_ready == first_ready
        assert cache.mshr_merges == 1

    def test_mshr_backpressure(self):
        cache = small_cache(mshr=1)
        _, first_ready = cache.access(0x1000, 0, 100)
        _, second_ready = cache.access(0x2000, 1, 100)
        # The second miss cannot start before the first fill completes.
        assert second_ready >= first_ready + 100
        assert cache.mshr_stalls == 1

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        for addr in (0x0, 0x40, 0x80):  # three lines, one set
            cache.access(addr, 1000 * addr, 0)
        assert not cache.probe(0x0)
        assert cache.probe(0x40)
        assert cache.probe(0x80)

    def test_touch_refreshes_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.allocate(0x0)
        cache.allocate(0x40)
        assert cache.touch(0x0)
        cache.allocate(0x80)  # should evict 0x40
        assert cache.probe(0x0)
        assert not cache.probe(0x40)

    def test_invalidate(self):
        cache = small_cache()
        cache.allocate(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.probe(0x1000)
        assert not cache.invalidate(0x1000)

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0x1000, 0, 0)
        cache.access(0x1000, 100, 0)
        assert cache.hit_rate == 0.5

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=16, ways=2, line_size=64).n_sets


class TestMemoryHierarchy:
    def test_cold_fetch_pays_full_path(self):
        hierarchy = MemoryHierarchy()
        hit, ready = hierarchy.fetch_line(0x1000, 0)
        assert not hit
        # L1I(4) + L2(10) + LLC(40) + DRAM(150)
        assert ready == 4 + 10 + 40 + 150

    def test_warm_fetch_hits_l1i(self):
        hierarchy = MemoryHierarchy()
        _, ready = hierarchy.fetch_line(0x1000, 0)
        hit, ready2 = hierarchy.fetch_line(0x1000, ready + 1)
        assert hit
        assert ready2 == ready + 1 + 4

    def test_l2_retains_after_l1i_eviction(self):
        hierarchy = MemoryHierarchy()
        _, r = hierarchy.fetch_line(0x1000, 0)
        cycle = r + 1
        # Evict 0x1000 from L1I by filling its set (8 ways; same set every
        # 32KB/8 = 4KB stride at 64B lines -> stride 4096 maps to same set).
        stride = 64 * hierarchy.l1i.config.n_sets
        for i in range(1, 9):
            _, r = hierarchy.fetch_line(0x1000 + i * stride, cycle)
            cycle = r + 1
        assert not hierarchy.l1i.probe(0x1000)
        hit, ready = hierarchy.fetch_line(0x1000, cycle)
        assert not hit
        # Should be an L2 hit: L1I(4) + L2(10), far below the DRAM path.
        assert ready - cycle == 14

    def test_prefetch_queue_dedups(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.enqueue_prefetch(0x4000)
        assert not hierarchy.enqueue_prefetch(0x4000)  # already queued
        assert not hierarchy.enqueue_prefetch(0x4004)  # same line

    def test_prefetch_skips_resident_lines(self):
        hierarchy = MemoryHierarchy()
        hierarchy.fetch_line(0x1000, 0)
        assert not hierarchy.enqueue_prefetch(0x1000)

    def test_prefetch_queue_capacity(self):
        hierarchy = MemoryHierarchy()
        for i in range(hierarchy.config.prefetch_queue_entries):
            assert hierarchy.enqueue_prefetch(0x100000 + i * 64)
        assert not hierarchy.enqueue_prefetch(0x900000)
        assert hierarchy.prefetches_dropped == 1

    def test_tick_prefetch_fills_l1i(self):
        hierarchy = MemoryHierarchy()
        hierarchy.enqueue_prefetch(0x4000)
        result = hierarchy.tick_prefetch(0)
        assert result is not None
        addr, ready = result
        assert hierarchy.l1i.probe(0x4000)
        assert ready > 0
        # Later demand access hits.
        hit, _ = hierarchy.fetch_line(0x4000, ready + 1)
        assert hit

    def test_tick_prefetch_empty(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.tick_prefetch(0) is None


class TestUopCache:
    def test_lookup_miss_then_insert_hit(self):
        cache = UopCache()
        assert cache.lookup(0x1000) is None
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010))
        entry = cache.lookup(0x1000)
        assert entry is not None
        assert entry.n_uops == 4

    def test_keyed_by_start_pc(self):
        cache = UopCache()
        cache.insert(UopCacheEntry(0x1000, 8, 0x1020))
        # A lookup in the middle of the entry misses (keyed by start).
        assert cache.lookup(0x1008) is None

    def test_lru_eviction_within_set(self):
        config = UopCacheConfig(n_sets=2, ways=2)
        cache = UopCache(config)
        region = REGION_BYTES * config.n_sets
        pcs = [0x1000, 0x1000 + region, 0x1000 + 2 * region]
        for pc in pcs:
            cache.insert(UopCacheEntry(pc, 4, pc + 16))
        assert not cache.probe(pcs[0])
        assert cache.probe(pcs[1]) and cache.probe(pcs[2])
        assert cache.stats["evictions"] == 1

    def test_prefetch_provenance(self):
        cache = UopCache()
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010, from_prefetch=True))
        assert cache.stats["prefetch_insertions"] == 1
        cache.lookup(0x1000)
        assert cache.stats["prefetched_entries_used"] == 1
        # Second lookup doesn't double count first-use.
        cache.lookup(0x1000)
        assert cache.stats["prefetched_entries_used"] == 1

    def test_unused_prefetch_eviction_counted(self):
        config = UopCacheConfig(n_sets=1, ways=1)
        cache = UopCache(config)
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010, from_prefetch=True))
        cache.insert(UopCacheEntry(0x1000 + REGION_BYTES, 4, 0x1030))
        assert cache.stats["prefetched_entries_evicted_unused"] == 1

    def test_bank_mapping(self):
        cache = UopCache()
        assert cache.bank_of(0x1000) != cache.bank_of(0x1000 + REGION_BYTES)

    def test_hit_rate(self):
        cache = UopCache()
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010))
        cache.lookup(0x1000)
        cache.lookup(0x2000)
        assert cache.hit_rate == 0.5

    def test_occupancy(self):
        cache = UopCache()
        assert cache.occupancy() == 0
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010))
        assert cache.occupancy() == 1


class TestUopEntryBuilder:
    def test_taken_branch_closes_entry(self):
        builder = UopEntryBuilder()
        assert builder.add(0x1000, False, False, 0x1004) == []
        entries = builder.add(0x1004, True, True, 0x2000)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.start_pc == 0x1000
        assert entry.n_uops == 2
        assert entry.next_pc == 0x2000

    def test_eight_uops_close_entry(self):
        builder = UopEntryBuilder()
        # Start at a region boundary so rule 2 doesn't fire first.
        completed = []
        for i in range(8):
            completed += builder.add(0x1000 + 4 * i, False, False, 0x1000 + 4 * i + 4)
        assert len(completed) == 1
        assert completed[0].n_uops == 8

    def test_region_boundary_closes_entry(self):
        builder = UopEntryBuilder()
        # Start 4 bytes before a 32B boundary: the first µ-op is the last
        # in its region.
        entries = builder.add(0x101C, False, False, 0x1020)
        assert len(entries) == 1
        assert entries[0].n_uops == 1
        assert entries[0].next_pc == 0x1020

    def test_third_branch_splits_entry(self):
        builder = UopEntryBuilder(UopCacheConfig(max_branches_per_entry=2))
        assert builder.add(0x1000, True, False, 0x1004) == []
        assert builder.add(0x1004, True, False, 0x1008) == []
        entries = builder.add(0x1008, True, False, 0x100C)
        assert len(entries) == 1
        assert entries[0].start_pc == 0x1000
        assert entries[0].n_uops == 2
        # The third branch starts the next entry.
        assert builder.open_entry_start == 0x1008

    def test_discontinuity_closes_entry(self):
        builder = UopEntryBuilder()
        builder.add(0x1000, False, False, 0x1004)
        entries = builder.add(0x5000, False, False, 0x5004)
        assert entries and entries[0].start_pc == 0x1000
        assert entries[0].n_uops == 1
        assert builder.open_entry_start == 0x5000

    def test_flush_empty_returns_none(self):
        builder = UopEntryBuilder()
        assert builder.flush() is None

    def test_prefetch_flag_propagates(self):
        builder = UopEntryBuilder(from_prefetch=True)
        entries = builder.add(0x1000, True, True, 0x2000)
        assert entries[0].from_prefetch

    @given(
        start=st.integers(0, 1000),
        steps=st.lists(
            st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=64
        ),
    )
    def test_entries_respect_all_limits(self, start, steps):
        """Property: every produced entry obeys the termination rules."""
        builder = UopEntryBuilder()
        pc = 0x1000 + 4 * start
        produced = []
        for is_branch, taken in steps:
            next_pc = pc + 4 if not (is_branch and taken) else pc + 0x100
            produced += builder.add(pc, is_branch, taken, next_pc)
            pc = next_pc
        tail = builder.flush(next_pc=pc)
        if tail:
            produced.append(tail)
        for entry in produced:
            assert 1 <= entry.n_uops <= 8
            # Entry stays inside one 32B region.
            assert entry.start_pc // REGION_BYTES == entry.end_pc // REGION_BYTES
            assert entry.end_pc == entry.start_pc + 4 * (entry.n_uops - 1)
