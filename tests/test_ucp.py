"""Unit tests for the UCP engine, Table I weights, and the MRC baseline."""

import math
from dataclasses import replace

import pytest

from repro.branch.loop import LoopPrediction
from repro.branch.sc import SCPrediction
from repro.branch.tage import TagePrediction
from repro.branch.tage_sc_l import Provider, TageScLPrediction
from repro.core import SimConfig, Simulator
from repro.core.configs import UCPConfig
from repro.core.mrc import MRC
from repro.core.weights import INFINITE, condition_weight, target_weight
from repro.workloads import load_workload


def make_prediction(provider, hit_ctr=0, alt_ctr=0, bimodal_ctr=0, lsum=0, loop_conf=0):
    tage = TagePrediction()
    tage.hit_ctr = hit_ctr
    tage.alt_ctr = alt_ctr
    tage.bimodal_ctr = bimodal_ctr
    loop = LoopPrediction(True, True, True, loop_conf, 0)
    sc = SCPrediction(lsum, lsum >= 0, [])
    return TageScLPrediction(0x1000, True, provider, tage, loop, sc, True)


class TestConditionWeights:
    """Table I, Condition rows."""

    def test_bimodal_weights(self):
        assert condition_weight(make_prediction(Provider.BIMODAL, bimodal_ctr=1)) == 1
        assert condition_weight(make_prediction(Provider.BIMODAL, bimodal_ctr=-2)) == 1
        assert condition_weight(make_prediction(Provider.BIMODAL, bimodal_ctr=0)) == 2
        assert condition_weight(make_prediction(Provider.BIMODAL, bimodal_ctr=-1)) == 2

    def test_bimodal_1in8_weights(self):
        assert condition_weight(make_prediction(Provider.BIMODAL_1IN8, bimodal_ctr=1)) == 2
        assert condition_weight(make_prediction(Provider.BIMODAL_1IN8, bimodal_ctr=0)) == 6

    def test_hitbank_weights(self):
        expectations = {3: 1, -4: 1, 2: 3, -3: 3, 1: 4, -2: 4, 0: 6, -1: 6}
        for counter, weight in expectations.items():
            prediction = make_prediction(Provider.HITBANK, hit_ctr=counter)
            assert condition_weight(prediction) == weight, counter

    def test_altbank_weights(self):
        assert condition_weight(make_prediction(Provider.ALTBANK, alt_ctr=3)) == 5
        assert condition_weight(make_prediction(Provider.ALTBANK, alt_ctr=-4)) == 5
        assert condition_weight(make_prediction(Provider.ALTBANK, alt_ctr=0)) == 7
        assert condition_weight(make_prediction(Provider.ALTBANK, alt_ctr=-2)) == 7

    def test_loop_weight(self):
        assert condition_weight(make_prediction(Provider.LOOP)) == 1

    def test_sc_weights(self):
        assert condition_weight(make_prediction(Provider.SC, lsum=200)) == 3
        assert condition_weight(make_prediction(Provider.SC, lsum=-100)) == 6
        assert condition_weight(make_prediction(Provider.SC, lsum=40)) == 8
        assert condition_weight(make_prediction(Provider.SC, lsum=10)) == 10


class TestTargetWeights:
    """Table I, Target rows."""

    def test_btb_miss_is_infinite(self):
        assert target_weight(False, False, False, True) == INFINITE

    def test_btb_hit_is_free(self):
        assert target_weight(True, False, False, True) == 0

    def test_indirect(self):
        assert target_weight(False, True, False, has_alt_ind=True) == 1
        assert math.isinf(target_weight(False, True, False, has_alt_ind=False))

    def test_return(self):
        assert target_weight(False, False, True, has_alt_ind=False) == 1


class TestMRC:
    def test_miss_then_hit_returns_recorded_index(self):
        mrc = MRC(4)
        assert mrc.access(0x1000, recorded_index=42) is None
        assert mrc.access(0x1000, recorded_index=99) == 42
        assert mrc.hits == 1 and mrc.misses == 1

    def test_lru_eviction(self):
        mrc = MRC(2)
        mrc.access(0x1, 1)
        mrc.access(0x2, 2)
        mrc.access(0x1)  # refresh
        mrc.access(0x3, 3)  # evicts 0x2 (LRU)
        assert mrc.access(0x2, 20) is None  # re-allocates 0x2, evicting 0x1
        assert mrc.access(0x3) == 3

    def test_storage_scaling(self):
        assert MRC(128).storage_kb == pytest.approx(2 * MRC(64).storage_kb)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MRC(0)


def ucp_simulator(name="srv_04", n=10_000, **overrides):
    trace = load_workload(name, n).trace
    config = replace(SimConfig(), ucp=UCPConfig(enabled=True, **overrides))
    return Simulator(trace, config)


class TestUCPEngine:
    def test_storage_budget_matches_paper(self):
        assert UCPConfig(enabled=True).storage_kb == pytest.approx(12.95, abs=0.35)
        assert UCPConfig(enabled=True, use_indirect=False).storage_kb == pytest.approx(
            8.95, abs=0.35
        )

    def test_walks_triggered_by_h2p(self):
        sim = ucp_simulator()
        result = sim.run()
        assert result.window.get("ucp_h2p_triggers", 0) > 0
        assert result.window.get("ucp_walks_started", 0) > 0
        # Not every trigger starts a walk (missing BTB target).
        assert (
            result.window["ucp_walks_started"]
            <= result.window["ucp_h2p_triggers"]
        )

    def test_prefetched_entries_marked(self):
        sim = ucp_simulator()
        result = sim.run()
        assert result.window.get("prefetch_insertions", 0) >= result.window.get(
            "ucp_entries_prefetched", 0
        )

    def test_stop_reasons_recorded(self):
        sim = ucp_simulator(n=14_000)
        result = sim.run()
        stop_total = sum(
            value for key, value in result.window.items() if key.startswith("ucp_stop_")
        )
        assert stop_total > 0

    def test_tiny_threshold_stops_earlier(self):
        big = ucp_simulator(stop_threshold=4096).run()
        small = ucp_simulator(stop_threshold=8).run()
        assert small.window.get("ucp_stop_threshold", 0) > big.window.get(
            "ucp_stop_threshold", 0
        )

    def test_walk_generates_aligned_entries(self):
        sim = ucp_simulator()
        engine = sim.ucp
        inserted = []
        original = sim.uop_cache.insert

        def spy(entry):
            if entry.from_prefetch:
                inserted.append(entry)
            return original(entry)

        sim.uop_cache.insert = spy
        sim.run()
        assert inserted, "UCP never inserted a prefetched entry"
        for entry in inserted:
            assert 1 <= entry.n_uops <= 8
            assert entry.start_pc % 4 == 0
            # Entries never span a 32B region boundary.
            assert entry.start_pc // 32 == entry.end_pc // 32

    def test_no_indirect_stops_at_indirect_branches(self):
        with_ind = ucp_simulator(n=12_000, use_indirect=True).run()
        without = ucp_simulator(n=12_000, use_indirect=False).run()
        assert without.window.get("ucp_stop_indirect_no_predictor", 0) >= 0
        # The no-Alt-Ind flavour can never resolve an indirect target.
        assert with_ind.window.get("ucp_stop_indirect_no_predictor", 0) == 0

    def test_alt_histories_diverge_and_resync(self):
        sim = ucp_simulator(n=4_000)
        engine = sim.ucp
        # Push some predicted-path history.
        for i in range(20):
            engine.on_unconditional(0x2000 + 4 * i)
        engine.alt_histories.copy_from(engine.alt_bp.histories)
        a = engine.alt_bp.predict(0x5000)
        b = engine.alt_bp.predict(0x5000, histories=engine.alt_histories)
        assert a.tage.indices == b.tage.indices
        engine.alt_histories.push(0x5000, True)
        c = engine.alt_bp.predict(0x5000, histories=engine.alt_histories)
        assert c.tage.indices != a.tage.indices
