"""Tests for the Section IV-G design-point extensions and the ablations."""

from dataclasses import replace

from repro.caches import UopCache, UopCacheConfig, UopCacheEntry
from repro.core import SimConfig, simulate
from repro.core.configs import UCPConfig
from repro.experiments import ablations
from repro.experiments.common import Scale
from repro.workloads import load_workload

TINY = Scale("tiny", ("int_03", "crypto_02"), 6_000)


class TestInclusiveInvalidation:
    def test_invalidate_line_removes_covered_entries(self):
        cache = UopCache()
        # Three entries: two inside line 0x1000-0x103F, one outside.
        cache.insert(UopCacheEntry(0x1000, 4, 0x1010))
        cache.insert(UopCacheEntry(0x1020, 4, 0x1030))
        cache.insert(UopCacheEntry(0x1040, 4, 0x1050))
        removed = cache.invalidate_line(0x1000)
        assert removed == 2
        assert not cache.probe(0x1000)
        assert not cache.probe(0x1020)
        assert cache.probe(0x1040)
        assert cache.stats["inclusive_invalidations"] == 2

    def test_invalidate_unaligned_address(self):
        cache = UopCache()
        cache.insert(UopCacheEntry(0x1020, 4, 0x1030))
        # Mid-line address still clears the whole covering line.
        assert cache.invalidate_line(0x103C) == 1

    def test_invalidate_empty_line(self):
        cache = UopCache()
        assert cache.invalidate_line(0x9000) == 0
        assert "inclusive_invalidations" not in cache.stats

    def test_inclusive_config_invalidates_in_simulation(self):
        from repro.caches.cache import CacheConfig
        from repro.caches.hierarchy import HierarchyConfig

        trace = load_workload("srv_02", 8_000).trace
        config = SimConfig()
        # Shrink the L1I so the workload actually evicts lines.
        small_l1i = CacheConfig("L1I", size_bytes=4 * 1024, ways=8, hit_latency=4)
        config = replace(
            config,
            uop_cache=replace(config.uop_cache, l1i_inclusive=True),
            hierarchy=HierarchyConfig(l1i=small_l1i),
        )
        result = simulate(trace, config)
        assert result.window.get("inclusive_invalidations", 0) > 0

    def test_inclusive_never_beats_non_inclusive_hit_rate(self):
        trace = load_workload("srv_02", 8_000).trace
        base = simulate(trace, SimConfig())
        config = replace(
            SimConfig(), uop_cache=replace(SimConfig().uop_cache, l1i_inclusive=True)
        )
        inclusive = simulate(trace, config)
        assert inclusive.uop_hit_rate <= base.uop_hit_rate + 1.0


class TestStatefulDecode:
    def _run(self, stateful):
        trace = load_workload("srv_04", 8_000).trace
        config = replace(
            SimConfig(),
            ucp=UCPConfig(enabled=True),
            isa_stateful_decode=stateful,
        )
        return simulate(trace, config)

    def test_both_modes_run_and_prefetch(self):
        for stateful in (False, True):
            result = self._run(stateful)
            assert result.window.get("ucp_entries_prefetched", 0) > 0

    def test_stateless_is_at_least_as_timely(self):
        stateless = self._run(False)
        stateful = self._run(True)
        # Out-of-order line decode can only improve timeliness.
        assert stateless.prefetch_accuracy >= stateful.prefetch_accuracy - 5.0


class TestAblations:
    def test_mode_switch_penalty_rows(self):
        result = ablations.mode_switch_penalty(TINY, penalties=(0, 4))
        assert len(result.rows) == 2
        assert result.value("penalty=0") >= result.value("penalty=4") - 0.5
        assert "switch penalty" in result.render()

    def test_ftq_depth_reference_is_zero(self):
        result = ablations.ftq_depth(TINY, depths=(32, 192))
        assert abs(result.value("ftq=192")) < 1e-9

    def test_walk_width_rows(self):
        result = ablations.walk_width(TINY, widths=(2, 16))
        assert {label for label, _ in result.rows} == {"walk=2/cycle", "walk=16/cycle"}

    def test_isa_statefulness_rows(self):
        result = ablations.isa_statefulness(TINY)
        assert len(result.rows) == 2

    def test_l1i_inclusivity_rows(self):
        result = ablations.l1i_inclusivity(TINY)
        assert result.value("non-inclusive (paper)") >= result.value("L1I-inclusive") - 0.5


class TestPerceptron:
    def test_learns_biased_branch(self):
        import random

        from repro.branch import HashedPerceptron

        predictor = HashedPerceptron()
        rng = random.Random(3)
        misses = total = 0
        for i in range(2500):
            taken = rng.random() < 0.05
            pred = predictor.predict(0x3000)
            if i > 400:
                total += 1
                misses += pred.taken != taken
            predictor.update(pred, taken)
        assert misses / total < 0.12

    def test_learns_pattern(self):
        from repro.branch import HashedPerceptron

        predictor = HashedPerceptron()
        pattern = [True, False, True, True]
        misses = 0
        for i in range(3000):
            taken = pattern[i % 4]
            pred = predictor.predict(0x4000)
            if i > 1000 and pred.taken != taken:
                misses += 1
            predictor.update(pred, taken)
        assert misses < 60

    def test_confidence_magnitude_grows_with_training(self):
        from repro.branch import HashedPerceptron

        predictor = HashedPerceptron()
        early = predictor.predict(0x5000).magnitude
        for _ in range(300):
            pred = predictor.predict(0x5000)
            predictor.update(pred, True)
        late = predictor.predict(0x5000).magnitude
        assert late > early

    def test_h2p_flags_low_magnitude(self):
        from repro.branch import HashedPerceptron, perceptron_is_h2p

        predictor = HashedPerceptron()
        assert perceptron_is_h2p(predictor.predict(0x6000))  # untrained
        for _ in range(400):
            pred = predictor.predict(0x6000)
            predictor.update(pred, True)
        assert not perceptron_is_h2p(predictor.predict(0x6000))

    def test_weights_bounded(self):
        from repro.branch import HashedPerceptron, PerceptronConfig

        predictor = HashedPerceptron(PerceptronConfig(weight_bits=4))
        for _ in range(500):
            pred = predictor.predict(0x7000)
            predictor.update(pred, True)
        for table in predictor._tables:
            assert all(-8 <= w <= 7 for w in table)

    def test_ucp_perceptron_trigger_runs(self):
        from dataclasses import replace

        from repro.core import SimConfig, simulate
        from repro.core.configs import UCPConfig

        trace = load_workload("int_03", 5_000).trace
        result = simulate(
            trace,
            replace(SimConfig(), ucp=UCPConfig(enabled=True, confidence="perceptron")),
        )
        assert result.window.get("ucp_h2p_triggers", 0) > 0

    def test_unknown_confidence_rejected(self):
        from dataclasses import replace

        import pytest

        from repro.core import SimConfig, Simulator
        from repro.core.configs import UCPConfig

        trace = load_workload("int_03", 1_000).trace
        with pytest.raises(ValueError):
            Simulator(
                trace,
                replace(SimConfig(), ucp=UCPConfig(enabled=True, confidence="bogus")),
            )


class TestClasp:
    def test_clasp_entries_cross_regions(self):
        from repro.caches import UopCacheConfig, UopEntryBuilder

        builder = UopEntryBuilder(UopCacheConfig(clasp=True))
        completed = []
        # Start mid-region: without CLASP this would close at the boundary.
        for i in range(8):
            completed += builder.add(0x101C + 4 * i, False, False, 0x1020 + 4 * i)
        assert len(completed) == 1
        entry = completed[0]
        assert entry.n_uops == 8
        assert entry.start_pc // 32 != entry.end_pc // 32  # crosses regions

    def test_clasp_raises_hit_rate(self):
        from dataclasses import replace

        from repro.core import SimConfig, simulate

        trace = load_workload("srv_04", 8_000).trace
        base = simulate(trace, SimConfig())
        clasp_cfg = replace(
            SimConfig(), uop_cache=replace(SimConfig().uop_cache, clasp=True)
        )
        relaxed = simulate(trace, clasp_cfg)
        # Fragmentation relief usually raises the hit rate, but chain
        # realignment makes the effect noisy at small trace scales; only
        # assert CLASP is not catastrophically worse.
        assert relaxed.uop_hit_rate >= base.uop_hit_rate - 5.0
