"""Fuzz suite for the trace-ingestion frontend.

Contract under test: feeding *any* bytes to any reader either yields a
valid :class:`~repro.isa.trace.Trace` or raises the typed
:class:`~repro.isa.errors.TraceFormatError` — never ``struct.error``,
``IndexError``, ``OverflowError``, ``EOFError``, gzip/lzma internals, or
a bare ``ValueError`` from deep inside numpy.  Hypothesis drives three
malformation families:

* arbitrary byte soup (and byte soup behind valid container magic);
* truncations and single-byte corruptions of *valid* dumps;
* envelope attacks: garbage claiming to be gzip/xz, truncated members,
  and headers claiming multi-GB record counts over tiny files.
"""

from __future__ import annotations

import gzip
import lzma
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import TraceFormatError
from repro.isa.champsim import dump_champsim
from repro.isa.cvp import dump_cvp
from repro.isa.ingest import FORMATS, load_any
from repro.isa.riscv import HEADER, MAGIC, RECORD_BYTES, dump_riscv
from tests.conftest import build_branchy_trace

#: (format, file suffix, dump function) for every binary frontend.
BINARY_FORMATS = [
    ("champsim", ".bin", dump_champsim),
    ("cvp", ".cvp", dump_cvp),
    ("riscv", ".rv", dump_riscv),
]

_SETTINGS = settings(deadline=None, max_examples=40)


def _load_or_typed_error(path, fmt):
    """The invariant: a Trace comes back, or exactly TraceFormatError."""
    try:
        result = load_any(path, fmt=fmt)
    except TraceFormatError:
        return None
    except Exception as error:  # pragma: no cover - the failure being hunted
        pytest.fail(
            f"{fmt} reader leaked {type(error).__name__}: {error!r} "
            f"(must raise TraceFormatError)"
        )
    result.trace.validate()
    return result


class TestArbitraryBytes:
    @pytest.mark.parametrize("fmt,suffix,_dump", BINARY_FORMATS)
    @_SETTINGS
    @given(blob=st.binary(max_size=512))
    def test_byte_soup(self, tmp_path_factory, fmt, suffix, _dump, blob):
        path = tmp_path_factory.mktemp("fuzz") / f"soup{suffix}"
        path.write_bytes(blob)
        _load_or_typed_error(path, fmt)

    @_SETTINGS
    @given(blob=st.binary(max_size=256))
    def test_riscv_soup_behind_valid_header(self, tmp_path_factory, blob):
        """Valid magic + garbage payload must still fail typed."""
        path = tmp_path_factory.mktemp("fuzz") / "soup.rv"
        count = max(1, len(blob) // RECORD_BYTES)
        path.write_bytes(HEADER.pack(MAGIC, 64, 0, 0, count) + blob)
        _load_or_typed_error(path, "riscv")

    @pytest.mark.parametrize("fmt,suffix,_dump", BINARY_FORMATS)
    def test_zero_length_file(self, tmp_path, fmt, suffix, _dump):
        path = tmp_path / f"empty{suffix}"
        path.write_bytes(b"")
        # ChampSim/CVP treat empty as zero records; RISC-V requires a
        # header.  Either outcome is fine — a crash is not.
        _load_or_typed_error(path, fmt)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_any(tmp_path / "nope.bin")

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "trace.weird"
        path.write_bytes(b"x")
        with pytest.raises(TraceFormatError, match="cannot detect"):
            load_any(path)

    def test_unknown_format_name(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            load_any(path, fmt="elf")


class TestCorruptedValidDumps:
    @pytest.mark.parametrize("fmt,suffix,dump", BINARY_FORMATS)
    @_SETTINGS
    @given(data=st.data())
    def test_truncation_anywhere(self, tmp_path_factory, fmt, suffix, dump, data):
        path = tmp_path_factory.mktemp("fuzz") / f"trunc{suffix}"
        dump(build_branchy_trace(), path)
        blob = path.read_bytes()
        cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
        path.write_bytes(blob[:cut])
        _load_or_typed_error(path, fmt)

    @pytest.mark.parametrize("fmt,suffix,dump", BINARY_FORMATS)
    @_SETTINGS
    @given(data=st.data())
    def test_single_byte_corruption(self, tmp_path_factory, fmt, suffix, dump, data):
        path = tmp_path_factory.mktemp("fuzz") / f"flip{suffix}"
        dump(build_branchy_trace(), path)
        blob = bytearray(path.read_bytes())
        index = data.draw(st.integers(0, len(blob) - 1), label="index")
        flip = data.draw(st.integers(1, 255), label="flip")
        blob[index] ^= flip
        path.write_bytes(bytes(blob))
        _load_or_typed_error(path, fmt)

    @pytest.mark.parametrize("fmt,suffix,dump", BINARY_FORMATS)
    def test_high_bit_addresses_rejected(self, tmp_path, fmt, suffix, dump):
        """A u64 PC above 2^63 must not leak numpy's OverflowError."""
        path = tmp_path / f"highbit{suffix}"
        dump(build_branchy_trace(), path)
        blob = bytearray(path.read_bytes())
        # Set the top byte of the first little-endian u64 PC field.
        pc_offset = HEADER.size if fmt == "riscv" else 0
        blob[pc_offset + 7] = 0xFF
        path.write_bytes(bytes(blob))
        _load_or_typed_error(path, fmt)


class TestEnvelopeAttacks:
    @pytest.mark.parametrize("envelope", [".gz", ".xz"])
    @pytest.mark.parametrize("fmt,suffix,_dump", BINARY_FORMATS)
    @_SETTINGS
    @given(blob=st.binary(max_size=128))
    def test_garbage_claiming_compression(
        self, tmp_path_factory, envelope, fmt, suffix, _dump, blob
    ):
        path = tmp_path_factory.mktemp("fuzz") / f"bad{suffix}{envelope}"
        path.write_bytes(blob)
        _load_or_typed_error(path, fmt)

    @pytest.mark.parametrize("fmt,suffix,dump", BINARY_FORMATS)
    def test_truncated_gzip_member(self, tmp_path, fmt, suffix, dump):
        plain = tmp_path / f"t{suffix}"
        dump(build_branchy_trace(), plain)
        wrapped = tmp_path / f"t{suffix}.gz"
        wrapped.write_bytes(gzip.compress(plain.read_bytes())[:-8])
        _load_or_typed_error(wrapped, fmt)

    @pytest.mark.parametrize("fmt,suffix,dump", BINARY_FORMATS)
    def test_corrupt_xz_stream(self, tmp_path, fmt, suffix, dump):
        plain = tmp_path / f"t{suffix}"
        dump(build_branchy_trace(), plain)
        blob = bytearray(lzma.compress(plain.read_bytes()))
        blob[len(blob) // 2] ^= 0xFF
        wrapped = tmp_path / f"t{suffix}.xz"
        wrapped.write_bytes(bytes(blob))
        _load_or_typed_error(wrapped, fmt)


class TestResourceClaims:
    def test_riscv_multi_gb_claim_rejected_fast(self, tmp_path):
        """A 16-byte header claiming 2^31 records over an empty payload
        must fail on the size check, not allocate or loop."""
        path = tmp_path / "huge.rv"
        path.write_bytes(HEADER.pack(MAGIC, 64, 0, 0, 1 << 31))
        with pytest.raises(TraceFormatError, match="claims"):
            load_any(path, fmt="riscv")

    def test_riscv_count_payload_mismatch(self, tmp_path):
        path = tmp_path / "short.rv"
        record = struct.pack("<QI", 0x1000, 0x00000013)
        path.write_bytes(HEADER.pack(MAGIC, 64, 0, 0, 3) + record)
        with pytest.raises(TraceFormatError, match="claims"):
            load_any(path, fmt="riscv")

    def test_riscv_compressed_claim_still_typed(self, tmp_path):
        """Behind gzip the file size is unknown up front; the stream-end
        check must still produce the typed error."""
        path = tmp_path / "short.rv.gz"
        record = struct.pack("<QI", 0x1000, 0x00000013)
        with gzip.open(path, "wb") as handle:
            handle.write(HEADER.pack(MAGIC, 64, 0, 0, 1000) + record)
        with pytest.raises(TraceFormatError, match="ends"):
            load_any(path, fmt="riscv")


def test_formats_constant_matches_parametrization():
    assert {fmt for fmt, _, _ in BINARY_FORMATS} <= set(FORMATS)
