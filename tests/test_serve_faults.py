"""Service-fault injection tests: the server must *contain* failures.

Each registered :class:`~repro.verify.service_faults.ServiceFault` runs
against a real server with a victim request (hits the fault) and a
healthy request (shares the server).  The pass criterion is scoping: the
victim fails with its expected typed error code, the healthy request
completes, and — where the fault declares a ``followup_code`` — the
post-failure behaviour (quarantine) holds too.

These are the same scenarios behind ``repro verify --inject``; running
them under pytest makes fault containment a tier-1 regression property.
"""

from __future__ import annotations

import pytest

from repro.serve.protocol import ERROR_CODES
from repro.verify.service_faults import (
    SERVICE_FAULTS,
    run_service_fault,
)


class TestRegistry:
    def test_registry_is_well_formed(self):
        assert len(SERVICE_FAULTS) >= 3
        for name, fault in SERVICE_FAULTS.items():
            assert fault.name == name
            assert fault.expected_code in ERROR_CODES
            assert fault.followup_code is None or fault.followup_code in ERROR_CODES
            assert fault.mode in ("process", "thread")
            assert fault.description

    def test_expected_faults_registered(self):
        assert {"worker-killed", "cache-corrupt-read", "slow-worker"} <= set(
            SERVICE_FAULTS
        )


class TestInjection:
    @pytest.mark.parametrize("name", sorted(SERVICE_FAULTS))
    def test_fault_is_contained(self, name):
        fault = SERVICE_FAULTS[name]
        outcome = run_service_fault(name)
        assert outcome.healthy_ok, (
            f"healthy request died alongside the {name} fault: {outcome.detail}"
        )
        assert outcome.code == fault.expected_code, outcome.detail
        assert outcome.caught, outcome.render()
