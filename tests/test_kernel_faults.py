"""Mutation-catch tests for the batched kernel.

The kernel-vs-interpreter differential oracle is the only committed
defence against a replay bug producing silently wrong (but plausible)
results.  This suite injects the registered kernel faults — span
off-by-one, stale branch class, skipped event boundary — and asserts
the oracle catches every one with the ``kernel-differential`` invariant,
mirroring ``test_verify_faults.py`` for the sanitizer.
"""

import pytest

from repro.core.kernel.engine import ReplayBPU
from repro.verify.kernel_diff import KERNEL_DIFFERENTIAL
from repro.verify.kernel_faults import KERNEL_FAULTS, run_kernel_fault


def test_registry_has_the_three_kernel_faults():
    assert set(KERNEL_FAULTS) >= {
        "kernel-span-off-by-one",
        "kernel-stale-branch-class",
        "kernel-skipped-event-boundary",
    }


def test_every_kernel_fault_expects_the_differential():
    for fault in KERNEL_FAULTS.values():
        assert KERNEL_DIFFERENTIAL in fault.expected_invariants


@pytest.mark.parametrize("name", sorted(KERNEL_FAULTS))
def test_kernel_fault_is_caught(name):
    outcome = run_kernel_fault(name)
    assert outcome.caught, outcome.render()
    assert outcome.invariant == KERNEL_DIFFERENTIAL


def test_patches_are_restored_after_runs():
    original_build = ReplayBPU._build_block
    original_redirect = ReplayBPU.redirect
    for name in KERNEL_FAULTS:
        run_kernel_fault(name)
    assert ReplayBPU._build_block is original_build
    assert ReplayBPU.redirect is original_redirect


def test_faults_only_patch_the_replay_class():
    """The interpreter reference must stay clean, or the differential
    would compare one bug against itself."""
    from repro.frontend.bpu import BPU

    original_build = BPU._build_block
    original_redirect = BPU.redirect
    for fault in KERNEL_FAULTS.values():
        with fault.inject():
            assert BPU._build_block is original_build
            assert BPU.redirect is original_redirect
