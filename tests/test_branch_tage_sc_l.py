"""Tests for the combined TAGE-SC-L predictor and confidence estimation."""

import random

import pytest

from repro.branch import (
    ConfidenceStats,
    Provider,
    TageScL,
    TageScLConfig,
    tage_conf_is_h2p,
    ucp_conf_is_h2p,
)


def train(predictor: TageScL, pc: int, outcomes, record=None) -> None:
    for taken in outcomes:
        pred = predictor.predict(pc)
        if record is not None:
            record.append((pred, taken))
        predictor.update(pred, taken)


class TestTageScLLearning:
    def test_learns_period_pattern(self):
        bp = TageScL()
        pattern = [True, True, False, True, False, False]
        misses = 0
        for i in range(3000):
            taken = pattern[i % len(pattern)]
            pred = bp.predict(0x1000)
            if i > 600 and pred.taken != taken:
                misses += 1
            bp.update(pred, taken)
        assert misses < 10

    def test_learns_fixed_loop_via_loop_predictor(self):
        bp = TageScL()
        iteration = 0
        loop_provided = 0
        misses = 0
        for i in range(4000):
            taken = iteration < 9  # trip 10
            pred = bp.predict(0x4000)
            if i > 1000:
                if pred.provider is Provider.LOOP:
                    loop_provided += 1
                if pred.taken != taken:
                    misses += 1
            bp.update(pred, taken)
            iteration = iteration + 1 if taken else 0
        assert misses < 10
        assert loop_provided > 0

    def test_biased_branch_low_miss(self):
        bp = TageScL()
        rng = random.Random(3)
        misses = total = 0
        for i in range(2500):
            taken = rng.random() < 0.03
            pred = bp.predict(0x8000)
            if i > 300:
                total += 1
                misses += pred.taken != taken
            bp.update(pred, taken)
        assert misses / total < 0.08

    def test_cross_branch_correlation(self):
        bp = TageScL()
        rng = random.Random(5)
        history = [False, False]
        misses = total = 0
        for i in range(5000):
            lead = rng.random() < 0.5
            pred_lead = bp.predict(0x2000)
            bp.update(pred_lead, lead)
            history.append(lead)
            follow = history[-1] ^ history[-2]
            pred_follow = bp.predict(0x3000)
            if i > 2500:
                total += 1
                misses += pred_follow.taken != follow
            bp.update(pred_follow, follow)
        assert misses / total < 0.05

    def test_push_unconditional_changes_history(self):
        bp = TageScL()
        before = bp.predict(0x1000)
        for i in range(8):
            bp.push_unconditional(0x5000 + 4 * i)
        after = bp.predict(0x1000)
        assert before.tage.indices != after.tage.indices

    def test_small_config_storage(self):
        small = TageScLConfig.small()
        default = TageScLConfig()
        assert small.storage_kb < default.storage_kb
        # Paper budget: the Alt-BP is an ~8KB-class predictor.
        assert 2 < small.storage_kb < 16
        # Baseline is a 64KB-class predictor.
        assert 24 < default.storage_kb < 128

    def test_make_histories_independent(self):
        bp = TageScL(TageScLConfig.small())
        alt = bp.make_histories()
        for i in range(20):
            bp.push_unconditional(0x100 + 4 * i)
        main_pred = bp.predict(0x7000)
        alt_pred = bp.predict(0x7000, histories=alt)
        assert main_pred.tage.indices != alt_pred.tage.indices
        alt.copy_from(bp.histories)
        resynced = bp.predict(0x7000, histories=alt)
        assert resynced.tage.indices == main_pred.tage.indices


class TestProviderAttribution:
    def test_empty_predictor_is_bimodal(self):
        bp = TageScL()
        pred = bp.predict(0x1000)
        assert pred.provider in (Provider.BIMODAL, Provider.SC)

    def test_providers_diversify_with_training(self):
        bp = TageScL()
        rng = random.Random(1)
        providers = set()
        for i in range(4000):
            pc = 0x1000 + (i % 7) * 4
            taken = rng.random() < (0.1 if pc % 8 else 0.9)
            pred = bp.predict(pc)
            providers.add(pred.provider)
            bp.update(pred, taken)
        assert Provider.HITBANK in providers

    def test_provider_value_matches_component(self):
        bp = TageScL()
        pred = bp.predict(0x1000)
        if pred.provider in (Provider.BIMODAL, Provider.BIMODAL_1IN8):
            assert pred.provider_value == pred.tage.bimodal_ctr


class TestConfidenceClassifiers:
    def _mispredicting_h2p_branch(self):
        """Train a predictor on a coin-flip branch and collect predictions."""
        bp = TageScL()
        rng = random.Random(9)
        records = []
        for i in range(3000):
            taken = rng.random() < 0.5
            pred = bp.predict(0xA000)
            if i > 500:
                records.append((pred, taken))
            bp.update(pred, taken)
        return records

    def test_ucp_flags_random_branch_often(self):
        records = self._mispredicting_h2p_branch()
        flagged = sum(ucp_conf_is_h2p(pred) for pred, _ in records)
        assert flagged / len(records) > 0.5

    def test_ucp_rarely_flags_stable_branch(self):
        bp = TageScL()
        records = []
        for i in range(2000):
            pred = bp.predict(0xB000)
            if i > 500:
                records.append(pred)
            bp.update(pred, True)
        flagged = sum(ucp_conf_is_h2p(pred) for pred in records)
        assert flagged / len(records) < 0.1

    def test_ucp_coverage_geq_tage_on_noise(self):
        # UCP-Conf extends TAGE-Conf (AltBank/SC always flagged), so on a
        # mixed workload its coverage must be at least TAGE-Conf's.
        bp = TageScL()
        rng = random.Random(11)
        tage_stats = ConfidenceStats("tage")
        ucp_stats = ConfidenceStats("ucp")
        for i in range(6000):
            pc = 0x1000 + (i % 13) * 4
            p_taken = [0.02, 0.98, 0.5][pc % 3]
            taken = rng.random() < p_taken
            pred = bp.predict(pc)
            if i > 1000:
                miss = pred.taken != taken
                tage_stats.record(tage_conf_is_h2p(pred), miss)
                ucp_stats.record(ucp_conf_is_h2p(pred), miss)
            bp.update(pred, taken)
        assert ucp_stats.coverage >= tage_stats.coverage

    def test_loop_provider_is_high_confidence_for_ucp(self):
        bp = TageScL()
        iteration = 0
        loop_preds = []
        for i in range(3000):
            taken = iteration < 7
            pred = bp.predict(0xC000)
            if pred.provider is Provider.LOOP:
                loop_preds.append(pred)
            bp.update(pred, taken)
            iteration = iteration + 1 if taken else 0
        assert loop_preds, "loop predictor never provided"
        assert all(not ucp_conf_is_h2p(pred) for pred in loop_preds)

    def test_confidence_stats_math(self):
        stats = ConfidenceStats("x")
        stats.record(flagged_h2p=True, mispredicted=True)
        stats.record(flagged_h2p=True, mispredicted=False)
        stats.record(flagged_h2p=False, mispredicted=True)
        stats.record(flagged_h2p=False, mispredicted=False)
        assert stats.coverage == pytest.approx(50.0)
        assert stats.accuracy == pytest.approx(50.0)

    def test_confidence_stats_empty(self):
        stats = ConfidenceStats("empty")
        assert stats.coverage == 0.0
        assert stats.accuracy == 0.0
