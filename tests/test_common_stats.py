"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import (
    StatBlock,
    amean,
    geomean,
    geomean_speedup,
    per_kilo,
    percent,
)


class TestMeans:
    def test_amean(self):
        assert amean([1, 2, 3]) == 2.0
        assert amean([]) == 0.0

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])

    def test_geomean_speedup_percent(self):
        # Two runs at 1.02x -> geomean 1.02 -> 2%.
        assert geomean_speedup([1.02, 1.02]) == pytest.approx(2.0)

    def test_geomean_speedup_mixed(self):
        assert geomean_speedup([1.1, 1.0 / 1.1]) == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    def test_geomean_leq_amean(self, values):
        assert geomean(values) <= amean(values) + 1e-9


class TestRatios:
    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(3, 0) == 0.0

    def test_per_kilo(self):
        assert per_kilo(5, 1000) == 5.0
        assert per_kilo(5, 0) == 0.0


class TestStatBlock:
    def test_unknown_counter_reads_zero(self):
        stats = StatBlock("frontend")
        assert stats["nonexistent"] == 0
        assert "nonexistent" not in stats

    def test_add_and_read(self):
        stats = StatBlock()
        stats.add("hits")
        stats.add("hits", 4)
        assert stats["hits"] == 5

    def test_set_overwrites(self):
        stats = StatBlock()
        stats.add("x", 3)
        stats.set("x", 1)
        assert stats["x"] == 1

    def test_merge_with_prefix(self):
        a = StatBlock("a")
        b = StatBlock("b")
        a.add("hits", 2)
        b.add("hits", 3)
        a.merge(b, prefix="uop.")
        assert a["hits"] == 2
        assert a["uop.hits"] == 3

    def test_merge_accumulates(self):
        a = StatBlock()
        b = StatBlock()
        a.add("n", 1)
        b.add("n", 2)
        a.merge(b)
        assert a["n"] == 3

    def test_keys_sorted(self):
        stats = StatBlock()
        stats.add("zeta")
        stats.add("alpha")
        assert stats.keys() == ["alpha", "zeta"]

    def test_as_dict_is_copy(self):
        stats = StatBlock()
        stats.add("k", 1)
        snapshot = stats.as_dict()
        snapshot["k"] = 99
        assert stats["k"] == 1
