"""Tests for statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import (
    StatBlock,
    TimingSummary,
    amean,
    geomean,
    geomean_speedup,
    per_kilo,
    percent,
    quantile,
)


class TestMeans:
    def test_amean(self):
        assert amean([1, 2, 3]) == 2.0
        assert amean([]) == 0.0

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])

    def test_geomean_speedup_percent(self):
        # Two runs at 1.02x -> geomean 1.02 -> 2%.
        assert geomean_speedup([1.02, 1.02]) == pytest.approx(2.0)

    def test_geomean_speedup_mixed(self):
        assert geomean_speedup([1.1, 1.0 / 1.1]) == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(st.lists(st.floats(0.5, 2.0), min_size=1, max_size=20))
    def test_geomean_leq_amean(self, values):
        assert geomean(values) <= amean(values) + 1e-9


class TestRatios:
    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(3, 0) == 0.0

    def test_per_kilo(self):
        assert per_kilo(5, 1000) == 5.0
        assert per_kilo(5, 0) == 0.0


class TestStatBlock:
    def test_unknown_counter_reads_zero(self):
        stats = StatBlock("frontend")
        assert stats["nonexistent"] == 0
        assert "nonexistent" not in stats

    def test_add_and_read(self):
        stats = StatBlock()
        stats.add("hits")
        stats.add("hits", 4)
        assert stats["hits"] == 5

    def test_set_overwrites(self):
        stats = StatBlock()
        stats.add("x", 3)
        stats.set("x", 1)
        assert stats["x"] == 1

    def test_merge_with_prefix(self):
        a = StatBlock("a")
        b = StatBlock("b")
        a.add("hits", 2)
        b.add("hits", 3)
        a.merge(b, prefix="uop.")
        assert a["hits"] == 2
        assert a["uop.hits"] == 3

    def test_merge_accumulates(self):
        a = StatBlock()
        b = StatBlock()
        a.add("n", 1)
        b.add("n", 2)
        a.merge(b)
        assert a["n"] == 3

    def test_keys_sorted(self):
        stats = StatBlock()
        stats.add("zeta")
        stats.add("alpha")
        assert stats.keys() == ["alpha", "zeta"]

    def test_as_dict_is_copy(self):
        stats = StatBlock()
        stats.add("k", 1)
        snapshot = stats.as_dict()
        snapshot["k"] = 99
        assert stats["k"] == 1


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.5) == 0.0

    def test_single_value(self):
        assert quantile([3.0], 0.0) == 3.0
        assert quantile([3.0], 1.0) == 3.0

    def test_median_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, values):
        for q in (0.25, 0.5, 0.95):
            assert min(values) <= quantile(values, q) <= max(values)


class TestTimingSummary:
    def test_empty(self):
        summary = TimingSummary.from_samples([])
        assert summary.count == 0
        assert summary.total == summary.mean == summary.p95 == 0.0

    def test_basic_fields(self):
        summary = TimingSummary.from_samples([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.total == 6.0
        assert summary.mean == 2.0
        assert summary.p50 == 2.0
        assert summary.max == 3.0

    def test_p95_near_top(self):
        summary = TimingSummary.from_samples(float(v) for v in range(1, 101))
        assert 95.0 <= summary.p95 <= 96.0
