"""Deep tests of TAGE internals: allocation, useful bits, USE_ALT_ON_NA."""

from repro.branch.tage import TAGE, TageConfig


def drive(tage: TAGE, pc: int, outcomes) -> int:
    """Feed outcomes through predict/update; returns misprediction count."""
    misses = 0
    for taken in outcomes:
        pred = tage.predict(pc)
        misses += pred.taken != taken
        tage.update(pred, taken)
        tage.push_history(pc, taken)
    return misses


class TestAllocation:
    def test_mispredictions_allocate_tagged_entries(self):
        tage = TAGE(TageConfig(n_tables=4, max_history=32))
        # Alternating branch: bimodal mispredicts forever, so tagged
        # entries must get allocated.
        drive(tage, 0x1000, [i % 2 == 0 for i in range(200)])
        allocated = sum(
            1 for table in tage._tags for tag in table if tag != -1
        )
        assert allocated > 0

    def test_no_allocation_without_mispredictions(self):
        tage = TAGE(TageConfig(n_tables=4))
        # Always-not-taken: bimodal (init weakly not-taken) never misses.
        drive(tage, 0x2000, [False] * 100)
        allocated = sum(1 for table in tage._tags for tag in table if tag != -1)
        assert allocated == 0

    def test_allocation_counter_triggers_useful_reset(self):
        config = TageConfig(n_tables=4, useful_reset_period=8)
        tage = TAGE(config)
        # Noisy branches force a stream of allocations past the period.
        import random

        rng = random.Random(0)
        for i in range(600):
            pc = 0x3000 + 4 * (i % 17)
            pred = tage.predict(pc)
            tage.update(pred, rng.random() < 0.5)
            tage.push_history(pc, rng.random() < 0.5)
        # After resets, the allocation counter stays below the period.
        assert tage._allocations_since_reset < config.useful_reset_period


class TestUsefulBits:
    def test_useful_incremented_when_provider_beats_alt(self):
        tage = TAGE(TageConfig(n_tables=4, max_history=24))
        # History-dependent branch the tagged tables learn but bimodal
        # cannot: provider will differ from altpred and be correct.
        drive(tage, 0x4000, [i % 2 == 0 for i in range(600)])
        total_useful = sum(sum(table) for table in tage._useful)
        assert total_useful > 0

    def test_useful_bounded(self):
        config = TageConfig(n_tables=4, useful_bits=2)
        tage = TAGE(config)
        drive(tage, 0x5000, [i % 2 == 0 for i in range(800)])
        for table in tage._useful:
            assert all(0 <= value <= 3 for value in table)

    def test_counters_bounded(self):
        config = TageConfig(n_tables=4, counter_bits=3)
        tage = TAGE(config)
        drive(tage, 0x6000, [i % 3 == 0 for i in range(800)])
        for table in tage._ctrs:
            assert all(-4 <= value <= 3 for value in table)


class TestProviderSelection:
    def test_longest_matching_bank_provides(self):
        tage = TAGE(TageConfig(n_tables=4, max_history=24))
        drive(tage, 0x7000, [i % 2 == 0 for i in range(600)])
        pred = tage.predict(0x7000)
        if pred.hit_bank is not None and pred.alt_bank is not None:
            assert pred.hit_bank > pred.alt_bank

    def test_provider_ctr_reflects_provider(self):
        tage = TAGE(TageConfig(n_tables=4))
        pred = tage.predict(0x8000)
        assert pred.provider == "bimodal"
        assert pred.provider_ctr == pred.bimodal_ctr

    def test_use_alt_on_na_in_range(self):
        import random

        tage = TAGE(TageConfig(n_tables=4))
        rng = random.Random(1)
        for i in range(1000):
            pc = 0x9000 + 4 * (i % 11)
            pred = tage.predict(pc)
            tage.update(pred, rng.random() < 0.5)
            tage.push_history(pc, rng.random() < 0.5)
            assert -8 <= tage._use_alt_on_na <= 7
