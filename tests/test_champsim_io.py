"""Tests for the ChampSim binary trace format import/export."""

import struct

import pytest

from repro.isa import BranchClass, TraceFormatError
from repro.isa.champsim import (
    RECORD_BYTES,
    dump_champsim,
    load_champsim,
)
from repro.workloads import load_workload


class TestRecordLayout:
    def test_record_is_64_bytes(self):
        assert RECORD_BYTES == 64


class TestRoundTrip:
    def test_branchy_sample_roundtrip(self, tmp_path, branchy_trace):
        path = tmp_path / "branchy.bin"
        dump_champsim(branchy_trace, path)
        back = load_champsim(path)
        assert (back.branch_classes == branchy_trace.branch_classes).all()
        assert (back.next_pcs == branchy_trace.next_pcs).all()

    @pytest.mark.parametrize("suffix", [".bin", ".xz", ".gz"])
    def test_workload_roundtrip(self, tmp_path, suffix):
        trace = load_workload("int_01", 1_500).trace
        path = tmp_path / f"trace{suffix}"
        dump_champsim(trace, path)
        back = load_champsim(path)
        assert len(back) == len(trace)
        assert (back.pcs == trace.pcs).all()
        assert (back.branch_classes == trace.branch_classes).all()
        # Control flow round-trips exactly: next-PC streams are identical.
        # (Taken flags may legitimately differ for taken branches targeting
        # pc+4, which are control-flow-identical to not-taken.)
        assert (back.next_pcs == trace.next_pcs).all()
        back.validate()

    def test_taken_to_fallthrough_demoted(self, tmp_path):
        """A taken conditional targeting pc+4 imports as not-taken."""
        from repro.isa import Trace, TraceEntry

        trace = Trace.from_entries(
            "adjacent",
            [
                TraceEntry(0x1000, BranchClass.COND_DIRECT, True, 0x1004),
                TraceEntry(0x1004),
            ],
        )
        path = tmp_path / "adj.bin"
        dump_champsim(trace, path)
        back = load_champsim(path)
        assert bool(back.takens[0]) is False
        assert back.next_pcs[0] == 0x1004

    def test_max_instructions_cap(self, tmp_path):
        trace = load_workload("fp_01", 1_000).trace
        path = tmp_path / "t.bin"
        dump_champsim(trace, path)
        back = load_champsim(path, max_instructions=300)
        assert len(back) == 300

    def test_name_defaults_to_stem(self, tmp_path):
        trace = load_workload("fp_01", 200).trace
        path = tmp_path / "mystem.bin"
        dump_champsim(trace, path)
        assert load_champsim(path).name == "mystem"
        assert load_champsim(path, name="given").name == "given"


class TestBranchClassInference:
    @pytest.mark.parametrize(
        "branch_class",
        [
            BranchClass.COND_DIRECT,
            BranchClass.UNCOND_DIRECT,
            BranchClass.CALL_DIRECT,
            BranchClass.CALL_INDIRECT,
            BranchClass.INDIRECT,
            BranchClass.RETURN,
        ],
    )
    def test_every_class_roundtrips(self, tmp_path, branch_class):
        from repro.isa import Trace, TraceEntry

        taken = True
        target = 0x2000
        entries = [
            TraceEntry(0x1000, branch_class, taken, target),
            TraceEntry(target),
        ]
        trace = Trace.from_entries("one", entries)
        path = tmp_path / "one.bin"
        dump_champsim(trace, path)
        back = load_champsim(path)
        assert BranchClass(int(back.branch_classes[0])) is branch_class

    def test_truncated_file_rejected(self, tmp_path):
        """A trailing partial record is a typed format error, not silent
        tolerance — real truncated downloads must not import quietly."""
        path = tmp_path / "trunc.bin"
        # One full record plus a partial one.
        full = struct.pack("<Q B B 2B 4B 2Q 4Q", 0x1000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        path.write_bytes(full + b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="truncated"):
            load_champsim(path)

    def test_unaligned_ips_snapped(self, tmp_path):
        path = tmp_path / "unaligned.bin"
        record = struct.pack(
            "<Q B B 2B 4B 2Q 4Q", 0x1003, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
        )
        path.write_bytes(record)
        trace = load_champsim(path)
        assert int(trace.pcs[0]) == 0x1000


class TestSimulationOnImportedTrace:
    def test_imported_trace_simulates(self, tmp_path):
        from repro.core import SimConfig, simulate

        trace = load_workload("int_02", 2_000).trace
        path = tmp_path / "sim.bin"
        dump_champsim(trace, path)
        back = load_champsim(path)
        result = simulate(back, SimConfig())
        assert result.ipc > 0
