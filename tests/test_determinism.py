"""Determinism regression tests.

The whole caching and parallel-execution story rests on one invariant:
simulating the same seeded workload under the same config always produces
bit-identical results, regardless of process, hash randomization, or
global state left behind by earlier simulations.  These tests run fresh
simulations in separate subprocesses — with *different* ``PYTHONHASHSEED``
values — and assert identical metrics.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

SRC = str(Path(__file__).resolve().parent.parent / "src")

_PROBE = """
import json, sys
from repro.core import SimConfig
from repro.core.pipeline import simulate
from repro.workloads.suite import load_workload

spec = load_workload(sys.argv[1], int(sys.argv[2]))
result = simulate(spec.trace, SimConfig(), name=sys.argv[1])
print(json.dumps({
    "ipc": result.ipc,
    "cycles": result.cycles,
    "cond_mpki": result.cond_mpki,
    "uop_hit_rate": result.uop_hit_rate,
    "window": result.window,
}, sort_keys=True))
"""


def _simulate_in_subprocess(workload: str, n: int, hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    env["REPRO_SIM_CACHE"] = "0"  # force a genuinely fresh simulation
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE, workload, str(n)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


class TestCrossProcessDeterminism:
    def test_identical_metrics_across_processes_and_hashseeds(self):
        """Two fresh processes with different hash randomization must agree
        on every metric — guards against set/dict-iteration-order and
        ``hash()``-dependent simulator behavior."""
        first = _simulate_in_subprocess("int_02", 3_000, hashseed="0")
        second = _simulate_in_subprocess("int_02", 3_000, hashseed="12345")
        assert first == second

    def test_repeat_in_same_process_matches_subprocess(self):
        """An in-process simulation (after other tests may have run many
        simulations) matches a pristine subprocess — guards against hidden
        global state leaking between runs."""
        from repro.core import SimConfig
        from repro.core.pipeline import simulate
        from repro.workloads.suite import load_workload

        spec = load_workload("fp_02", 2_500)
        local = simulate(spec.trace, SimConfig(), name="fp_02")
        remote = _simulate_in_subprocess("fp_02", 2_500, hashseed="99")
        assert local.ipc == remote["ipc"]
        assert local.cycles == remote["cycles"]
        assert local.cond_mpki == remote["cond_mpki"]
        assert local.window == remote["window"]

    def test_back_to_back_simulations_identical(self):
        """Two back-to-back in-process simulations of one workload are
        bit-identical (the simulator holds no cross-run mutable state)."""
        from repro.core import SimConfig
        from repro.core.pipeline import simulate
        from repro.workloads.suite import load_workload

        a = simulate(load_workload("srv_02", 2_000).trace, SimConfig(), name="s")
        b = simulate(load_workload("srv_02", 2_000).trace, SimConfig(), name="s")
        assert a.window == b.window
        assert a.cycles == b.cycles


def _trace_columns(trace) -> tuple:
    return (
        trace.pcs.tobytes(),
        trace.branch_classes.tobytes(),
        trace.takens.tobytes(),
        trace.targets.tobytes(),
    )


class TestGeneratorPropertyDeterminism:
    """Property-based determinism of :mod:`repro.workloads.generator`.

    The result cache, the golden fixtures, and the parallel engine all
    assume a workload's trace is a pure function of its config — for
    *every* seed, not just the suite's curated ones, and regardless of
    process-level environment such as ``REPRO_SIM_JOBS``.
    """

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_functions=st.integers(min_value=2, max_value=12),
        h2p=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_trace_is_deterministic_per_seed(self, seed, n_functions, h2p):
        from repro.workloads.generator import WorkloadConfig, generate_trace

        config = WorkloadConfig(
            name="prop",
            seed=seed,
            n_instructions=600,
            n_functions=n_functions,
            h2p_fraction=h2p,
        )
        first = generate_trace(config)
        second = generate_trace(config)
        assert _trace_columns(first) == _trace_columns(second)
        # A different seed must not silently alias onto the same program.
        other = generate_trace(replace(config, seed=seed + 1))
        assert len(other) == len(first)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_trace_stable_across_sim_jobs_env(self, seed):
        """REPRO_SIM_JOBS steers the parallel engine only — generation
        must be bit-identical whatever the env says."""
        from repro.workloads.generator import WorkloadConfig, generate_trace

        config = WorkloadConfig(name="prop", seed=seed, n_instructions=500)
        saved = os.environ.get("REPRO_SIM_JOBS")
        try:
            os.environ["REPRO_SIM_JOBS"] = "1"
            serial = generate_trace(config)
            os.environ["REPRO_SIM_JOBS"] = "8"
            fanned = generate_trace(config)
        finally:
            if saved is None:
                os.environ.pop("REPRO_SIM_JOBS", None)
            else:
                os.environ["REPRO_SIM_JOBS"] = saved
        assert _trace_columns(serial) == _trace_columns(fanned)
        assert np.array_equal(serial.next_pcs, fanned.next_pcs)
