"""Determinism regression tests.

The whole caching and parallel-execution story rests on one invariant:
simulating the same seeded workload under the same config always produces
bit-identical results, regardless of process, hash randomization, or
global state left behind by earlier simulations.  These tests run fresh
simulations in separate subprocesses — with *different* ``PYTHONHASHSEED``
values — and assert identical metrics.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

_PROBE = """
import json, sys
from repro.core import SimConfig
from repro.core.pipeline import simulate
from repro.workloads.suite import load_workload

spec = load_workload(sys.argv[1], int(sys.argv[2]))
result = simulate(spec.trace, SimConfig(), name=sys.argv[1])
print(json.dumps({
    "ipc": result.ipc,
    "cycles": result.cycles,
    "cond_mpki": result.cond_mpki,
    "uop_hit_rate": result.uop_hit_rate,
    "window": result.window,
}, sort_keys=True))
"""


def _simulate_in_subprocess(workload: str, n: int, hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    env["REPRO_SIM_CACHE"] = "0"  # force a genuinely fresh simulation
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE, workload, str(n)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


class TestCrossProcessDeterminism:
    def test_identical_metrics_across_processes_and_hashseeds(self):
        """Two fresh processes with different hash randomization must agree
        on every metric — guards against set/dict-iteration-order and
        ``hash()``-dependent simulator behavior."""
        first = _simulate_in_subprocess("int_02", 3_000, hashseed="0")
        second = _simulate_in_subprocess("int_02", 3_000, hashseed="12345")
        assert first == second

    def test_repeat_in_same_process_matches_subprocess(self):
        """An in-process simulation (after other tests may have run many
        simulations) matches a pristine subprocess — guards against hidden
        global state leaking between runs."""
        from repro.core import SimConfig
        from repro.core.pipeline import simulate
        from repro.workloads.suite import load_workload

        spec = load_workload("fp_02", 2_500)
        local = simulate(spec.trace, SimConfig(), name="fp_02")
        remote = _simulate_in_subprocess("fp_02", 2_500, hashseed="99")
        assert local.ipc == remote["ipc"]
        assert local.cycles == remote["cycles"]
        assert local.cond_mpki == remote["cond_mpki"]
        assert local.window == remote["window"]

    def test_back_to_back_simulations_identical(self):
        """Two back-to-back in-process simulations of one workload are
        bit-identical (the simulator holds no cross-run mutable state)."""
        from repro.core import SimConfig
        from repro.core.pipeline import simulate
        from repro.workloads.suite import load_workload

        a = simulate(load_workload("srv_02", 2_000).trace, SimConfig(), name="s")
        b = simulate(load_workload("srv_02", 2_000).trace, SimConfig(), name="s")
        assert a.window == b.window
        assert a.cycles == b.cycles
