"""Integration tests for the ingestion frontend and trace store.

Covers the acceptance path of the real-trace feature: a golden sample
converted via the CLI becomes a first-class workload whose simulation
results are bit-identical across runs, shared through the same result
cache the CLI and serve paths use, and keyed by trace *content* rather
than name.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.analysis.runner as runner
from repro.cli import main
from repro.core import SimConfig
from repro.isa import TraceFormatError, load_any, normalize_trace
from repro.workloads import load_workload
from repro.workloads.store import (
    cache_token,
    ingest_trace,
    ingested_names,
    is_ingested,
    load_ingested,
    resolve_meta,
)

GOLDEN = Path(__file__).parent / "golden" / "traces"


class TestLoadAny:
    @pytest.mark.parametrize(
        "filename", ["dc300.champsim.bin.gz", "dc300.cvp.gz", "dc300.rv.gz"]
    )
    def test_golden_samples_ingest_identically(self, filename):
        """All three encodings of the same trace normalise to one stream."""
        result = load_any(GOLDEN / filename)
        result.trace.validate()
        reference = load_any(GOLDEN / "dc300.cvp.gz").trace
        assert (result.trace.next_pcs == reference.next_pcs).all()

    def test_normalize_is_idempotent(self):
        first, report = normalize_trace(load_any(GOLDEN / "branchy.cvp").trace)
        second, report2 = normalize_trace(first)
        assert report2.clean
        assert (second.pcs == first.pcs).all()
        assert (second.takens == first.takens).all()

    def test_max_instructions(self):
        result = load_any(GOLDEN / "dc300.cvp.gz", max_instructions=100)
        assert len(result.trace) == 100


class TestStore:
    def test_ingest_resolve_load(self, trace_store, branchy_trace):
        meta = ingest_trace(branchy_trace, "tiny", "text", source_path="x.txt")
        assert is_ingested("tiny")
        assert ingested_names() == ["tiny"]
        assert resolve_meta("tiny").instructions == len(branchy_trace)
        loaded = load_ingested("tiny")
        assert (loaded.pcs == branchy_trace.pcs).all()
        assert meta.digest == resolve_meta("tiny").digest

    def test_prefix_load_clamps(self, trace_store, branchy_trace):
        ingest_trace(branchy_trace, "tiny", "text")
        assert len(load_ingested("tiny", 5)) == 5
        assert len(load_ingested("tiny", 10_000)) == len(branchy_trace)

    def test_suite_names_are_protected(self, trace_store, branchy_trace):
        with pytest.raises(ValueError, match="shadows"):
            ingest_trace(branchy_trace, "srv_01", "text")

    def test_bad_names_rejected(self, trace_store, branchy_trace):
        for bad in ("", "a b", "x/y", "née"):
            with pytest.raises(ValueError, match="invalid"):
                ingest_trace(branchy_trace, bad, "text")

    def test_unknown_name_raises_keyerror(self, trace_store):
        with pytest.raises(KeyError):
            load_ingested("ghost")

    def test_tampered_npz_detected(self, trace_store, branchy_trace, sample_trace):
        ingest_trace(branchy_trace, "tiny", "text")
        # Overwrite the stored npz with a different trace behind the
        # manifest's back: the digest check must refuse it.
        sample_trace.save(trace_store / "tiny.npz")
        with pytest.raises(TraceFormatError, match="digest"):
            load_ingested("tiny")

    def test_corrupt_manifest_is_typed(self, trace_store, branchy_trace):
        ingest_trace(branchy_trace, "tiny", "text")
        (trace_store / "manifest.json").write_text("{nope")
        with pytest.raises(TraceFormatError, match="manifest"):
            load_ingested("tiny")

    def test_cache_token_tracks_content(self, trace_store, branchy_trace, sample_trace):
        assert cache_token("srv_01") == "srv_01"  # builtins: name only
        ingest_trace(branchy_trace, "tiny", "text")
        first = cache_token("tiny")
        assert first.startswith("tiny@")
        ingest_trace(sample_trace, "tiny", "text")  # different content
        assert cache_token("tiny") != first

    def test_load_workload_resolves_store(self, trace_store, branchy_trace):
        ingest_trace(branchy_trace, "tiny", "text")
        spec = load_workload("tiny")
        assert spec.name == "tiny"
        assert len(spec.trace) == len(branchy_trace)


class TestEndToEnd:
    """The PR's acceptance flow: convert -> simulate -> metrics, twice,
    bit-identically, through one shared result cache."""

    @pytest.fixture()
    def converted(self, trace_store, cache_dir):
        code = main(
            [
                "ingest", "convert", str(GOLDEN / "dc300.cvp.gz"),
                "--name", "golden-dc",
            ]
        )
        assert code == 0
        return "golden-dc"

    def test_convert_then_simulate_bit_identical(self, converted, capsys):
        assert main(["simulate", converted, "--instructions", "300"]) == 0
        first = capsys.readouterr().out
        assert main(["simulate", converted, "--instructions", "300"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "IPC" in first

    def test_cli_run_shares_cache_with_engine(self, converted, cache_dir):
        result = runner.run_cached("golden-dc", SimConfig(), 300)
        entries = list(cache_dir.glob("*.pkl"))
        assert len(entries) == 1
        # The engine path hits the same key: no new entry, same object.
        runner._memory_cache.clear()
        again = runner.run_cached("golden-dc", SimConfig(), 300)
        assert list(cache_dir.glob("*.pkl")) == entries
        assert again.ipc == result.ipc
        assert again.cycles == result.cycles

    def test_metrics_json_has_characterization(self, converted, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(
            [
                "metrics", converted, "--instructions", "300",
                "--json", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        block = payload["characterization"]
        assert block["instructions"] == 300
        assert block["branch_pki"] > 0

    def test_characterize_includes_ingested(self, converted, capsys):
        assert main(
            ["ingest", "characterize", "--instructions", "300", "--no-simulate"]
        ) == 0
        out = capsys.readouterr().out
        assert "golden-dc" in out

    def test_inspect_reports_format(self, capsys):
        assert main(["ingest", "inspect", str(GOLDEN / "dc300.rv.gz")]) == 0
        out = capsys.readouterr().out
        assert "riscv" in out

    def test_convert_rejects_corrupt_input(self, trace_store, tmp_path, capsys):
        bad = tmp_path / "bad.cvp"
        bad.write_bytes(b"\xff" * 40)
        assert main(["ingest", "convert", str(bad), "--name", "nope"]) == 1
        assert not is_ingested("nope")
