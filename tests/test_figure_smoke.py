"""One smoke test per registered paper figure/table.

``tests/test_experiments.py`` exercises each driver's *semantics* at a
small scale; this file guards the *registry path* instead: every entry in
``experiments.registry.EXPERIMENTS`` must run end-to-end through
``run_experiment`` (the exact code path of ``repro experiment NAME``) at a
micro scale, and render non-empty text.  Adding a figure module without
registering it, or breaking a driver's run/render contract, fails here.
"""

import pytest

from repro.experiments.common import Scale
from repro.experiments.registry import EXPERIMENTS, run_experiment

#: Two workloads so geomeans/selections are non-degenerate; short traces
#: keep the whole parametrized sweep CI-friendly.
MICRO = Scale("micro", ("srv_04", "int_02"), 2_500)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs_via_registry(name):
    result, rendered = run_experiment(name, MICRO)
    assert result is not None
    assert isinstance(rendered, str)
    assert rendered.strip(), f"{name} rendered empty output"


def test_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError):
        run_experiment("fig99", MICRO)
