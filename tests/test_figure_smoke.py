"""One smoke test per registered paper figure/table.

``tests/test_experiments.py`` exercises each driver's *semantics* at a
small scale; this file guards the *registry path* instead: every entry in
``experiments.registry.EXPERIMENTS`` must run end-to-end through
``run_experiment`` (the exact code path of ``repro experiment NAME``) at a
micro scale, and render non-empty text.  Adding a figure module without
registering it, or breaking a driver's run/render contract, fails here.

It also carries the idle-skip equivalence sweep: every configuration
family the figures exercise, simulated with event-driven idle-cycle
skipping on and off, must produce identical final stats.  The sweep
calls :func:`simulate` directly rather than going through ``run_cached``
— the result cache is keyed on (workload, config) only, so a cached path
would silently collapse the two modes and make the test vacuous.
"""

from dataclasses import replace

import pytest

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import simulate
from repro.experiments.common import Scale
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.verify.differential import oracle_configs
from repro.workloads import load_workload

#: Two workloads so geomeans/selections are non-degenerate; short traces
#: keep the whole parametrized sweep CI-friendly.
MICRO = Scale("micro", ("srv_04", "int_02"), 2_500)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs_via_registry(name):
    result, rendered = run_experiment(name, MICRO)
    assert result is not None
    assert isinstance(rendered, str)
    assert rendered.strip(), f"{name} rendered empty output"


def test_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError):
        run_experiment("fig99", MICRO)


def _skip_sweep_configs() -> dict[str, SimConfig]:
    """The oracle spread plus the UCP flavours the figure drivers add."""
    configs = dict(oracle_configs())
    base = SimConfig()
    configs["ucp-noind"] = replace(
        base, ucp=UCPConfig(enabled=True, use_indirect=False)
    )
    configs["ucp-shared-decoders"] = replace(
        base, ucp=UCPConfig(enabled=True, shared_decoders=True)
    )
    configs["ucp-ideal-btb"] = replace(
        base, ucp=UCPConfig(enabled=True, ideal_btb_banking=True)
    )
    configs["ucp-tage-conf"] = replace(
        base, ucp=UCPConfig(enabled=True, confidence="tage")
    )
    configs["djolt"] = replace(base, l1i_prefetcher="djolt")
    return configs


#: Every datacenter-suite member must hold up under the PR 2 oracle: the
#: commit stream (and hence committed-instruction semantics) must be
#: identical across the whole configuration spread.
DC_WORKLOADS = (
    "dc_call_01", "dc_call_02",
    "dc_interp_01", "dc_interp_02",
    "dc_mega_01", "dc_mega_02",
)


@pytest.mark.parametrize("workload", DC_WORKLOADS)
def test_dc_workloads_pass_timing_independence_oracle(workload):
    from repro.verify.differential import check_timing_independence

    check_timing_independence(workload, 2_000)


@pytest.mark.parametrize("workload", DC_WORKLOADS)
def test_dc_workloads_run_registry_experiment(workload):
    """Each dc member runs end-to-end through the registry path."""
    scale = Scale("dc-micro", (workload, "int_02"), 2_000)
    result, rendered = run_experiment("fig02", scale)
    assert result is not None
    assert workload in rendered


@pytest.mark.parametrize("label", sorted(_skip_sweep_configs()))
def test_idle_skip_equivalence(label):
    """Skipping on vs off: identical cycles and identical final stats."""
    config = _skip_sweep_configs()[label]
    trace = load_workload("srv_04", 2_500).trace
    with_skip = simulate(trace, config, name="skip-on", idle_skip=True)
    without_skip = simulate(trace, config, name="skip-off", idle_skip=False)
    assert with_skip.cycles == without_skip.cycles, label
    assert with_skip.window == without_skip.window, label
    assert with_skip.window_cycles == without_skip.window_cycles, label
