"""Tests for the text trace format."""

import pytest

from repro.isa.textio import dump_text, load_text
from repro.workloads import load_workload


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path, sample_trace):
        trace = sample_trace
        path = tmp_path / "t.txt"
        dump_text(trace, path)
        loaded = load_text(path)
        assert loaded.name == "sample"
        assert len(loaded) == len(trace)
        assert (loaded.pcs == trace.pcs).all()
        assert (loaded.branch_classes == trace.branch_classes).all()
        assert (loaded.takens == trace.takens).all()
        assert (loaded.targets == trace.targets).all()

    def test_generated_workload_roundtrip(self, tmp_path):
        trace = load_workload("fp_01", 1_500).trace
        path = tmp_path / "fp.txt"
        dump_text(trace, path)
        loaded = load_text(path)
        loaded.validate()
        assert (loaded.next_pcs == trace.next_pcs).all()

    def test_name_override(self, tmp_path, sample_trace):
        path = tmp_path / "t.txt"
        dump_text(sample_trace, path)
        assert load_text(path, name="renamed").name == "renamed"

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "stemname.txt"
        path.write_text("0x1000 NOT_BRANCH 0 0x0\n")
        assert load_text(path).name == "stemname"


class TestParsing:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(
            "# a comment\n\n0x1000 NOT_BRANCH 0 0x0\n\n# another\n0x1004 NOT_BRANCH 0 0x0\n"
        )
        assert len(load_text(path)) == 2

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0x1000 NOT_BRANCH 0\n")
        with pytest.raises(ValueError, match="expected 4 fields"):
            load_text(path)

    def test_bad_branch_class(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0x1000 BOGUS 0 0x0\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_bad_pc(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("zzz NOT_BRANCH 0 0x0\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("4096 NOT_BRANCH 0 0\n")
        trace = load_text(path)
        assert int(trace.pcs[0]) == 4096
