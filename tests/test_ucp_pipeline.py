"""White-box tests of the UCP prefetch pipeline stages."""

from dataclasses import replace

from repro.caches.uopcache import UopCacheEntry
from repro.core import SimConfig, Simulator
from repro.core.configs import UCPConfig
from repro.core.ucp import PendingEntry
from repro.workloads import load_workload


def make_sim(**ucp_overrides) -> Simulator:
    trace = load_workload("int_03", 4_000).trace
    config = replace(SimConfig(), ucp=UCPConfig(enabled=True, **ucp_overrides))
    return Simulator(trace, config)


def pending(pc=0x5000, trigger=0) -> PendingEntry:
    return PendingEntry(UopCacheEntry(pc, 4, pc + 16, from_prefetch=True), trigger, pc // 64)


class TestTagCheckStage:
    def test_bank_conflict_delays(self):
        sim = make_sim()
        engine = sim.ucp
        entry = pending()
        engine.alt_ftq.append(entry)
        bank = sim.uop_cache.bank_of(entry.entry.start_pc)
        sim.fetch.uop_banks_used.add(bank)
        engine._tick_tag_check(cycle=0)
        assert entry.delay == 1
        assert sim.stats["ucp_tagcheck_conflicts"] == 1
        assert engine.alt_ftq  # still queued

    def test_conflict_saturation_lets_alt_win(self):
        sim = make_sim()
        engine = sim.ucp
        entry = pending()
        entry.delay = 7  # saturated 3-bit counter
        engine.alt_ftq.append(entry)
        sim.fetch.uop_banks_used.add(sim.uop_cache.bank_of(entry.entry.start_pc))
        engine._tick_tag_check(cycle=0)
        assert not engine.alt_ftq  # proceeded despite the conflict

    def test_present_entries_filtered(self):
        sim = make_sim()
        engine = sim.ucp
        entry = pending()
        sim.uop_cache.insert(UopCacheEntry(entry.entry.start_pc, 4, 0))
        engine.alt_ftq.append(entry)
        engine._tick_tag_check(cycle=0)
        assert sim.stats["ucp_filtered_present"] == 1
        assert not engine.mshr

    def test_mshr_backpressure(self):
        sim = make_sim(mshr_entries=1)
        engine = sim.ucp
        engine.mshr.append(pending(0x9000))
        entry = pending()
        engine.alt_ftq.append(entry)
        engine._tick_tag_check(cycle=0)
        assert sim.stats["ucp_mshr_full"] == 1
        assert engine.alt_ftq[0] is entry  # retried later

    def test_till_l1i_skips_decode_path(self):
        sim = make_sim(till_l1i_only=True)
        engine = sim.ucp
        engine.alt_ftq.append(pending())
        engine._tick_tag_check(cycle=0)
        assert sim.stats["ucp_l1i_prefetches"] == 1
        assert not engine.mshr
        assert not engine.decode_queue

    def test_l1i_resident_line_ready_quickly(self):
        sim = make_sim()
        engine = sim.ucp
        entry = pending()
        sim.hierarchy.l1i.allocate(entry.entry.start_pc)
        engine.alt_ftq.append(entry)
        engine._tick_tag_check(cycle=10)
        assert entry in engine.decode_queue
        assert entry.ready_cycle == 10 + sim.hierarchy.config.l1i.hit_latency


class TestDecodeStage:
    def test_decode_inserts_entry(self):
        sim = make_sim()
        engine = sim.ucp
        entry = pending()
        entry.ready_cycle = 0
        engine.decode_queue.append(entry)
        engine._tick_decode(cycle=5)
        assert sim.uop_cache.probe(entry.entry.start_pc)
        assert sim.stats["ucp_entries_prefetched"] == 1

    def test_decode_width_bounds_throughput(self):
        sim = make_sim(alt_decode_width=6)
        engine = sim.ucp
        entries = [pending(0x5000 + 64 * i) for i in range(3)]
        for entry in entries:
            entry.ready_cycle = 0
            engine.decode_queue.append(entry)
        engine._tick_decode(cycle=1)
        # 6 µ-op budget: one full 4-µop entry plus part of the next.
        assert sim.stats["ucp_entries_prefetched"] == 1
        engine._tick_decode(cycle=2)
        assert sim.stats["ucp_entries_prefetched"] >= 2

    def test_shared_decoders_yield_to_demand(self):
        sim = make_sim(shared_decoders=True)
        engine = sim.ucp
        entry = pending()
        entry.ready_cycle = 0
        engine.decode_queue.append(entry)
        sim.fetch.decoders_busy_this_cycle = True
        engine._tick_decode(cycle=1)
        assert sim.stats["ucp_entries_prefetched"] == 0
        sim.fetch.decoders_busy_this_cycle = False
        engine._tick_decode(cycle=2)
        assert sim.stats["ucp_entries_prefetched"] == 1

    def test_unready_line_blocks_stateful_decode(self):
        sim = make_sim()
        sim.config = replace(sim.config, isa_stateful_decode=True)
        sim.ucp.config = sim.config
        engine = sim.ucp
        late = pending(0x5000)
        late.ready_cycle = 100
        ready = pending(0x6000)
        ready.ready_cycle = 0
        engine.decode_queue.append(late)
        engine.decode_queue.append(ready)
        engine._tick_decode(cycle=5)
        # Head-of-line blocking: the ready younger entry must wait.
        assert sim.stats["ucp_entries_prefetched"] == 0

    def test_unready_line_skipped_in_stateless_decode(self):
        sim = make_sim()
        engine = sim.ucp
        late = pending(0x5000)
        late.ready_cycle = 100
        ready = pending(0x6000)
        ready.ready_cycle = 0
        engine.decode_queue.append(late)
        engine.decode_queue.append(ready)
        engine._tick_decode(cycle=5)
        assert sim.stats["ucp_entries_prefetched"] == 1

    def test_decode_queue_capacity_drops(self):
        sim = make_sim(alt_decode_entries=1)
        engine = sim.ucp
        engine.decode_queue.append(pending(0x7000))
        overflow = pending(0x8000)
        engine.mshr.append(overflow)
        engine._to_decode(overflow)
        assert sim.stats["ucp_decode_queue_drops"] == 1
        assert overflow not in engine.mshr


class TestWalkStops:
    def test_unknown_code_stops(self):
        sim = make_sim()
        engine = sim.ucp
        engine.active = True
        engine._walk_pc = 0xDEAD000  # never recorded in the codemap
        engine._tick_walk(cycle=0)
        assert not engine.active
        assert sim.stats["ucp_stop_unknown_code"] == 1

    def test_no_branch_guard(self):
        sim = make_sim(max_instructions_without_branch=4)
        engine = sim.ucp
        # Teach the codemap a long straight-line run.
        for i in range(64):
            sim.codemap.record(0x40000 + 4 * i, 0)
        engine.active = True
        engine.trigger_index = 0
        engine._walk_pc = 0x40000
        for cycle in range(16):
            if not engine.active:
                break
            engine._tick_walk(cycle)
        assert not engine.active
        assert sim.stats["ucp_stop_no_branch_guard"] == 1
