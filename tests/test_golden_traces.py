"""Golden round-trip fixtures for every binary trace container.

Tiny ChampSim / CVP-1 / RISC-V samples are checked in under
``tests/golden/traces/`` together with a manifest pinning each file's
bytes (sha256) and the column digest of the :class:`Trace` it decodes
to.  Three properties are enforced per fixture:

* **read stability** — decoding the checked-in bytes still produces the
  exact same trace columns (format drift in a reader fails here);
* **write stability** — re-encoding that trace is bit-identical to the
  checked-in file (deterministic writers, gzip ``mtime=0`` included);
* **round-trip identity** — write → read → ``Trace`` reproduces the
  columns exactly, through a fresh temp file.

Fixtures are generated from *normalized* traces, for which every reader/
writer pair is an exact inverse.  Regenerate after an intentional format
change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_traces.py

and commit the result (writers are deterministic, so regeneration is
reproducible on any machine).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.isa import Trace, normalize_trace
from repro.isa.champsim import dump_champsim, load_champsim
from repro.isa.cvp import dump_cvp, load_cvp
from repro.isa.riscv import dump_riscv, load_riscv
from repro.workloads import load_workload
from tests.conftest import build_branchy_trace

GOLDEN_DIR = Path(__file__).parent / "golden" / "traces"
MANIFEST = GOLDEN_DIR / "manifest.json"

_IO = {
    "champsim": (dump_champsim, load_champsim),
    "cvp": (dump_cvp, load_cvp),
    "riscv": (dump_riscv, load_riscv),
}


def _source_traces() -> dict[str, Trace]:
    """The canonical sample traces fixtures are built from."""
    branchy = build_branchy_trace()
    dc_slice = load_workload("dc_interp_01", 300).trace
    return {
        "branchy": normalize_trace(branchy)[0],
        "dc300": normalize_trace(dc_slice)[0],
    }


#: fixture file name -> (source trace key, format)
FIXTURES = {
    "branchy.champsim.bin": ("branchy", "champsim"),
    "branchy.cvp": ("branchy", "cvp"),
    "branchy.rv": ("branchy", "riscv"),
    "dc300.champsim.bin.gz": ("dc300", "champsim"),
    "dc300.cvp.gz": ("dc300", "cvp"),
    "dc300.rv.gz": ("dc300", "riscv"),
}


def _column_digest(trace: Trace) -> str:
    digest = hashlib.sha256()
    digest.update(len(trace).to_bytes(8, "little"))
    digest.update(trace.pcs.tobytes())
    digest.update(trace.branch_classes.tobytes())
    digest.update(trace.takens.tobytes())
    digest.update(trace.targets.tobytes())
    return digest.hexdigest()


def _load(filename: str, path: Path) -> Trace:
    _, fmt = FIXTURES[filename]
    return _IO[fmt][1](path)


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    sources = _source_traces()
    manifest: dict[str, dict[str, object]] = {}
    for filename, (source, fmt) in sorted(FIXTURES.items()):
        trace = sources[source]
        path = GOLDEN_DIR / filename
        _IO[fmt][0](trace, path)
        manifest[filename] = {
            "format": fmt,
            "instructions": len(trace),
            "file_sha256": hashlib.sha256(path.read_bytes()).hexdigest(),
            "trace_digest": _column_digest(trace),
        }
    MANIFEST.write_text(json.dumps({"schema": 1, "fixtures": manifest}, indent=2) + "\n")


@pytest.fixture(scope="module")
def manifest() -> dict:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        _regenerate()
    assert MANIFEST.exists(), (
        "missing golden trace fixtures — regenerate with REPRO_REGEN_GOLDEN=1"
    )
    data = json.loads(MANIFEST.read_text())
    assert data["schema"] == 1
    return data["fixtures"]


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_checked_in_file_unmodified(manifest, filename):
    path = GOLDEN_DIR / filename
    assert path.exists(), f"missing fixture {filename}"
    assert (
        hashlib.sha256(path.read_bytes()).hexdigest()
        == manifest[filename]["file_sha256"]
    ), f"{filename} bytes drifted from the manifest"


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_read_stability(manifest, filename):
    """Decoding the checked-in bytes reproduces the pinned trace columns."""
    trace = _load(filename, GOLDEN_DIR / filename)
    trace.validate()
    assert len(trace) == manifest[filename]["instructions"]
    assert _column_digest(trace) == manifest[filename]["trace_digest"], (
        f"{filename}: reader output drifted — format change? If "
        f"intentional, REPRO_REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_write_stability(manifest, filename, tmp_path):
    """Re-encoding the decoded trace is bit-identical to the fixture."""
    _, fmt = FIXTURES[filename]
    trace = _load(filename, GOLDEN_DIR / filename)
    fresh = tmp_path / filename
    _IO[fmt][0](trace, fresh)
    assert fresh.read_bytes() == (GOLDEN_DIR / filename).read_bytes(), (
        f"{filename}: writer output is not deterministic/bit-identical"
    )


@pytest.mark.parametrize("filename", sorted(FIXTURES))
def test_round_trip_identity(filename, tmp_path):
    """write -> read -> Trace is exact for normalized traces."""
    _, fmt = FIXTURES[filename]
    dump, load = _IO[fmt]
    original = _load(filename, GOLDEN_DIR / filename)
    path = tmp_path / f"rt-{filename}"
    dump(original, path)
    back = load(path)
    assert (back.pcs == original.pcs).all()
    assert (back.branch_classes == original.branch_classes).all()
    assert (back.takens == original.takens).all()
    assert (back.targets == original.targets).all()


def test_manifest_covers_exactly_the_fixture_files(manifest):
    assert set(manifest) == set(FIXTURES)
    on_disk = {p.name for p in GOLDEN_DIR.iterdir() if p.name != "manifest.json"}
    assert on_disk == set(FIXTURES), "stray or missing files in golden/traces"
