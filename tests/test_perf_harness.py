"""Tests for the performance layer: profiler, idle-skip, BENCH schema.

Covers the three legs of the perf tooling added with the hot-path
optimization work:

* :mod:`repro.analysis.profile` — the component rows must partition the
  run's wall time (sum + residual == total) and profiling must not
  change simulation results;
* event-driven idle-cycle skipping — on a hand-built stall-heavy
  scenario the clock must actually jump, and the skipped run must be
  bit-identical to the unskipped one;
* the ``benchmarks/perf`` BENCH_sim payload — schema validation and the
  regression-gate comparison logic.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.profile import profile_run
from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import Simulator, simulate
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace
from repro.workloads import load_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_lib():
    """Import benchmarks/perf/perf_bench_lib.py by path (not a package)."""
    path = REPO_ROOT / "benchmarks" / "perf" / "perf_bench_lib.py"
    spec = importlib.util.spec_from_file_location("perf_bench_lib", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Profiler accounting
# ----------------------------------------------------------------------


class TestProfiler:
    def test_components_partition_wall_time(self):
        trace = load_workload("int_02", 2_500).trace
        report = profile_run(trace, SimConfig())
        assert report.total_seconds > 0
        for row in report.components.values():
            assert row.seconds >= 0.0
            assert row.calls > 0
        # The rows are timed at their single call sites in Simulator.run,
        # so they can never exceed the run's wall time...
        assert report.accounted_seconds <= report.total_seconds
        # ...and with the clamped residual they sum to it exactly.
        assert report.accounted_seconds + report.other_seconds == pytest.approx(
            report.total_seconds
        )

    def test_component_rows_match_configuration(self):
        trace = load_workload("int_02", 2_000).trace
        plain = profile_run(trace, SimConfig())
        assert {"backend_commit", "backend_dispatch", "fetch", "bpu"} <= set(
            plain.components
        )
        assert "ucp_walker" not in plain.components  # no UCP engine
        assert "checker" not in plain.components  # sanitizer off

        ucp = profile_run(
            trace, SimConfig(ucp=UCPConfig(enabled=True)), check=True
        )
        assert "ucp_walker" in ucp.components
        assert "checker" in ucp.components
        assert ucp.components["ucp_walker"].calls > 0

    def test_profiling_does_not_change_results(self):
        trace = load_workload("fp_01", 2_500).trace
        config = SimConfig()
        plain = simulate(trace, config)
        profiled = profile_run(trace, config)
        assert profiled.result.cycles == plain.cycles
        assert profiled.result.window == plain.window

    def test_report_serialization_round_trips(self):
        trace = load_workload("fp_01", 1_500).trace
        report = profile_run(trace, SimConfig())
        payload = json.loads(report.to_json())
        assert payload["instructions"] == 1_500
        assert payload["cycles"] == report.result.cycles
        assert set(payload["components"]) == set(report.components)
        assert payload["instructions_per_second"] > 0
        rendered = report.render()
        assert "wall time" in rendered
        for key in report.components:
            assert key in rendered


# ----------------------------------------------------------------------
# Idle-cycle skipping on a hand-built stall scenario
# ----------------------------------------------------------------------


def _straight_line_trace(n: int, start_pc: int = 0x40_0000) -> Trace:
    """``n`` sequential non-branch instructions over never-seen code.

    Every fetch block runs cold through the L1I, so the frontend spends
    most cycles waiting on fixed-latency fills — the canonical scenario
    the idle-skip analysis is built for.
    """
    pcs = start_pc + 4 * np.arange(n, dtype=np.int64)
    classes = np.full(n, int(BranchClass.NOT_BRANCH), dtype=np.uint8)
    takens = np.zeros(n, dtype=bool)
    targets = np.zeros(n, dtype=np.int64)
    return Trace("straight-line", pcs, classes, takens, targets)


class TestIdleSkip:
    def test_skips_on_stall_heavy_trace(self):
        trace = _straight_line_trace(1_200)
        sim = Simulator(trace, SimConfig(), idle_skip=True)
        sim.run()
        assert sim.skip_events > 0
        assert sim.skipped_cycles > 0

    def test_skipped_run_is_bit_identical(self):
        trace = _straight_line_trace(1_200)
        config = SimConfig()
        skipping = Simulator(trace, config, idle_skip=True)
        with_skip = skipping.run()
        plodding = Simulator(trace, config, idle_skip=False)
        without_skip = plodding.run()
        assert plodding.skip_events == 0
        assert with_skip.cycles == without_skip.cycles
        assert with_skip.window == without_skip.window
        # The skipped run executed strictly fewer loop iterations.
        assert skipping.skipped_cycles > 0

    def test_skip_telemetry_stays_out_of_stats(self):
        """Jump counters are Simulator attributes, not windowed stats —
        results must not mention skipping in any reported counter."""
        trace = _straight_line_trace(800)
        sim = Simulator(trace, SimConfig(), idle_skip=True)
        result = sim.run()
        assert sim.skip_events > 0
        assert not any("skip" in key for key in result.window)


# ----------------------------------------------------------------------
# BENCH_sim schema and the regression gate
# ----------------------------------------------------------------------


class TestBenchSchema:
    @pytest.fixture(scope="class")
    def lib(self):
        return _load_bench_lib()

    @pytest.fixture(scope="class")
    def payload(self, lib):
        return lib.run_bench(repeats=1)

    def test_run_bench_produces_valid_payload(self, lib, payload):
        lib.validate_bench(payload)  # raises on any schema violation
        assert payload["n_instructions"] == lib.N_INSTRUCTIONS
        assert set(payload["configs"]) == set(lib.pinned_cases())
        for row in payload["configs"].values():
            assert row["instr_per_sec"] > 0
            assert row["normalized_instr_per_sec"] == pytest.approx(
                row["instr_per_sec"] / payload["calibration_ops_per_sec"]
            )

    def test_validate_rejects_malformed_payloads(self, lib, payload):
        missing = copy.deepcopy(payload)
        del missing["calibration_ops_per_sec"]
        with pytest.raises(ValueError, match="calibration_ops_per_sec"):
            lib.validate_bench(missing)

        wrong_schema = copy.deepcopy(payload)
        wrong_schema["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            lib.validate_bench(wrong_schema)

        unstamped = copy.deepcopy(payload)
        del unstamped["environment"]
        with pytest.raises(ValueError, match="environment"):
            lib.validate_bench(unstamped)

        stale = copy.deepcopy(payload)
        del stale["environment"]
        stale["schema"] = 1
        with pytest.raises(ValueError, match="regenerate"):
            lib.validate_bench(stale)

        short = copy.deepcopy(payload)
        short["configs"].popitem()
        with pytest.raises(ValueError, match="pinned subset"):
            lib.validate_bench(short)

        negative = copy.deepcopy(payload)
        key = next(iter(negative["configs"]))
        negative["configs"][key]["wall_seconds"] = 0.0
        with pytest.raises(ValueError, match="positive"):
            lib.validate_bench(negative)

    def test_compare_bench_gates_on_geomean(self, lib, payload):
        ok, report = lib.compare_bench(payload, payload)
        assert ok
        assert "geomean" in report

        slow = copy.deepcopy(payload)
        for row in slow["configs"].values():
            row["normalized_instr_per_sec"] *= 0.5
        slow["geomean_normalized"] *= 0.5
        ok, report = lib.compare_bench(payload, slow, tolerance=0.25)
        assert not ok
        assert "REGRESSION" in report

        # A regression smaller than the tolerance passes.
        mild = copy.deepcopy(payload)
        for row in mild["configs"].values():
            row["normalized_instr_per_sec"] *= 0.9
        mild["geomean_normalized"] *= 0.9
        ok, _ = lib.compare_bench(payload, mild, tolerance=0.25)
        assert ok

    def test_committed_baseline_is_valid(self, lib):
        baseline = json.loads(lib.BASELINE_PATH.read_text())
        lib.validate_bench(baseline)
