"""Integration tests for the full cycle-level simulator."""

from dataclasses import replace

import pytest

from repro.core import SimConfig, Simulator, simulate
from repro.core.configs import UCPConfig
from repro.workloads import load_workload


def quick(name="int_02", n=8_000):
    return load_workload(name, n).trace


class TestBasicExecution:
    def test_commits_everything(self):
        trace = quick()
        result = simulate(trace, SimConfig())
        assert result.instructions == len(trace)
        assert result.cycles > 0
        assert 0.05 < result.ipc < 8.0

    def test_deterministic(self):
        trace = quick()
        a = simulate(trace, SimConfig())
        b = simulate(trace, SimConfig())
        assert a.cycles == b.cycles
        assert a.window == b.window

    def test_window_metrics_populated(self):
        result = simulate(quick(), SimConfig())
        assert result.window_instructions > 0
        assert result.window_cycles > 0
        assert result.window.get("cond_branches", 0) > 0
        assert 0 <= result.uop_hit_rate <= 100
        assert result.cond_mpki >= 0

    def test_confidence_stats_collected(self):
        result = simulate(quick(), SimConfig())
        assert result.confidence["ucp"].stats["predictions"] > 0
        assert result.confidence["tage"].stats["predictions"] > 0


class TestConfigurations:
    def test_no_uop_cache_runs(self):
        trace = quick()
        result = simulate(trace, SimConfig().without_uop_cache())
        assert result.window.get("uops_uop", 0) == 0
        assert result.window.get("mode_switches", 0) == 0
        assert result.window.get("uops_decode", 0) > 0

    def test_ideal_uop_cache_dominates_baseline(self):
        trace = quick()
        base = simulate(trace, SimConfig())
        ideal = simulate(trace, replace(SimConfig(), ideal_uop_cache=True))
        assert ideal.ipc >= base.ipc * 0.999
        assert ideal.uop_hit_rate > 99.0

    def test_uop_cache_size_scaling_monotone_hit_rate(self):
        trace = load_workload("srv_02", 10_000).trace
        small = simulate(trace, SimConfig().with_uop_cache_kops(4))
        large = simulate(trace, SimConfig().with_uop_cache_kops(64))
        assert large.uop_hit_rate >= small.uop_hit_rate

    def test_ideal_brcond_raises_hit_rate(self):
        trace = load_workload("srv_02", 10_000).trace
        base = simulate(trace, SimConfig())
        ideal8 = simulate(trace, replace(SimConfig(), ideal_brcond_window=8))
        assert ideal8.uop_hit_rate >= base.uop_hit_rate
        assert ideal8.ipc >= base.ipc * 0.999

    def test_l1i_hits_config_raises_hit_rate(self):
        trace = load_workload("srv_02", 10_000).trace
        base = simulate(trace, SimConfig())
        l1i_hits = simulate(trace, replace(SimConfig(), l1i_hits_are_uop_hits=True))
        assert l1i_hits.uop_hit_rate > base.uop_hit_rate

    def test_mrc_runs_and_hits(self):
        trace = load_workload("srv_02", 10_000).trace
        result = simulate(trace, replace(SimConfig(), mrc_entries=256))
        # MRC is probed on every resolved misprediction.
        probes = result.window.get("mrc_hits", 0) + result.window.get("mrc_misses", 0)
        assert probes > 0

    def test_prefetcher_configs_run(self):
        trace = load_workload("srv_02", 6_000).trace
        for name in ("next_line", "fnl_mma", "djolt", "ep"):
            result = simulate(trace, replace(SimConfig(), l1i_prefetcher=name))
            assert result.ipc > 0

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(KeyError):
            simulate(quick(n=1000), replace(SimConfig(), l1i_prefetcher="bogus"))


class TestUCPIntegration:
    def test_ucp_runs_and_prefetches(self):
        trace = load_workload("srv_04", 12_000).trace
        result = simulate(trace, replace(SimConfig(), ucp=UCPConfig(enabled=True)))
        assert result.window.get("ucp_walks_started", 0) > 0
        assert result.window.get("ucp_entries_generated", 0) > 0

    def test_ucp_raises_hit_rate(self):
        trace = load_workload("srv_04", 12_000).trace
        base = simulate(trace, SimConfig())
        ucp = simulate(trace, replace(SimConfig(), ucp=UCPConfig(enabled=True)))
        assert ucp.uop_hit_rate >= base.uop_hit_rate

    def test_ucp_till_l1i_does_not_fill_uop_cache(self):
        trace = load_workload("srv_04", 12_000).trace
        result = simulate(
            trace, replace(SimConfig(), ucp=UCPConfig(enabled=True, till_l1i_only=True))
        )
        assert result.window.get("ucp_entries_prefetched", 0) == 0
        assert result.window.get("ucp_l1i_prefetches", 0) > 0

    def test_ucp_variants_all_run(self):
        trace = load_workload("int_03", 8_000).trace
        for overrides in (
            {"use_indirect": False},
            {"shared_decoders": True},
            {"ideal_btb_banking": True},
            {"confidence": "tage"},
        ):
            result = simulate(
                trace, replace(SimConfig(), ucp=UCPConfig(enabled=True, **overrides))
            )
            assert result.ipc > 0


class TestSafetyValve:
    def test_progress_guard(self):
        # A tiny trace must finish far below the safety valve.
        trace = quick(n=2_000)
        sim = Simulator(trace, SimConfig())
        result = sim.run()
        assert result.cycles < sim.MAX_CPI * len(trace)
