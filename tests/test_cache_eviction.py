"""Property and round-trip tests for cache eviction + warm-start snapshot.

The eviction policy (:mod:`repro.serve.eviction`) and the index snapshot
(:mod:`repro.serve.snapshot`) operate on synthetic cache directories here
— real payloads are irrelevant to the policy; what matters is which files
survive a prune and that the snapshot index is a faithful, versioned view
of the directory.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.runner as runner
from repro.cli import main
from repro.serve import eviction, snapshot

# ----------------------------------------------------------------------
# Synthetic cache directories
# ----------------------------------------------------------------------


def _populate(directory, specs):
    """Create fake entries: {key: (size_bytes, age_seconds)}."""
    directory.mkdir(parents=True, exist_ok=True)
    now = time.time()
    for key, (size, age) in specs.items():
        path = directory / f"{key}.pkl"
        path.write_bytes(b"x" * size)
        os.utime(path, (now - age, now - age))


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SIM_CACHE", "1")
    monkeypatch.delenv("REPRO_SIM_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_SIM_CACHE_MAX_ENTRIES", raising=False)
    return tmp_path


entry_specs = st.dictionaries(
    keys=st.text(alphabet="abcdef0123456789", min_size=4, max_size=12),
    values=st.tuples(
        st.integers(min_value=1, max_value=4096),  # size
        st.integers(min_value=60, max_value=86_400),  # age (past grace)
    ),
    min_size=0,
    max_size=12,
)


# ----------------------------------------------------------------------
# Eviction properties
# ----------------------------------------------------------------------


class TestPruneProperties:
    @settings(max_examples=30, deadline=None)
    @given(specs=entry_specs, max_entries=st.integers(min_value=0, max_value=12))
    def test_prune_meets_entry_bound(self, tmp_path_factory, specs, max_entries):
        directory = tmp_path_factory.mktemp("prune")
        _populate(directory, specs)
        report = eviction.prune(
            max_entries=max_entries or None, directory=directory
        )
        survivors = eviction.scan_entries(directory)
        if max_entries:
            assert len(survivors) <= max_entries
        assert report.kept_entries == len(survivors)
        assert report.scanned == len(specs)
        # Survivors are the *newest* entries in prune's LRU order —
        # oldest (largest age) first, mtime ties broken by key ascending.
        removed = set(report.removed)
        if removed and survivors:
            def lru_rank(key):
                return (-specs[key][1], key)  # == ascending (mtime, key)

            last_removed = max(lru_rank(key) for key in removed)
            assert all(lru_rank(e.key) >= last_removed for e in survivors)

    @settings(max_examples=30, deadline=None)
    @given(specs=entry_specs, max_bytes=st.integers(min_value=1, max_value=32_768))
    def test_prune_meets_byte_bound(self, tmp_path_factory, specs, max_bytes):
        directory = tmp_path_factory.mktemp("prune")
        _populate(directory, specs)
        report = eviction.prune(max_bytes=max_bytes, directory=directory)
        survivors = eviction.scan_entries(directory)
        assert sum(e.size for e in survivors) <= max_bytes or not report.removed
        assert report.freed_bytes == sum(specs[key][0] for key in report.removed)

    @settings(max_examples=30, deadline=None)
    @given(specs=entry_specs)
    def test_protected_keys_always_survive(self, tmp_path_factory, specs):
        directory = tmp_path_factory.mktemp("prune")
        _populate(directory, specs)
        shielded = set(list(specs)[: len(specs) // 2])
        eviction.prune(
            max_entries=0 or None,
            max_bytes=1,  # evict as much as allowed
            protect_keys=shielded,
            directory=directory,
        )
        survivors = {e.key for e in eviction.scan_entries(directory)}
        assert shielded <= survivors

    @settings(max_examples=20, deadline=None)
    @given(specs=entry_specs)
    def test_dry_run_deletes_nothing(self, tmp_path_factory, specs):
        directory = tmp_path_factory.mktemp("prune")
        _populate(directory, specs)
        report = eviction.prune(max_bytes=1, directory=directory, dry_run=True)
        assert report.dry_run
        assert {e.key for e in eviction.scan_entries(directory)} == set(specs)


class TestEvictionRegistry:
    def test_inflight_registry_shields_entries(self, tmp_path):
        _populate(tmp_path, {"aaaa": (100, 300), "bbbb": (100, 200)})
        eviction.protect("aaaa")
        try:
            report = eviction.prune(max_entries=1, directory=tmp_path)
            assert report.removed == ("bbbb",)
            assert report.protected_kept == 1
        finally:
            eviction.unprotect("aaaa")
        assert "aaaa" not in eviction.protected_keys()

    def test_protect_nests(self):
        eviction.protect("k")
        eviction.protect("k")
        eviction.unprotect("k")
        assert "k" in eviction.protected_keys()
        eviction.unprotect("k")
        assert "k" not in eviction.protected_keys()

    def test_grace_window_shields_young_entries(self, tmp_path):
        _populate(tmp_path, {"old1": (100, 600)})
        young = tmp_path / "young1.pkl"
        young.write_bytes(b"y" * 100)  # mtime = now
        report = eviction.prune(
            max_entries=1, directory=tmp_path, min_age_seconds=60.0
        )
        assert report.removed == ("old1",)
        assert young.exists()

    def test_maybe_evict_is_noop_without_bounds(self, cache_dir):
        _populate(cache_dir, {"abcd": (100, 300)})
        assert eviction.maybe_evict(directory=cache_dir) is None
        assert (cache_dir / "abcd.pkl").exists()

    def test_maybe_evict_honours_env_bound(self, cache_dir, monkeypatch):
        _populate(cache_dir, {"old2": (100, 600), "new2": (100, 100)})
        monkeypatch.setenv("REPRO_SIM_CACHE_MAX_ENTRIES", "1")
        report = eviction.maybe_evict(directory=cache_dir, min_age_seconds=0.0)
        assert report is not None and report.removed == ("old2",)

    def test_resolve_bounds_ignore_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE_MAX_BYTES", "not-a-number")
        monkeypatch.setenv("REPRO_SIM_CACHE_MAX_ENTRIES", "-3")
        assert eviction.resolve_max_bytes() is None
        assert eviction.resolve_max_entries() is None
        assert eviction.resolve_max_bytes(512) == 512
        assert eviction.resolve_max_entries(0) is None


# ----------------------------------------------------------------------
# Snapshot round-trip
# ----------------------------------------------------------------------


class TestSnapshot:
    @settings(max_examples=20, deadline=None)
    @given(specs=entry_specs)
    def test_round_trip_matches_rescan(self, tmp_path_factory, specs):
        directory = tmp_path_factory.mktemp("snap")
        _populate(directory, specs)
        snapshot.write_snapshot(directory)
        index = snapshot.read_snapshot(directory)
        assert index is not None
        scanned = {e.key: e for e in eviction.scan_entries(directory)}
        assert set(index) == set(scanned)
        for key, entry in index.items():
            assert entry.size == scanned[key].size
            assert entry.mtime == pytest.approx(scanned[key].mtime)
            assert entry.path == scanned[key].path

    def test_snapshot_is_not_a_cache_entry(self, tmp_path):
        _populate(tmp_path, {"abcd": (10, 300)})
        snapshot.write_snapshot(tmp_path)
        assert {e.key for e in eviction.scan_entries(tmp_path)} == {"abcd"}

    def test_version_mismatch_reads_as_no_snapshot(self, tmp_path):
        _populate(tmp_path, {"abcd": (10, 300)})
        path = snapshot.write_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        payload["cache_version"] = "ancient"
        path.write_text(json.dumps(payload))
        assert snapshot.read_snapshot(tmp_path) is None

    @pytest.mark.parametrize(
        "garbage",
        [
            "not json at all",
            "[]",
            '{"schema": 99}',
            '{"schema": 1, "cache_version": null}',
        ],
    )
    def test_garbage_snapshots_read_as_none(self, tmp_path, garbage):
        snapshot.snapshot_path(tmp_path).parent.mkdir(parents=True, exist_ok=True)
        snapshot.snapshot_path(tmp_path).write_text(garbage)
        assert snapshot.read_snapshot(tmp_path) is None

    def test_load_index_prefers_snapshot_then_rescans(self, tmp_path):
        _populate(tmp_path, {"abcd": (10, 300)})
        index, source = snapshot.load_index(tmp_path)
        assert source == "rescan" and set(index) == {"abcd"}
        # The rescan wrote a snapshot, so the next start is warm.
        index, source = snapshot.load_index(tmp_path)
        assert source == "snapshot" and set(index) == {"abcd"}

    def test_clear_disk_cache_removes_snapshot(self, cache_dir):
        _populate(cache_dir, {"abcd": (10, 300)})
        snapshot.write_snapshot(cache_dir)
        runner.clear_disk_cache()
        assert not snapshot.snapshot_path(cache_dir).exists()
        assert eviction.scan_entries(cache_dir) == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCacheCli:
    def test_stats_reports_bounds_and_snapshot(self, cache_dir, monkeypatch, capsys):
        _populate(cache_dir, {"abcd": (128, 300)})
        monkeypatch.setenv("REPRO_SIM_CACHE_MAX_BYTES", "4096")
        snapshot.write_snapshot(cache_dir)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "disk entries   1" in out
        assert "disk bytes     128 (max 4096)" in out
        assert "1 entries indexed" in out
        stats = runner.cache_stats()
        assert stats["max_bytes"] == 4096
        assert stats["max_entries"] is None
        assert stats["snapshot_entries"] == 1

    def test_prune_without_bound_is_usage_error(self, cache_dir, capsys):
        assert main(["cache", "prune"]) == 2
        assert "no bound given" in capsys.readouterr().err

    def test_prune_enforces_entry_bound(self, cache_dir, capsys):
        _populate(cache_dir, {"old3": (10, 600), "new3": (10, 100)})
        assert main(["cache", "prune", "--max-entries", "1"]) == 0
        assert "evicted 1 of 2" in capsys.readouterr().out
        assert {e.key for e in eviction.scan_entries(cache_dir)} == {"new3"}

    def test_prune_dry_run(self, cache_dir, capsys):
        _populate(cache_dir, {"old4": (10, 600), "new4": (10, 100)})
        assert main(["cache", "prune", "--max-entries", "1", "--dry-run"]) == 0
        assert "would evict" in capsys.readouterr().out
        assert len(eviction.scan_entries(cache_dir)) == 2

    def test_snapshot_command(self, cache_dir, capsys):
        _populate(cache_dir, {"abcd": (10, 300)})
        assert main(["cache", "snapshot"]) == 0
        assert "1 entries indexed" in capsys.readouterr().out
        assert snapshot.snapshot_path(cache_dir).exists()
