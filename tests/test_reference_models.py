"""Property tests: optimized structures vs their naive reference models.

Hypothesis drives both implementations with the same random operation
sequence and compares every observable after each step.  Guarded with
``importorskip`` so environments without hypothesis still run the rest of
tier-1.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.branch.ras import ReturnAddressStack  # noqa: E402
from repro.caches.cache import CacheConfig, SetAssocCache  # noqa: E402
from repro.common.lru import LRUSet  # noqa: E402
from repro.verify.oracles import RefLRU, RefRAS, RefSetAssocCache  # noqa: E402

MAX_EXAMPLES = 60


class TestLRUSetVsReference:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        ways=st.integers(min_value=1, max_value=8),
        ops=st.lists(
            st.tuples(st.sampled_from(["touch", "demote"]), st.integers(0, 7)),
            max_size=40,
        ),
    )
    def test_same_victim_and_recency(self, ways, ops):
        live = LRUSet(ways)
        ref = RefLRU(ways)
        for op, way in ops:
            if way >= ways:
                continue
            getattr(live, op)(way)
            getattr(ref, op)(way)
            assert live.victim() == ref.victim()
            for candidate in range(ways):
                assert live.recency(candidate) == ref.recency(candidate)


class TestRASVsReference:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(1, 1 << 20)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=50,
        ),
    )
    def test_same_top_depth_and_pops(self, capacity, ops):
        """Circular-buffer RAS == bounded-list RAS for every sequence,
        including overflow wrap-around and underflow."""
        live = ReturnAddressStack(capacity)
        ref = RefRAS(capacity)
        for op, address in ops:
            if op == "push":
                live.push(address)
                ref.push(address)
            else:
                assert live.pop() == ref.pop()
            assert len(live) == len(ref)
            assert live.peek() == ref.peek()

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        pushes=st.lists(st.integers(1, 1 << 20), max_size=30),
        small=st.integers(min_value=1, max_value=4),
    )
    def test_copy_from_keeps_newest(self, pushes, small):
        """Alt-RAS initialisation: copying a big RAS into a small one keeps
        exactly the newest entries, in both implementations."""
        live_src, ref_src = ReturnAddressStack(16), RefRAS(16)
        for address in pushes:
            live_src.push(address)
            ref_src.push(address)
        live_dst, ref_dst = ReturnAddressStack(small), RefRAS(small)
        live_dst.copy_from(live_src)
        ref_dst.copy_from(ref_src)
        assert len(live_dst) == len(ref_dst)
        while len(ref_dst):
            assert live_dst.pop() == ref_dst.pop()


class TestCacheVsReference:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=63), max_size=80),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_same_classification_and_contents(self, lines, ways):
        """Untimed path (touch/allocate) vs the reference: identical
        hit/miss verdicts and identical tag-store contents throughout."""
        config = CacheConfig("toy", size_bytes=8 * 64 * ways, ways=ways)
        live = SetAssocCache(config)
        ref = RefSetAssocCache(config.n_sets, ways)
        for line in lines:
            addr = line * config.line_size
            hit = live.touch(addr)
            if not hit:
                live.allocate(addr)
            assert hit == ref.access(line)
            assert live._sets == ref.sets

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(lines=st.lists(st.integers(min_value=0, max_value=31), max_size=60))
    def test_timed_access_agrees_when_serialised(self, lines):
        """The timed ``access`` path (with MSHR drained between accesses)
        must classify exactly like the functional oracle."""
        config = CacheConfig("toy", size_bytes=4 * 64 * 2, ways=2, hit_latency=1)
        live = SetAssocCache(config)
        ref = RefSetAssocCache(config.n_sets, config.ways)
        cycle = 0
        for line in lines:
            hit, _ready = live.access(line * config.line_size, cycle, fill_latency=1)
            assert hit == ref.access(line)
            cycle += 1_000  # let every fill land before the next access
        assert live._sets == ref.sets
