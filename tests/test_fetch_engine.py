"""Behavioural tests of the fetch engine on hand-crafted traces."""

from dataclasses import replace

from repro.core import SimConfig, Simulator, simulate
from repro.isa import BranchClass, Trace, TraceEntry


def loop_trace(iterations=400, body=12, base=0x1000):
    """A hot loop: `body` instructions ending in a taken backward branch."""
    entries = []
    for _ in range(iterations):
        for i in range(body - 1):
            entries.append(TraceEntry(base + 4 * i))
        entries.append(
            TraceEntry(base + 4 * (body - 1), BranchClass.COND_DIRECT, True, base)
        )
    return Trace.from_entries("hotloop", entries)


def phased_trace(phase_a=0x1000, phase_b=0x9000, repeats=60, body=10):
    """Alternating code phases that fit together in the µ-op cache."""
    entries = []
    for r in range(repeats):
        base = phase_a if r % 2 == 0 else phase_b
        other = phase_b if r % 2 == 0 else phase_a
        for i in range(body - 1):
            entries.append(TraceEntry(base + 4 * i))
        entries.append(
            TraceEntry(base + 4 * (body - 1), BranchClass.UNCOND_DIRECT, True, other)
        )
    return Trace.from_entries("phased", entries)


class TestSteadyStateStreaming:
    def test_hot_loop_reaches_high_hit_rate(self):
        result = simulate(loop_trace(), SimConfig())
        # After warm-up the loop streams from the µ-op cache.
        assert result.uop_hit_rate > 90.0

    def test_hot_loop_switches_settle(self):
        result = simulate(loop_trace(), SimConfig())
        # A couple of build/stream transitions at warm-up, then stability.
        assert result.switch_pki < 5.0

    def test_uop_faster_than_decode_for_hot_loop(self):
        trace = loop_trace()
        base = simulate(trace, SimConfig())
        no_uop = simulate(trace, SimConfig().without_uop_cache())
        assert base.ipc >= no_uop.ipc * 0.99


class TestModeSwitchPenalty:
    def test_penalty_costs_cycles(self):
        trace = phased_trace()
        def with_penalty(p):
            config = SimConfig()
            return simulate(
                trace,
                replace(config, frontend=replace(config.frontend, mode_switch_penalty=p)),
            )
        cheap = with_penalty(0)
        costly = with_penalty(4)
        assert costly.cycles >= cheap.cycles


class TestQueueBounds:
    def test_uop_queue_never_exceeds_capacity(self):
        config = SimConfig()
        sim = Simulator(loop_trace(iterations=120), config)
        capacity = config.frontend.uop_queue_capacity
        original_tick = sim.fetch.tick

        def checked_tick(cycle, ftq):
            original_tick(cycle, ftq)
            assert len(sim.fetch.uop_queue) <= capacity

        sim.fetch.tick = checked_tick
        sim.run()


class TestEntryAlignment:
    def test_all_delivered_uops_are_trace_order(self):
        """µ-ops must enter the queue in exact program order."""
        sim = Simulator(loop_trace(iterations=100), SimConfig())
        seen = []
        original_tick = sim.fetch.tick

        def spy(cycle, ftq):
            before = len(sim.fetch.uop_queue)
            original_tick(cycle, ftq)
            for index, _ready in list(sim.fetch.uop_queue)[before:]:
                seen.append(index)

        sim.fetch.tick = spy
        sim.run()
        assert seen == sorted(seen)
        assert seen[0] == 0
        assert seen[-1] == len(sim.trace) - 1

    def test_every_instruction_delivered_exactly_once(self):
        sim = Simulator(phased_trace(), SimConfig())
        counts = {}
        original_tick = sim.fetch.tick

        def spy(cycle, ftq):
            before = len(sim.fetch.uop_queue)
            original_tick(cycle, ftq)
            for index, _ready in list(sim.fetch.uop_queue)[before:]:
                counts[index] = counts.get(index, 0) + 1

        sim.fetch.tick = spy
        sim.run()
        assert all(count == 1 for count in counts.values())
        assert len(counts) == len(sim.trace)


class TestSources:
    def test_sources_partition_all_uops(self):
        result = simulate(loop_trace(), SimConfig())
        window = result.window
        delivered = (
            window.get("uops_uop", 0)
            + window.get("uops_decode", 0)
            + window.get("uops_mrc", 0)
        )
        # The warm-up snapshot is taken at a commit boundary while delivery
        # counters run at fetch time, so they differ by at most the
        # in-flight pipeline occupancy.
        assert abs(delivered - result.window_instructions) <= 600

    def test_no_uop_cache_only_decodes(self):
        result = simulate(loop_trace(), SimConfig().without_uop_cache())
        assert result.window.get("uops_uop", 0) == 0
        assert abs(
            result.window.get("uops_decode", 0) - result.window_instructions
        ) <= 600
