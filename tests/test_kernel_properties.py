"""Hypothesis property suite for kernel batching boundaries.

The three fast-path mechanisms — the batched replay kernel
(``REPRO_SIM_KERNEL``), event-driven idle-skip (``REPRO_SIM_SKIP``) and
interval sampling (``REPRO_SIM_INTERVAL``) — each promise bit-identical
results, and they compose.  These properties drive randomly generated
traces (random branch mixes, loop/H2P fractions, so span and event
boundaries land in arbitrary places) through the full 2×2 matrix and
demand identical ``StatBlock`` exports, interval samples and
stall-taxonomy partitions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import SimConfig
from repro.core.kernel import KernelSimulator
from repro.core.pipeline import Simulator, simulate
from repro.workloads import WorkloadConfig, generate_trace


def _random_trace(seed: int, loop_fraction: float, h2p: float, n: int = 1_500):
    config = WorkloadConfig(
        name=f"prop_{seed}",
        seed=seed,
        n_functions=8,
        n_instructions=n,
        loop_fraction=loop_fraction,
        h2p_fraction=h2p,
    )
    trace = generate_trace(config)
    trace.validate()
    return trace


class TestKernelSkipIntervalMatrix:
    @settings(deadline=None, max_examples=6)
    @given(
        seed=st.integers(0, 10_000),
        loop_fraction=st.floats(0.0, 0.5),
        h2p=st.floats(0.0, 0.3),
        interval=st.sampled_from([0, 200, 997]),
    )
    def test_full_matrix_bit_identical(self, seed, loop_fraction, h2p, interval):
        trace = _random_trace(seed, loop_fraction, h2p)
        config = SimConfig()
        reference = simulate(
            trace, config, kernel=False, idle_skip=False, interval=interval
        ).to_dict()
        for kernel in (False, True):
            for idle_skip in (False, True):
                result = simulate(
                    trace,
                    config,
                    kernel=kernel,
                    idle_skip=idle_skip,
                    interval=interval,
                ).to_dict()
                assert result == reference, (
                    f"divergence at kernel={kernel} skip={idle_skip} "
                    f"interval={interval}"
                )

    @settings(deadline=None, max_examples=4)
    @given(seed=st.integers(0, 10_000))
    def test_skip_telemetry_identical_under_kernel(self, seed):
        """Idle-skip must jump the *same* cycles on both paths: the wake
        analysis reads component state the kernel claims not to perturb."""
        trace = _random_trace(seed, 0.3, 0.1)
        config = SimConfig()
        interp = Simulator(trace, config, check=False, observe=False, idle_skip=True)
        interp.run()
        kernel = KernelSimulator(
            trace, config, check=False, observe=False, idle_skip=True
        )
        kernel.run()
        assert kernel.kernel_active
        assert (interp.skipped_cycles, interp.skip_events) == (
            kernel.skipped_cycles,
            kernel.skip_events,
        )

    @settings(deadline=None, max_examples=4)
    @given(seed=st.integers(0, 10_000), h2p=st.floats(0.0, 0.3))
    def test_taxonomy_partition_identical(self, seed, h2p):
        """With the observer on, the kernel falls back to the interpreter
        — the stall-taxonomy partition must be identical whatever
        REPRO_SIM_KERNEL says, and must still cover every cycle."""
        trace = _random_trace(seed, 0.2, h2p)
        config = SimConfig()
        taxonomies = []
        for kernel in (False, True):
            sim_cls = KernelSimulator if kernel else Simulator
            sim = sim_cls(trace, config, observe=True)
            result = sim.run()
            taxonomy = sim.observer.taxonomy
            taxonomy.check_partition(result.cycles, name=f"kernel={kernel}")
            taxonomies.append(taxonomy.as_dict())
        assert taxonomies[0] == taxonomies[1]

    @settings(deadline=None, max_examples=4)
    @given(
        seed=st.integers(0, 10_000),
        interval=st.sampled_from([150, 512]),
    )
    def test_interval_series_identical(self, seed, interval):
        trace = _random_trace(seed, 0.25, 0.15)
        config = SimConfig()
        interp = simulate(trace, config, kernel=False, interval=interval)
        kernel = simulate(trace, config, kernel=True, interval=interval)
        assert interp.intervals == kernel.intervals
        assert len(kernel.intervals) > 0
