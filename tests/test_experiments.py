"""End-to-end tests of the experiment drivers at a tiny scale.

These verify that every figure's driver runs, renders, and produces
numbers with the qualitative shape the paper reports — at a scale small
enough for CI.
"""

import pytest

from repro.branch.tage_sc_l import Provider
from repro.experiments import (
    common,
)
from repro.experiments import (
    fig02_uop_impact,
    fig03_hitrate_switches,
    fig04_size_sweep,
    fig05_prefetchers,
    fig06_conf_missrate,
    fig07_contributions,
    fig09_h2p,
    fig10_ucp_vs_base,
    fig11_speedup_mpki,
    fig12_variants,
    fig13_ucp_hitrate,
    fig14_prefetch_accuracy,
    fig15_threshold,
    fig16_pareto,
    taba_variants,
)

TINY = common.Scale("tiny", ("srv_04", "int_03", "crypto_02"), 8_000)


class TestFig02:
    def test_runs_and_sorted(self):
        result = fig02_uop_impact.run(TINY)
        values = [pct for _, pct in result.speedups]
        assert values == sorted(values)
        assert len(values) == 3
        assert "Fig. 2" in fig02_uop_impact.render(result)


class TestFig03:
    def test_hit_rates_in_range(self):
        result = fig03_hitrate_switches.run(TINY)
        for _name, hit, pki in result.rows:
            assert 0 <= hit <= 100
            assert pki >= 0
        assert result.mean_hit_rate > 0
        assert "hit rate" in fig03_hitrate_switches.render(result)


class TestFig04:
    def test_hit_rate_grows_with_size(self):
        result = fig04_size_sweep.run(TINY)
        assert result.hit_rate_of("64Kops") >= result.hit_rate_of("4Kops")
        # Ideal dominates every finite size.
        assert result.ideal_speedup_pct >= result.speedup_of("64Kops") - 0.5
        fig04_size_sweep.render(result)


class TestFig05:
    def test_subset_runs(self):
        result = fig05_prefetchers.run(
            TINY, prefetchers=(None, "fnl_mma"), kinds=("base", "ideal8")
        )
        assert result.speedups["none"]["base"] == pytest.approx(0.0, abs=1e-9)
        assert result.speedups["fnl_mma"]["ideal8"] >= result.speedups["fnl_mma"]["base"] - 0.5
        fig05_prefetchers.render(result)


class TestFig06Fig07:
    def test_component_rates(self):
        result = fig06_conf_missrate.run(TINY)
        assert result.rows, "no component data collected"
        for _name, _bucket, n, rate in result.rows:
            assert n > 0
            assert 0 <= rate <= 100
        fig06_conf_missrate.render(result)

    def test_saturated_hitbank_reliable(self):
        result = fig06_conf_missrate.run(TINY)
        saturated = [
            result.miss_rate(Provider.HITBANK, 3),
            result.miss_rate(Provider.HITBANK, -4),
        ]
        weak = [
            result.miss_rate(Provider.HITBANK, 0),
            result.miss_rate(Provider.HITBANK, -1),
        ]
        saturated = [rate for rate in saturated if rate is not None]
        weak = [rate for rate in weak if rate is not None]
        if saturated and weak:
            assert min(weak) >= max(saturated) - 5.0

    def test_shares_sum_to_100(self):
        result = fig07_contributions.run(TINY)
        total = sum(share for _miss, share in result.shares.values())
        assert total == pytest.approx(100.0, abs=0.5)
        fig07_contributions.render(result)


class TestFig09:
    def test_ucp_conf_dominates(self):
        result = fig09_h2p.run(TINY)
        assert result.coverage("ucp") >= result.coverage("tage")
        assert 0 < result.accuracy("ucp") <= 100
        fig09_h2p.render(result)


class TestFig10Fig11:
    def test_fig10_fraction_benefiting(self):
        result = fig10_ucp_vs_base.run(TINY)
        assert result.ucp_fraction_benefiting >= result.base_fraction_benefiting - 0.34
        fig10_ucp_vs_base.render(result)

    def test_fig11_rows_sorted_by_speedup(self):
        result = fig11_speedup_mpki.run(TINY)
        speedups = [s for _, s, _ in result.rows]
        assert speedups == sorted(speedups)
        fig11_speedup_mpki.render(result)


class TestFig12TabA:
    def test_variants_present(self):
        result = fig12_variants.run(TINY)
        assert set(result.speedups) == {"UCP", "UCP-NoInd", "TAGE-Conf"}
        fig12_variants.render(result)

    def test_taba_variants_present(self):
        result = taba_variants.run(TINY)
        assert set(result.speedups) == {
            "UCP",
            "UCP-TillL1I",
            "UCP-SharedDecoders",
            "UCP-IdealBTBBanking",
        }
        taba_variants.render(result)


class TestFig13Fig14:
    def test_ucp_hit_rate_at_least_base(self):
        result = fig13_ucp_hitrate.run(TINY)
        assert result.mean_ucp_hit >= result.mean_base_hit - 0.5
        fig13_ucp_hitrate.render(result)

    def test_accuracy_in_range(self):
        result = fig14_prefetch_accuracy.run(TINY)
        for _name, accuracy, _n in result.rows:
            assert 0 <= accuracy <= 100
        fig14_prefetch_accuracy.render(result)


class TestFig15:
    def test_two_point_sweep(self):
        result = fig15_threshold.run(TINY, thresholds=(16, 500))
        assert len(result.ucp) == 2
        assert len(result.till_l1i) == 2
        assert result.best_threshold() in (16, 500)
        fig15_threshold.render(result)


class TestFig16:
    def test_quick_pareto(self):
        result = fig16_pareto.run(TINY, full=False)
        labels = {point.label for point in result.points}
        assert {"UCP", "UCP-NoIndirect", "TAGE-SC-Lx2"} <= labels
        ucp = result.point("UCP")
        assert ucp.storage_kb < 20
        fig16_pareto.render(result)

    def test_pareto_front_logic(self):
        from repro.experiments.fig16_pareto import Fig16Result, ParetoPoint

        result = Fig16Result(
            [
                ParetoPoint("cheap-good", 1.0, 2.0),
                ParetoPoint("pricey-worse", 5.0, 1.0),
                ParetoPoint("pricey-best", 5.0, 3.0),
            ]
        )
        assert result.on_pareto_front("cheap-good")
        assert not result.on_pareto_front("pricey-worse")
        assert result.on_pareto_front("pricey-best")


class TestSelection:
    def test_select_workloads_nonempty(self):
        selected = common.select_workloads(TINY)
        assert selected
        assert set(selected) <= set(TINY.workloads)
