"""Tests for LRU replacement state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.lru import LRUSet


class TestLRUSet:
    def test_initial_victim_is_way_zero(self):
        lru = LRUSet(4)
        assert lru.victim() == 0

    def test_touch_moves_to_mru(self):
        lru = LRUSet(4)
        lru.touch(0)
        assert lru.victim() == 1
        assert lru.recency(0) == 3

    def test_victim_cycles_through_untouched(self):
        lru = LRUSet(3)
        lru.touch(0)
        lru.touch(1)
        assert lru.victim() == 2

    def test_lru_order_after_sequence(self):
        lru = LRUSet(4)
        for way in [0, 1, 2, 3, 0, 2]:
            lru.touch(way)
        # Access order: 1 (oldest), 3, 0, 2 (newest)
        assert lru.victim() == 1
        assert lru.recency(2) == 3

    def test_demote(self):
        lru = LRUSet(4)
        for way in range(4):
            lru.touch(way)
        lru.demote(3)
        assert lru.victim() == 3

    def test_out_of_range(self):
        lru = LRUSet(2)
        with pytest.raises(IndexError):
            lru.touch(2)
        with pytest.raises(IndexError):
            lru.recency(-1)

    def test_needs_at_least_one_way(self):
        with pytest.raises(ValueError):
            LRUSet(0)

    @given(
        ways=st.integers(1, 8),
        touches=st.lists(st.integers(0, 7), max_size=64),
    )
    def test_victim_is_least_recent(self, ways, touches):
        lru = LRUSet(ways)
        last_touch: dict[int, int] = {}
        for time, way in enumerate(touch % ways for touch in touches):
            lru.touch(way)
            last_touch[way] = time
        victim = lru.victim()
        # The victim must not have been touched after any untouched way
        # exists, and among touched ways it must be the oldest.
        untouched = [way for way in range(ways) if way not in last_touch]
        if untouched:
            assert victim in untouched
        else:
            assert last_touch[victim] == min(last_touch.values())

    @given(ways=st.integers(1, 8), touches=st.lists(st.integers(0, 7), max_size=64))
    def test_recencies_are_a_permutation(self, ways, touches):
        lru = LRUSet(ways)
        for touch in touches:
            lru.touch(touch % ways)
        assert sorted(lru.recency(way) for way in range(ways)) == list(range(ways))
