"""Tests for the cached runner and table rendering."""

from repro.analysis.runner import clear_disk_cache, run_cached
from repro.analysis.tables import format_series, format_table
from repro.core import SimConfig


class TestRunner:
    def test_memoises_in_process(self):
        a = run_cached("fp_01", SimConfig(), 3_000)
        b = run_cached("fp_01", SimConfig(), 3_000)
        assert a is b

    def test_different_configs_not_conflated(self):
        a = run_cached("fp_01", SimConfig(), 3_000)
        b = run_cached("fp_01", SimConfig().without_uop_cache(), 3_000)
        assert a is not b
        assert a.window != b.window

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        import repro.analysis.runner as runner

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SIM_CACHE", "1")
        runner._memory_cache.clear()
        first = runner.run_cached("fp_01", SimConfig(), 2_000)
        assert list(tmp_path.glob("*.pkl"))
        runner._memory_cache.clear()
        second = runner.run_cached("fp_01", SimConfig(), 2_000)
        assert second.ipc == first.ipc
        assert runner.clear_disk_cache() >= 1

    def test_disk_cache_disable(self, tmp_path, monkeypatch):
        import repro.analysis.runner as runner

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        runner._memory_cache.clear()
        runner.run_cached("fp_01", SimConfig(), 2_000)
        assert not list(tmp_path.glob("*.pkl"))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table("Title", ["a", "bb"], [["x", 1.5], ["yy", 2.0]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "1.50" in text and "2.00" in text

    def test_format_table_empty(self):
        text = format_table("Empty", ["col"], [])
        assert "Empty" in text
        assert "col" in text

    def test_format_series(self):
        text = format_series(
            "S", {"one": [1.0, 2.0], "two": [3.0, 4.0]}, x_labels=["p", "q"]
        )
        assert "one" in text and "two" in text
        assert "p" in text and "q" in text
        assert "4.00" in text

    def test_format_series_unequal_lengths(self):
        text = format_series("S", {"a": [1.0, 2.0], "b": [3.0]})
        assert "2.00" in text
