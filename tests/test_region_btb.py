"""Tests for the region-organised BTB."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch import BTB, BTBConfig, RegionBTB, make_btb
from repro.isa import BranchClass


def region_btb(**overrides) -> RegionBTB:
    return RegionBTB(BTBConfig(organization="region", **overrides))


class TestFactory:
    def test_selects_organization(self):
        assert isinstance(make_btb(BTBConfig()), BTB)
        assert isinstance(make_btb(BTBConfig(organization="region")), RegionBTB)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_btb(BTBConfig(organization="mystery"))


class TestRegionBTB:
    def test_branches_share_a_region_entry(self):
        btb = region_btb()
        btb.update(0x1004, BranchClass.COND_DIRECT, 0x2000)
        btb.update(0x1010, BranchClass.UNCOND_DIRECT, 0x3000)
        assert btb.lookup(0x1004).target == 0x2000
        assert btb.lookup(0x1010).target == 0x3000
        # Same region, un-recorded offset: miss.
        assert btb.lookup(0x1008) is None

    def test_update_refreshes_target(self):
        btb = region_btb()
        btb.update(0x1004, BranchClass.CALL_INDIRECT, 0x2000)
        btb.update(0x1004, BranchClass.CALL_INDIRECT, 0x9000)
        assert btb.peek(0x1004).target == 0x9000

    def test_region_branch_capacity(self):
        btb = region_btb(region_branches=2)
        btb.update(0x1000, BranchClass.UNCOND_DIRECT, 0x1)
        btb.update(0x1004, BranchClass.UNCOND_DIRECT, 0x2)
        btb.update(0x1008, BranchClass.UNCOND_DIRECT, 0x3)  # evicts oldest
        assert btb.peek(0x1000) is None
        assert btb.peek(0x1004) is not None
        assert btb.peek(0x1008) is not None

    def test_region_lru_eviction(self):
        btb = region_btb(n_entries=16, ways=2, region_branches=2)
        stride = 64 * btb._n_sets  # regions mapping to the same set
        regions = [0x10000 + i * stride for i in range(3)]
        for base in regions:
            btb.update(base, BranchClass.UNCOND_DIRECT, 0x1)
        btb.lookup(regions[0])  # refresh region 0
        btb.update(0x20000 + 0, BranchClass.UNCOND_DIRECT, 0x2)  # different set OK
        btb.update(regions[0] + 4, BranchClass.UNCOND_DIRECT, 0x3)
        # Region 1 was LRU when region 2 arrived.
        assert btb.peek(regions[1]) is None

    def test_bank_of_stable(self):
        btb = region_btb()
        for pc in range(0x1000, 0x1400, 4):
            assert btb.bank_of(pc) == btb.bank_of(pc)
            assert 0 <= btb.bank_of(pc, n_banks=32) < 32

    def test_same_region_same_bank(self):
        # The property that helps UCP: any two PCs in one region share the
        # entry, hence the bank.
        btb = region_btb()
        assert btb.bank_of(0x1000) == btb.bank_of(0x103C)

    def test_hit_rate_accounting(self):
        btb = region_btb()
        btb.update(0x1000, BranchClass.UNCOND_DIRECT, 0x2000)
        btb.lookup(0x1000)
        btb.lookup(0x5000)
        assert btb.hit_rate == 0.5

    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500)), max_size=60
        )
    )
    def test_lookup_returns_latest_target(self, updates):
        btb = region_btb(n_entries=1 << 14)
        model = {}
        for pc_slot, target_slot in updates:
            pc = 0x1000 + 4 * pc_slot
            target = 0x100000 + 4 * target_slot
            btb.update(pc, BranchClass.UNCOND_DIRECT, target)
            model[pc] = target
        # With ample capacity nothing should be evicted within a region
        # unless more than region_branches distinct offsets were written.
        for pc, target in model.items():
            entry = btb.peek(pc)
            if entry is not None:
                assert entry.target == target


class TestRegionBTBInPipeline:
    def test_full_simulation_runs(self):
        from dataclasses import replace

        from repro.core import SimConfig, simulate
        from repro.workloads import load_workload

        trace = load_workload("int_02", 6_000).trace
        config = replace(SimConfig(), btb=BTBConfig(organization="region"))
        result = simulate(trace, config)
        assert result.ipc > 0
        assert result.window.get("cond_branches", 0) > 0
