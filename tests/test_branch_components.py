"""Tests for individual branch-prediction components."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BTB, BTBConfig
from repro.branch.ittage import ITTAGE, ITTAGEConfig
from repro.branch.loop import LoopPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.sc import StatisticalCorrector
from repro.branch.tage import TAGE, TageConfig
from repro.isa import BranchClass


class TestBimodal:
    def test_initially_predicts_not_taken(self):
        predictor = BimodalPredictor(size_bits=4)
        assert predictor.predict(0x1000) is False

    def test_learns_taken(self):
        predictor = BimodalPredictor(size_bits=8)
        for _ in range(3):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000) is True

    def test_hysteresis(self):
        predictor = BimodalPredictor(size_bits=8)
        for _ in range(4):
            predictor.update(0x1000, True)  # saturate at +1
        predictor.update(0x1000, False)  # drop to 0: still taken
        assert predictor.predict(0x1000) is True
        predictor.update(0x1000, False)
        assert predictor.predict(0x1000) is False

    def test_miss_in_last_8(self):
        predictor = BimodalPredictor(size_bits=4)
        assert predictor.miss_in_last_8 is False
        predictor.record_provided(False)
        assert predictor.miss_in_last_8 is True
        for _ in range(8):
            predictor.record_provided(True)
        assert predictor.miss_in_last_8 is False

    def test_counter_range(self):
        predictor = BimodalPredictor(size_bits=4, counter_bits=2)
        for _ in range(10):
            predictor.update(0x0, True)
        assert predictor.counter(0x0) == 1
        for _ in range(10):
            predictor.update(0x0, False)
        assert predictor.counter(0x0) == -2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BimodalPredictor(size_bits=0)
        with pytest.raises(ValueError):
            BimodalPredictor(size_bits=4, counter_bits=1)


class TestTageCore:
    def test_history_lengths_monotonic(self):
        for config in (TageConfig(), TageConfig.small()):
            lengths = config.history_lengths()
            assert lengths == sorted(lengths)
            assert len(set(lengths)) == len(lengths)
            assert lengths[0] == config.min_history

    def test_storage_small_below_large(self):
        assert TageConfig.small().storage_bits < TageConfig().storage_bits

    def test_learns_alternating_pattern(self):
        tage = TAGE(TageConfig(n_tables=6, max_history=40))
        misses = 0
        for i in range(2000):
            taken = i % 2 == 0
            pred = tage.predict(0x1000)
            if i > 500 and pred.taken != taken:
                misses += 1
            tage.update(pred, taken)
            tage.push_history(0x1000, taken)
        assert misses < 20

    def test_provenance_reported(self):
        tage = TAGE(TageConfig(n_tables=4))
        pred = tage.predict(0x1000)
        assert pred.provider == "bimodal"  # empty tables
        assert pred.hit_bank is None
        # After training on a history-dependent branch, tagged entries
        # should start providing.
        providers = set()
        for i in range(3000):
            taken = (i % 3) == 0
            pred = tage.predict(0x2000)
            providers.add(pred.provider)
            tage.update(pred, taken)
            tage.push_history(0x2000, taken)
        assert "hit" in providers

    def test_detached_history_prediction(self):
        tage = TAGE(TageConfig(n_tables=4))
        alt = tage.make_histories()
        # Same state initially: identical predictions.
        main_pred = tage.predict(0x1000)
        alt_pred = tage.predict(0x1000, histories=alt)
        assert main_pred.indices == alt_pred.indices
        # Diverge alt history: indices change.
        for _ in range(10):
            alt.push(0x1000, True)
        diverged = tage.predict(0x1000, histories=alt)
        assert diverged.indices != main_pred.indices

    def test_copy_from_resyncs(self):
        tage = TAGE(TageConfig(n_tables=4))
        alt = tage.make_histories()
        for i in range(30):
            tage.push_history(0x1000 + 4 * i, i % 2 == 0)
        alt.copy_from(tage.histories)
        a = tage.predict(0x4000)
        b = tage.predict(0x4000, histories=alt)
        assert a.indices == b.indices and a.tags == b.tags


class TestLoopPredictor:
    def test_learns_fixed_trip(self):
        loop = LoopPredictor()
        misses = 0
        iteration = 0
        for i in range(800):
            taken = iteration < 6  # trip count 7
            pred = loop.predict(0x1000)
            if i > 200:
                assert pred.valid
                if pred.confident and pred.taken != taken:
                    misses += 1
            loop.update(0x1000, taken, pred)
            iteration = iteration + 1 if taken else 0
        assert misses == 0

    def test_invalid_until_allocated(self):
        loop = LoopPredictor()
        assert loop.predict(0x1000).valid is False

    def test_variable_trip_never_confident(self):
        loop = LoopPredictor()
        rng = random.Random(0)
        iteration, trip = 0, rng.randint(2, 9)
        confident_wrong = 0
        for _ in range(2000):
            taken = iteration + 1 < trip
            pred = loop.predict(0x2000)
            if pred.valid and pred.confident and pred.taken != taken:
                confident_wrong += 1
            loop.update(0x2000, taken, pred)
            if taken:
                iteration += 1
            else:
                iteration, trip = 0, rng.randint(2, 9)
        # Random trips must not yield a stream of confident wrong predictions.
        assert confident_wrong < 40

    def test_aging_allows_replacement(self):
        loop = LoopPredictor(size_bits=1)  # tiny: force conflicts
        for _ in range(40):
            pred = loop.predict(0x1000)
            loop.update(0x1000, True, pred)
            pred = loop.predict(0x1000 + (1 << 9))  # conflicting pc
            loop.update(0x1000 + (1 << 9), True, pred)
        # No crash and entries age; nothing more to assert structurally.


class TestStatisticalCorrector:
    def test_learns_bias_against_tage(self):
        sc = StatisticalCorrector(size_bits=6, use_threshold=10)
        # TAGE always says taken; the branch is always not-taken.
        for _ in range(200):
            pred = sc.predict(0x1000, intermediate_taken=True)
            sc.update(pred, False)
            sc.push_history(False)
        pred = sc.predict(0x1000, intermediate_taken=True)
        assert pred.taken is False
        assert sc.should_override(pred, True)

    def test_no_override_when_agreeing(self):
        sc = StatisticalCorrector(size_bits=6)
        pred = sc.predict(0x1000, intermediate_taken=True)
        if pred.taken:
            assert not sc.should_override(pred, True)

    def test_detached_histories(self):
        sc = StatisticalCorrector(size_bits=6)
        alt = sc.make_histories()
        for _ in range(20):
            sc.push_history(True)
        alt.copy_from(sc.histories)
        a = sc.predict(0x2000, True)
        b = sc.predict(0x2000, True, histories=alt)
        assert a.indices == b.indices
        alt.push(False)
        c = sc.predict(0x2000, True, histories=alt)
        assert c.indices != a.indices

    def test_counters_bounded(self):
        sc = StatisticalCorrector(size_bits=4)
        for _ in range(200):
            pred = sc.predict(0x1000, True)
            sc.update(pred, True)
        for table in sc._tables:
            assert all(sc.COUNTER_MIN <= c <= sc.COUNTER_MAX for c in table)


class TestITTAGE:
    def test_learns_stable_target(self):
        ittage = ITTAGE(ITTAGEConfig.small())
        for _ in range(50):
            pred = ittage.predict(0x1000)
            ittage.update(pred, 0x2000)
            ittage.push_history(0x1000, True)
        assert ittage.predict(0x1000).target == 0x2000

    def test_learns_history_dependent_targets(self):
        # Target alternates based on a preceding conditional direction.
        ittage = ITTAGE()
        misses = 0
        for i in range(3000):
            direction = (i % 2) == 0
            ittage.push_history(0x500, direction)
            pred = ittage.predict(0x1000)
            actual = 0x2000 if direction else 0x3000
            if i > 1500 and pred.target != actual:
                misses += 1
            ittage.update(pred, actual)
            ittage.push_history(0x1000, True)
        assert misses < 30

    def test_unknown_pc_predicts_none(self):
        ittage = ITTAGE(ITTAGEConfig.small())
        assert ittage.predict(0x9999000).target is None

    def test_storage_small_below_large(self):
        assert ITTAGEConfig.small().storage_bits < ITTAGEConfig().storage_bits


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(BTBConfig(n_entries=64, ways=4))
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, BranchClass.UNCOND_DIRECT, 0x2000)
        entry = btb.lookup(0x1000)
        assert entry is not None
        assert entry.target == 0x2000
        assert entry.branch_class is BranchClass.UNCOND_DIRECT

    def test_lru_eviction(self):
        btb = BTB(BTBConfig(n_entries=8, ways=2))  # 4 sets
        set_stride = 4 * btb.config.n_sets  # PCs mapping to the same set
        pcs = [0x1000 + i * set_stride for i in range(3)]
        btb.update(pcs[0], BranchClass.UNCOND_DIRECT, 0x1)
        btb.update(pcs[1], BranchClass.UNCOND_DIRECT, 0x2)
        btb.lookup(pcs[0])  # refresh LRU
        btb.update(pcs[2], BranchClass.UNCOND_DIRECT, 0x3)  # evicts pcs[1]
        assert btb.peek(pcs[0]) is not None
        assert btb.peek(pcs[1]) is None
        assert btb.peek(pcs[2]) is not None

    def test_update_refreshes_target(self):
        btb = BTB(BTBConfig(n_entries=64, ways=4))
        btb.update(0x1000, BranchClass.CALL_INDIRECT, 0x2000)
        btb.update(0x1000, BranchClass.CALL_INDIRECT, 0x3000)
        assert btb.peek(0x1000).target == 0x3000

    def test_bank_mapping_stable_and_bounded(self):
        btb = BTB(BTBConfig(n_banks=16))
        for pc in range(0x1000, 0x2000, 4):
            bank = btb.bank_of(pc)
            assert 0 <= bank < 16
            assert bank == btb.bank_of(pc)

    def test_bank_override(self):
        btb = BTB(BTBConfig(n_banks=16))
        assert btb.bank_of(0x1000, n_banks=32) < 32

    def test_hit_rate_counting(self):
        btb = BTB(BTBConfig(n_entries=64, ways=4))
        btb.update(0x1000, BranchClass.UNCOND_DIRECT, 0x2000)
        btb.lookup(0x1000)
        btb.lookup(0x2000)
        assert btb.hit_rate == 0.5

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BTB(BTBConfig(n_entries=10, ways=4))


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(capacity=8)
        ras.push(0x1000)
        ras.push(0x2000)
        assert ras.pop() == 0x2000
        assert ras.pop() == 0x1000
        assert ras.pop() is None

    def test_peek(self):
        ras = ReturnAddressStack(capacity=4)
        assert ras.peek() is None
        ras.push(0x1234)
        assert ras.peek() == 0x1234
        assert len(ras) == 1

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(capacity=2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)  # overwrites 0x1
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None

    def test_copy_from_same_size(self):
        main = ReturnAddressStack(capacity=8)
        alt = ReturnAddressStack(capacity=8)
        for address in (0x1, 0x2, 0x3):
            main.push(address)
        alt.copy_from(main)
        assert alt.pop() == 0x3
        assert alt.pop() == 0x2
        # Original untouched.
        assert main.pop() == 0x3

    def test_copy_from_smaller_keeps_newest(self):
        main = ReturnAddressStack(capacity=64)
        alt = ReturnAddressStack(capacity=2)
        for address in range(1, 11):
            main.push(address)
        alt.copy_from(main)
        assert alt.pop() == 10
        assert alt.pop() == 9
        assert alt.pop() is None

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_never_underflows(self, ops):
        ras = ReturnAddressStack(capacity=4)
        model: list[int] = []
        for index, op in enumerate(ops):
            if op == "push":
                ras.push(index * 4)
                model.append(index * 4)
                model[:] = model[-4:]
            else:
                expected = model.pop() if model else None
                assert ras.pop() == expected
