"""Tests for the ``repro.observe`` instrumentation subsystem.

Covers the three tentpole properties:

* the stall-cycle taxonomy is an exact partition (buckets sum to total
  cycles) on the golden-six configurations;
* observation is side-effect free — commit streams, stats and interval
  samples are bit-identical with tracing on or off, and with idle-cycle
  skipping on or off;
* the sinks round-trip (JSONL header + events parse back; the Perfetto
  file is valid ``trace_event`` JSON with monotonic timestamps) and a
  hand-built three-branch scenario produces the exact expected
  mispredict/resolve event sequence.
"""

import json

import pytest

from repro.common.output import resolve_output_path
from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import Simulator
from repro.isa import BranchClass, Trace, TraceEntry
from repro.observe import (
    BUCKETS,
    EVENT_CATALOG,
    LANES,
    JsonlSink,
    PerfettoSink,
    load_jsonl,
    load_perfetto,
    make_observer,
    trace_level,
)
from repro.workloads import load_workload
from tests.test_golden_stats import CASES

N_INSTRUCTIONS = 3_000


def _run(trace, config, **kwargs):
    sim = Simulator(trace, config, **kwargs)
    result = sim.run()
    return sim, result


@pytest.fixture(scope="module")
def observed_golden():
    """One observed run per golden-six case (module-scoped: they're reused)."""
    runs = {}
    for (workload, label), config in CASES.items():
        trace = load_workload(workload, N_INSTRUCTIONS).trace
        runs[(workload, label)] = _run(trace, config, check=True, observe=True)
    return runs


class TestTaxonomyPartition:
    def test_buckets_sum_to_cycles_on_golden_six(self, observed_golden):
        for (workload, label), (sim, result) in observed_golden.items():
            taxonomy = sim.observer.taxonomy
            assert taxonomy.total == result.cycles, (workload, label, taxonomy.counts)
            assert set(taxonomy.counts) == set(BUCKETS)
            assert all(count >= 0 for count in taxonomy.counts.values())

    def test_attribution_never_exceeds_bucket(self, observed_golden):
        for (sim, _result) in observed_golden.values():
            taxonomy = sim.observer.taxonomy
            for bucket, table in taxonomy.by_pc.items():
                assert sum(table.values()) <= taxonomy.counts[bucket]

    def test_partition_check_raises_on_mismatch(self):
        from repro.observe import StallTaxonomy
        from repro.verify.invariants import SimCheckError

        taxonomy = StallTaxonomy()
        taxonomy.add("streaming", 5)
        taxonomy.check_partition(5)  # exact: fine
        with pytest.raises(SimCheckError):
            taxonomy.check_partition(6)

    def test_as_dict_and_render(self, observed_golden):
        sim, _ = observed_golden[("srv_05", "ucp")]
        exported = sim.observer.taxonomy.as_dict(top_k=3)
        assert set(exported) == {"cycles", "top", "top_mispredicted"}
        assert set(exported["cycles"]) == set(BUCKETS)
        rendered = sim.observer.taxonomy.render()
        for bucket in BUCKETS:
            assert bucket in rendered


class TestObservationIsSideEffectFree:
    @pytest.mark.parametrize("workload,label", [("int_02", "base"), ("srv_05", "ucp")])
    def test_commit_stream_and_stats_bit_identical(self, workload, label):
        config = CASES[(workload, label)]
        trace = load_workload(workload, N_INSTRUCTIONS).trace
        streams = {}
        results = {}
        for observe in (False, True):
            sim = Simulator(trace, config, observe=observe)
            stream = []
            sim.backend.commit_hook = stream.append
            results[observe] = sim.run()
            streams[observe] = stream
            assert (sim.observer is not None) is observe
        assert streams[False] == streams[True]
        assert results[False].cycles == results[True].cycles
        assert results[False].window == results[True].window
        assert results[False].totals.to_dict() == results[True].totals.to_dict()

    @pytest.mark.parametrize("workload,label", [("fp_01", "base"), ("srv_05", "ucp")])
    def test_taxonomy_and_intervals_identical_with_idle_skip(self, workload, label):
        config = CASES[(workload, label)]
        trace = load_workload(workload, N_INSTRUCTIONS).trace
        runs = {
            skip: _run(trace, config, check=True, observe=True, idle_skip=skip)
            for skip in (False, True)
        }
        (sim_a, res_a), (sim_b, res_b) = runs[False], runs[True]
        assert res_a.cycles == res_b.cycles
        assert res_a.intervals == res_b.intervals
        assert sim_a.observer.taxonomy.counts == sim_b.observer.taxonomy.counts
        assert sim_a.observer.taxonomy.by_pc == sim_b.observer.taxonomy.by_pc

    def test_trace_level_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_TRACE", raising=False)
        assert trace_level() == 0
        monkeypatch.setenv("REPRO_SIM_TRACE", "0")
        assert trace_level() == 0
        monkeypatch.setenv("REPRO_SIM_TRACE", "1")
        assert trace_level() == 1
        trace = load_workload("fp_01", 500).trace
        sim = Simulator(trace, SimConfig())
        assert sim.observer is not None
        monkeypatch.setenv("REPRO_SIM_TRACE", "0")
        assert make_observer(Simulator(trace, SimConfig())) is None


class TestIntervalMetrics:
    def test_samples_cover_the_run(self):
        trace = load_workload("int_02", N_INSTRUCTIONS).trace
        sim, result = _run(trace, SimConfig(), interval=512)
        samples = result.intervals
        assert samples, "expected at least one interval sample"
        # Boundaries are 512, 1024, ... plus a final partial sample.
        cycles = [sample["cycle"] for sample in samples]
        assert cycles == sorted(cycles)
        assert cycles[-1] == result.cycles
        for boundary in cycles[:-1]:
            assert boundary % 512 == 0
        # Windows tile the run exactly.
        assert sum(sample["window_cycles"] for sample in samples) == result.cycles
        assert samples[-1]["instructions"] == N_INSTRUCTIONS

    def test_interval_zero_disables_sampling(self):
        trace = load_workload("fp_01", 1_000).trace
        sim, result = _run(trace, SimConfig(), interval=0)
        assert sim.intervals is None
        assert result.intervals == []

    def test_env_override(self, monkeypatch):
        from repro.observe.metrics import DEFAULT_INTERVAL, interval_cycles

        monkeypatch.delenv("REPRO_SIM_INTERVAL", raising=False)
        assert interval_cycles() == DEFAULT_INTERVAL
        monkeypatch.setenv("REPRO_SIM_INTERVAL", "256")
        assert interval_cycles() == 256
        monkeypatch.setenv("REPRO_SIM_INTERVAL", "0")
        assert interval_cycles() == 0
        monkeypatch.setenv("REPRO_SIM_INTERVAL", "junk")
        assert interval_cycles() == DEFAULT_INTERVAL


def _three_branch_trace() -> Trace:
    """Two deterministic mispredicts around one correctly predicted return.

    A bare RETURN with an empty RAS always mispredicts (the BPU pops None);
    a CALL_DIRECT/RETURN pair always predicts correctly.  The scenario is
    therefore exact regardless of predictor contents.
    """
    n = BranchClass.NOT_BRANCH
    entries = [
        TraceEntry(0x1000, n),
        TraceEntry(0x1004, n),
        TraceEntry(0x1008, BranchClass.RETURN, taken=True, target=0x2000),
        TraceEntry(0x2000, n),
        TraceEntry(0x2004, BranchClass.CALL_DIRECT, taken=True, target=0x3000),
        TraceEntry(0x3000, n),
        TraceEntry(0x3004, BranchClass.RETURN, taken=True, target=0x2008),
        TraceEntry(0x2008, n),
        TraceEntry(0x200C, BranchClass.RETURN, taken=True, target=0x4000),
    ] + [TraceEntry(0x4000 + 4 * i, n) for i in range(8)]
    return Trace.from_entries("three_branch", entries)


class TestEventStream:
    def test_three_branch_scenario_event_sequence(self):
        sim, result = _run(_three_branch_trace(), SimConfig(), check=True, observe=True)
        observer = sim.observer
        mispredicts = [e for e in observer.events if e.kind == "branch_mispredict"]
        resolves = [e for e in observer.events if e.kind == "branch_resolve"]
        # Exactly the two bare returns mispredict; the paired return is
        # predicted by the RAS and the call is unconditionally correct.
        assert [e.pc for e in mispredicts] == [0x1008, 0x200C]
        assert all(e.data["flavor"] == "return" for e in mispredicts)
        assert [e.pc for e in resolves] == [0x1008, 0x200C]
        for mispredict, resolve in zip(mispredicts, resolves):
            assert mispredict.cycle <= resolve.cycle
        # Each mispredict opened a refill shadow; both closed by end of run.
        assert [pc for pc, _start, _end in observer.shadows] == [0x1008, 0x200C]
        for _pc, start, end in observer.shadows:
            assert start < end
        assert observer.taxonomy.mispredicts_by_pc == {0x1008: 1, 0x200C: 1}
        assert observer.taxonomy.total == result.cycles

    def test_events_cover_catalog_kinds_only(self, observed_golden):
        for (sim, _result) in observed_golden.values():
            for kind in sim.observer.counts_by_kind():
                assert kind in EVENT_CATALOG

    def test_ucp_events_present_on_h2p_heavy_run(self, observed_golden):
        sim, _ = observed_golden[("int_02", "ucp")]
        counts = sim.observer.counts_by_kind()
        assert counts.get("ucp_trigger", 0) > 0
        assert counts.get("ucp_alt_fill", 0) > 0
        assert counts.get("uop_fill", 0) > 0


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        sim, result = _run(_three_branch_trace(), SimConfig(), observe=True)
        path = tmp_path / "trace.jsonl"
        written = JsonlSink(path).write(sim.observer, result=result)
        header, events = load_jsonl(path)
        assert header["schema"] == 1
        assert header["events"] == written == len(events)
        assert header["cycles"] <= result.cycles
        kinds = {event["kind"] for event in events}
        assert "branch_mispredict" in kinds and "branch_resolve" in kinds
        cycles = [event["cycle"] for event in events]
        assert cycles == sorted(cycles)

    def test_jsonl_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "uop_fill", "cycle": 1}\n')
        with pytest.raises(ValueError):
            load_jsonl(path)

    def test_perfetto_round_trip(self, tmp_path):
        trace = load_workload("srv_05", N_INSTRUCTIONS).trace
        config = SimConfig(ucp=UCPConfig(enabled=True))
        sim, result = _run(trace, config, observe=True, interval=512)
        path = tmp_path / "trace.json"
        written = PerfettoSink(path).write(sim.observer, intervals=result.intervals)
        payload = load_perfetto(path)
        events = payload["traceEvents"]
        assert written == len(events)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == set(LANES)
        timed = [e for e in events if e["ph"] != "M"]
        timestamps = [e["ts"] for e in timed]
        assert timestamps == sorted(timestamps)
        assert any(e["ph"] == "X" and e["name"] == "refill_shadow" for e in timed)
        assert any(e["ph"] == "C" and e["name"] == "ipc" for e in timed)
        for event in timed:
            if event["ph"] == "i":
                assert event["tid"] in LANES.values()

    def test_perfetto_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_perfetto(path)


class TestOutputPathHelper:
    def test_bare_name_lands_in_bench_out(self, tmp_path, monkeypatch):
        out = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_BENCH_OUT", str(out))
        resolved = resolve_output_path("report.json")
        assert resolved == out / "report.json"
        assert out.is_dir()  # created on demand

    def test_bare_name_without_env_stays_relative(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
        from pathlib import Path

        assert resolve_output_path("report.json") == Path("report.json")

    def test_explicit_paths_pass_through(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "elsewhere"))
        explicit = tmp_path / "here" / "report.json"
        assert resolve_output_path(str(explicit)) == explicit
        assert resolve_output_path("sub/report.json").as_posix() == "sub/report.json"


class TestCli:
    def test_trace_perfetto(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "out.trace.json"
        assert (
            main(
                [
                    "trace",
                    "fp_01",
                    "--instructions",
                    "2000",
                    "--check",
                    "--output",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stall-cycle taxonomy" in out
        assert load_perfetto(path)["otherData"]["schema"] == 1

    def test_trace_jsonl_respects_bench_out(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert (
            main(["trace", "fp_01", "--instructions", "2000", "--format", "jsonl"]) == 0
        )
        header, _events = load_jsonl(tmp_path / "fp_01.jsonl")
        assert header["kind"] == "header"

    def test_metrics_table_and_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "metrics",
                    "int_02",
                    "--instructions",
                    "3000",
                    "--interval",
                    "512",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interval metrics" in out and "stall-cycle taxonomy" in out
        payload = json.loads(path.read_text())
        assert payload["intervals"]
        assert set(payload["taxonomy"]["cycles"]) == set(BUCKETS)

    def test_simulate_trace_flag(self, capsys):
        from repro.cli import main

        assert main(["simulate", "fp_01", "--instructions", "2000", "--trace"]) == 0
        assert "stall-cycle taxonomy" in capsys.readouterr().out


class TestResultSerialization:
    def test_sim_result_round_trips_through_dict(self):
        trace = load_workload("int_02", 2_000).trace
        config = SimConfig(ucp=UCPConfig(enabled=True))
        _sim, result = _run(trace, config, interval=512)
        rebuilt = type(result).from_dict(result.to_dict(), config)
        assert rebuilt.cycles == result.cycles
        assert rebuilt.window == result.window
        assert rebuilt.intervals == result.intervals
        assert rebuilt.totals.to_dict() == result.totals.to_dict()
        assert rebuilt.ipc == result.ipc

    def test_from_dict_rejects_wrong_schema(self):
        from repro.core.pipeline import SimResult

        with pytest.raises(ValueError):
            SimResult.from_dict({"schema": 999}, SimConfig())

    def test_stat_block_round_trip(self):
        from repro.common.stats import StatBlock

        block = StatBlock("demo")
        block.add("hits", 3)
        rebuilt = StatBlock.from_dict(block.to_dict())
        assert rebuilt.to_dict() == block.to_dict()
        with pytest.raises(ValueError):
            StatBlock.from_dict({"schema": 999, "name": "x", "counters": {}})
