"""Tests for the FTQ, BPU, and fetch engine."""

import pytest

from repro.common.stats import StatBlock
from repro.core.configs import SimConfig
from repro.frontend.bpu import BPU
from repro.frontend.ftq import FTQ, FetchBlock
from repro.isa import BranchClass, Trace, TraceEntry


class TestFTQ:
    def test_push_pop(self):
        ftq = FTQ(capacity=16)
        ftq.push(FetchBlock(0, 8))
        ftq.push(FetchBlock(8, 4))
        assert ftq.occupancy == 12
        assert len(ftq) == 2
        block = ftq.pop()
        assert block.start_index == 0
        assert ftq.occupancy == 4

    def test_capacity_enforced(self):
        ftq = FTQ(capacity=8)
        ftq.push(FetchBlock(0, 8))
        assert not ftq.has_room(1)
        with pytest.raises(OverflowError):
            ftq.push(FetchBlock(8, 1))

    def test_clear(self):
        ftq = FTQ(capacity=16)
        ftq.push(FetchBlock(0, 8))
        ftq.clear()
        assert ftq.occupancy == 0
        assert not ftq

    def test_head_without_pop(self):
        ftq = FTQ()
        assert ftq.head() is None
        ftq.push(FetchBlock(0, 4))
        assert ftq.head().start_index == 0
        assert len(ftq) == 1

    def test_block_end_index(self):
        block = FetchBlock(10, 6, ends_taken=True)
        assert block.end_index == 16


def straight_line_trace(n=64):
    return Trace.from_entries(
        "straight", [TraceEntry(0x1000 + 4 * i) for i in range(n)]
    )


def loop_trace(iterations=8, body=6):
    """A taken backward branch every `body` instructions."""
    entries = []
    for _ in range(iterations):
        for i in range(body - 1):
            entries.append(TraceEntry(0x1000 + 4 * i))
        entries.append(
            TraceEntry(0x1000 + 4 * (body - 1), BranchClass.COND_DIRECT, True, 0x1000)
        )
    return Trace.from_entries("loop", entries)


class TestBPU:
    def _bpu(self, trace):
        config = SimConfig()
        return BPU(config, trace, StatBlock())

    def test_straight_line_blocks(self):
        trace = straight_line_trace(32)
        bpu = self._bpu(trace)
        ftq = FTQ(192)
        bpu.generate(ftq, cycle=0)
        # 2 blocks of 8 per cycle.
        assert ftq.occupancy == 16
        first = ftq.pop()
        assert first.start_index == 0
        assert first.count == 8
        assert not first.ends_taken
        assert not first.mispredicted

    def test_taken_branch_ends_block(self):
        trace = loop_trace(iterations=10, body=6)
        bpu = self._bpu(trace)
        ftq = FTQ(192)
        # Warm the predictor so the loop branch predicts taken; early
        # instances may mispredict and stall.
        for cycle in range(200):
            bpu.generate(ftq, cycle)
            if bpu.stalled_on is not None:
                bpu.redirect(cycle)
            while ftq:
                ftq.pop()
            if bpu.index >= len(trace):
                break
        assert bpu.index == len(trace)

    def test_mispredict_stalls_generation(self):
        # A branch that is never taken except the last time: the predictor
        # will mispredict that final instance.
        entries = []
        for i in range(20):
            entries.append(TraceEntry(0x1000 + 8 * i))
            taken = i == 19
            entries.append(
                TraceEntry(
                    0x1004 + 8 * i, BranchClass.COND_DIRECT, taken, 0x1000 if taken else 0
                )
            )
        trace = Trace.from_entries("bias", entries)
        bpu = self._bpu(trace)
        ftq = FTQ(400)
        stalled_seen = False
        for cycle in range(400):
            bpu.generate(ftq, cycle)
            if bpu.stalled_on is not None:
                stalled_seen = True
                break
        assert stalled_seen
        index = bpu.stalled_on
        assert trace.branch_classes[index] == BranchClass.COND_DIRECT
        # Redirect resumes generation.
        bpu.redirect(cycle)
        assert bpu.stalled_on is None
        assert bpu.resume_cycle == cycle + SimConfig().frontend.redirect_latency

    def test_redirect_without_stall_raises(self):
        bpu = self._bpu(straight_line_trace(8))
        with pytest.raises(RuntimeError):
            bpu.redirect(0)

    def test_btb_learns_taken_branches(self):
        trace = loop_trace(iterations=6, body=4)
        bpu = self._bpu(trace)
        ftq = FTQ(400)
        for cycle in range(200):
            bpu.generate(ftq, cycle)
            if bpu.stalled_on is not None:
                bpu.redirect(cycle)
            while ftq:
                ftq.pop()
            if bpu.index >= len(trace):
                break
        branch_pc = 0x1000 + 4 * 3
        assert bpu.btb.peek(branch_pc) is not None
        assert bpu.btb.peek(branch_pc).target == 0x1000

    def test_branch_hook_called(self):
        trace = loop_trace(iterations=4, body=4)
        bpu = self._bpu(trace)
        events = []
        bpu.branch_hook = lambda event, cycle: events.append(event)
        ftq = FTQ(400)
        for cycle in range(100):
            bpu.generate(ftq, cycle)
            if bpu.stalled_on is not None:
                bpu.redirect(cycle)
            while ftq:
                ftq.pop()
            if bpu.index >= len(trace):
                break
        assert len(events) == 4  # one per dynamic conditional
        assert all(e.pc == 0x100C for e in events)
