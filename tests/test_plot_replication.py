"""Tests for terminal plotting and multi-seed replication."""

import pytest

from repro.analysis.plot import bar_chart, series_plot, sparkline
from repro.analysis.replication import ReplicationResult, replicate_speedup
from repro.core import SimConfig


class TestBarChart:
    def test_positive_bars(self):
        text = bar_chart("T", ["a", "bb"], [1.0, 2.0], width=10, unit="%")
        assert "T" in text
        assert "2.00%" in text
        lines = text.splitlines()
        assert lines[3].count("#") > lines[2].count("#")

    def test_negative_bars_extend_left(self):
        text = bar_chart("T", ["neg", "pos"], [-1.0, 1.0], width=10)
        neg_line = next(line for line in text.splitlines() if "neg" in line)
        pos_line = next(line for line in text.splitlines() if "pos" in line)
        assert "#|" in neg_line
        assert "|#" in pos_line

    def test_empty(self):
        assert "(no data)" in bar_chart("T", [], [])

    def test_all_zero(self):
        text = bar_chart("T", ["x"], [0.0])
        assert "0.00" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart("T", ["a"], [1.0, 2.0])


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] < line[-1]  # block characters are ordered

    def test_flat_series(self):
        assert sparkline([2, 2, 2]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestSeriesPlot:
    def test_renders_markers_and_legend(self):
        text = series_plot(
            "P", ["a", "b", "c"], {"one": [1, 2, 3], "two": [3, 2, 1]}, height=5
        )
        assert "legend: * one   o two" in text
        assert "*" in text and "o" in text

    def test_empty(self):
        assert "(no data)" in series_plot("P", [], {})


class TestReplication:
    def test_statistics(self):
        result = ReplicationResult("w", [1, 2, 3], [1.0, 2.0, 3.0])
        assert result.mean == pytest.approx(2.0)
        low, high = result.confidence_interval()
        assert low < 2.0 < high

    def test_single_sample_degenerate(self):
        result = ReplicationResult("w", [1], [5.0])
        assert result.confidence_interval() == (5.0, 5.0)
        assert result.std == 0.0

    def test_significance(self):
        tight = ReplicationResult("w", [1, 2, 3, 4], [1.0, 1.1, 0.9, 1.0])
        noisy = ReplicationResult("w", [1, 2, 3, 4], [-5.0, 5.0, -4.0, 4.0])
        assert tight.significant()
        assert not noisy.significant()

    def test_replicate_speedup_runs(self):
        result = replicate_speedup(
            "fp_01",
            SimConfig(),
            SimConfig().without_uop_cache(),
            n_seeds=2,
            n_instructions=3_000,
        )
        assert len(result.speedups_pct) == 2
        assert result.seeds[0] != result.seeds[1]
        repr(result)  # formatting path

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            replicate_speedup("nope", SimConfig(), SimConfig(), n_seeds=1)
