"""Mutation-catch tests: every injected fault must be detected.

This is the sanitizer's own regression suite — if an invariant or oracle
is weakened to the point that one of these deliberate bugs slips through,
the corresponding test fails.
"""

import pytest

from repro.branch.ras import ReturnAddressStack
from repro.caches.cache import SetAssocCache
from repro.caches.uopcache import UopCache
from repro.core.backend import Backend
from repro.frontend.fetch import FetchEngine
from repro.frontend.ftq import FTQ
from repro.verify.faults import FAULTS, run_fault
from repro.verify.invariants import SimCheckError


def test_registry_has_at_least_five_faults():
    assert len(FAULTS) >= 5


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_fault_is_caught(name):
    outcome = run_fault(name)
    assert outcome.caught, outcome.render()
    assert outcome.invariant in FAULTS[name].expected_invariants


def test_patches_are_restored_after_runs():
    originals = {
        UopCache: UopCache.insert,
        FTQ: FTQ.pop,
        ReturnAddressStack: ReturnAddressStack.push,
        Backend: Backend.commit,
        FetchEngine: FetchEngine._deliver,
        SetAssocCache: SetAssocCache.access,
    }
    for name in FAULTS:
        run_fault(name)
    assert UopCache.insert is originals[UopCache]
    assert FTQ.pop is originals[FTQ]
    assert ReturnAddressStack.push is originals[ReturnAddressStack]
    assert Backend.commit is originals[Backend]
    assert FetchEngine._deliver is originals[FetchEngine]
    assert SetAssocCache.access is originals[SetAssocCache]


def test_patch_restored_even_when_run_raises():
    fault = FAULTS["ftq-leak"]
    original = FTQ.pop
    with pytest.raises(ZeroDivisionError):
        with fault.inject():
            assert FTQ.pop is not original
            raise ZeroDivisionError
    assert FTQ.pop is original


class TestFaultListingCompleteness:
    """`repro verify --list-faults` must cover every registry, and every
    registered fault must have a committed proof that it is caught.

    A fault added to any registry but missing from the listing (or from a
    mutation-catch suite) would ship silently — exactly the drift this
    test pins down.
    """

    def _all_registries(self):
        from repro.verify.kernel_faults import KERNEL_FAULTS
        from repro.verify.service_faults import SERVICE_FAULTS

        return {**FAULTS, **SERVICE_FAULTS, **KERNEL_FAULTS}

    def test_registries_do_not_collide(self):
        from repro.verify.kernel_faults import KERNEL_FAULTS
        from repro.verify.service_faults import SERVICE_FAULTS

        registries = [set(FAULTS), set(SERVICE_FAULTS), set(KERNEL_FAULTS)]
        combined = set().union(*registries)
        assert len(combined) == sum(len(r) for r in registries)

    def test_every_registered_fault_is_listed(self, capsys):
        from repro.cli import main

        assert main(["verify", "--list-faults"]) == 0
        listing = capsys.readouterr().out
        for name in self._all_registries():
            assert name in listing, f"{name} missing from --list-faults"

    def test_every_registered_fault_dispatches_via_inject(self):
        """--inject must recognise every registered name (dispatch drift:
        listed but not injectable)."""
        import repro.cli as cli

        source = open(cli.__file__, encoding="utf-8").read()
        for registry in ("FAULTS", "SERVICE_FAULTS", "KERNEL_FAULTS"):
            assert f"args.inject in {registry}" in source, (
                f"--inject does not dispatch on {registry}"
            )

    def test_every_fault_is_provably_caught(self):
        """Each registry's sensitivity proof: run one representative from
        the harness entry points that CI exercises exhaustively in the
        parametrized suites (test_verify_faults / test_serve_faults /
        test_kernel_faults)."""
        from repro.verify.kernel_faults import KERNEL_FAULTS, run_kernel_fault
        from repro.verify.service_faults import SERVICE_FAULTS, run_service_fault

        assert run_fault(next(iter(FAULTS))).caught
        assert run_service_fault(next(iter(SERVICE_FAULTS))).caught
        assert run_kernel_fault(next(iter(KERNEL_FAULTS))).caught


def test_differential_oracle_catches_dup_without_cycle_checks():
    """The commit-stream oracle alone (no per-cycle invariants) sees the
    duplicated µ-op: the retired sequence stops matching trace order."""
    from repro.core.configs import SimConfig
    from repro.verify.differential import check_commit_stream

    fault = FAULTS["fetch-dup"]
    with fault.inject():
        with pytest.raises(SimCheckError) as caught:
            check_commit_stream("int_02", SimConfig(), 2_000, check=False)
    assert caught.value.invariant == "commit-stream-oracle"
