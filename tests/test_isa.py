"""Tests for the instruction model and trace container."""

import numpy as np
import pytest

from repro.isa import INSTRUCTION_SIZE, BranchClass, Trace, TraceEntry


class TestBranchClass:
    def test_flags(self):
        assert not BranchClass.NOT_BRANCH.is_branch
        assert BranchClass.COND_DIRECT.is_conditional
        assert BranchClass.CALL_DIRECT.is_call
        assert BranchClass.CALL_INDIRECT.is_call
        assert BranchClass.RETURN.is_return
        assert BranchClass.INDIRECT.is_indirect
        assert BranchClass.CALL_INDIRECT.is_indirect
        assert not BranchClass.COND_DIRECT.is_indirect

    def test_unconditional(self):
        assert BranchClass.UNCOND_DIRECT.is_unconditional
        assert BranchClass.RETURN.is_unconditional
        assert not BranchClass.COND_DIRECT.is_unconditional
        assert not BranchClass.NOT_BRANCH.is_unconditional

    def test_needs_btb(self):
        assert BranchClass.COND_DIRECT.needs_btb
        assert BranchClass.UNCOND_DIRECT.needs_btb
        assert BranchClass.CALL_DIRECT.needs_btb
        assert not BranchClass.RETURN.needs_btb
        assert not BranchClass.INDIRECT.needs_btb


class TestTraceEntry:
    def test_next_pc_fallthrough(self):
        entry = TraceEntry(pc=0x1000)
        assert entry.next_pc == 0x1004
        assert entry.fallthrough == 0x1004

    def test_next_pc_taken(self):
        entry = TraceEntry(0x1000, BranchClass.COND_DIRECT, True, 0x2000)
        assert entry.next_pc == 0x2000

    def test_not_taken_conditional_falls_through(self):
        entry = TraceEntry(0x1000, BranchClass.COND_DIRECT, False, 0)
        assert entry.next_pc == 0x1004

    def test_misaligned_pc_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(pc=0x1001)

    def test_not_taken_unconditional_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(0x1000, BranchClass.UNCOND_DIRECT, False, 0x2000)

    def test_taken_non_branch_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(0x1000, BranchClass.NOT_BRANCH, True, 0x2000)


def _simple_entries():
    return [
        TraceEntry(0x1000),
        TraceEntry(0x1004, BranchClass.COND_DIRECT, True, 0x2000),
        TraceEntry(0x2000),
        TraceEntry(0x2004, BranchClass.UNCOND_DIRECT, True, 0x1000),
        TraceEntry(0x1000),
        TraceEntry(0x1004, BranchClass.COND_DIRECT, False, 0x2000),
        TraceEntry(0x1008),
    ]


class TestTrace:
    def test_roundtrip_entries(self):
        trace = Trace.from_entries("t", _simple_entries())
        assert len(trace) == 7
        assert trace[1].taken is True
        assert trace[1].branch_class is BranchClass.COND_DIRECT
        assert trace[5].taken is False
        assert list(trace)[0].pc == 0x1000

    def test_next_pcs(self):
        trace = Trace.from_entries("t", _simple_entries())
        assert trace.next_pcs[0] == 0x1004
        assert trace.next_pcs[1] == 0x2000
        assert trace.next_pcs[5] == 0x1008

    def test_validate_consistent(self):
        trace = Trace.from_entries("t", _simple_entries())
        trace.validate()  # should not raise

    def test_validate_broken_flow(self):
        entries = [_e for _e in _simple_entries()]
        entries[2] = TraceEntry(0x3000)  # wrong: branch targeted 0x2000
        trace = Trace.from_entries("t", entries)
        with pytest.raises(ValueError, match="broken at index 1"):
            trace.validate()

    def test_validate_not_taken_unconditional(self):
        trace = Trace.from_entries("t", _simple_entries())
        # Corrupt the columnar storage directly (bypasses TraceEntry checks).
        trace.takens[3] = False
        with pytest.raises(ValueError, match="not-taken unconditional"):
            trace.validate()

    def test_stats(self):
        trace = Trace.from_entries("t", _simple_entries())
        stats = trace.stats()
        assert stats.instructions == 7
        assert stats.static_instructions == 5  # 0x1000/4/8, 0x2000/4
        assert stats.conditional_branches == 2
        assert stats.taken_conditionals == 1
        assert stats.branches == 3
        assert stats.conditional_taken_rate == 0.5
        assert stats.static_code_bytes == 5 * INSTRUCTION_SIZE

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace.from_entries("roundtrip", _simple_entries())
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "roundtrip"
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.pcs, trace.pcs)
        assert np.array_equal(loaded.takens, trace.takens)
        assert np.array_equal(loaded.next_pcs, trace.next_pcs)

    def test_inconsistent_columns_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                "bad",
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.uint8),
                np.zeros(3, dtype=bool),
                np.zeros(3, dtype=np.int64),
            )

    def test_empty_trace(self):
        trace = Trace.from_entries("empty", [])
        assert len(trace) == 0
        trace.validate()
