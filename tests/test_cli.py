"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestWorkloadsCommand:
    def test_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "srv_01" in out and "crypto_01" in out and "fp_01" in out


class TestSimulateCommand:
    def test_baseline(self, capsys):
        assert main(["simulate", "fp_01", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "hit rate" in out

    def test_ucp_report(self, capsys):
        assert main(
            ["simulate", "int_03", "--instructions", "5000", "--ucp"]
        ) == 0
        out = capsys.readouterr().out
        assert "UCP walks" in out
        assert "prefetch accuracy" in out

    def test_ucp_variant_implies_ucp(self, capsys):
        assert main(
            [
                "simulate",
                "int_03",
                "--instructions",
                "4000",
                "--ucp-variant",
                "till-l1i",
            ]
        ) == 0
        assert "UCP walks" in capsys.readouterr().out

    def test_no_uop_cache(self, capsys):
        assert main(
            ["simulate", "fp_01", "--instructions", "3000", "--no-uop-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "hit rate 0.0%" in out

    def test_mutually_exclusive_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "fp_01", "--no-uop-cache", "--ideal-uop-cache"])

    def test_unknown_workload_rejected(self, capsys):
        # Workload names resolve at run time (suite + ingested store), so
        # an unknown name is a clean exit-2 with a choose-from message,
        # not an argparse SystemExit.
        assert main(["simulate", "not_a_workload"]) == 2
        assert "not_a_workload" in capsys.readouterr().err

    def test_prefetcher_and_mrc(self, capsys):
        assert main(
            [
                "simulate",
                "srv_02",
                "--instructions",
                "4000",
                "--prefetcher",
                "fnl_mma",
                "--mrc",
                "64",
            ]
        ) == 0


class TestExperimentCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestCacheCommand:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        import repro.analysis.runner as runner

        monkeypatch.setenv("REPRO_SIM_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SIM_CACHE", "1")
        runner._memory_cache.clear()
        self.cache_dir = tmp_path

    def test_stats(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(self.cache_dir) in out
        assert "disk entries   0" in out

    def test_clear_reports_count(self, capsys):
        from repro.analysis.runner import run_cached
        from repro.core import SimConfig

        run_cached("fp_01", SimConfig(), 2_000)
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached result(s)" in capsys.readouterr().out

    def test_verify_flags_corruption_and_fixes(self, capsys):
        from repro.analysis.runner import run_cached
        from repro.core import SimConfig

        run_cached("fp_01", SimConfig(), 2_000)
        bad = self.cache_dir / ("f" * 32 + ".pkl")
        bad.write_bytes(b"garbage")
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "ok      1" in out and "corrupt 1" in out
        # --fix deletes the bad entry but still exits non-zero: scripts
        # gate on "corruption was found", not "the cache is clean now".
        assert main(["cache", "verify", "--fix"]) == 1
        assert not bad.exists()
        assert main(["cache", "verify"]) == 0

    def test_action_required(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestVerifyCommand:
    def test_list_faults_includes_service_registry(self, capsys):
        assert main(["verify", "--list-faults"]) == 0
        out = capsys.readouterr().out
        # Model faults (PR 2 registry) and service faults side by side.
        assert "worker-killed" in out
        assert "slow-worker" in out
        assert "expected: error code worker-crash" in out

    def test_unknown_fault_exits_two(self, capsys):
        assert main(["verify", "--inject", "no-such-fault"]) == 2
        assert "unknown fault" in capsys.readouterr().out


class TestServeCommand:
    def test_argument_parsing(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--port", "7000", "--shards", "3", "--mode", "thread",
             "--job-timeout", "5.5", "--max-pending", "64"]
        )
        assert args.command == "serve"
        assert args.port == 7000 and args.shards == 3
        assert args.mode == "thread" and args.job_timeout == 5.5
        assert args.max_pending == 64

    def test_bad_mode_rejected(self):
        from repro.cli import _build_parser

        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve", "--mode", "fibers"])


class TestExportCommand:
    def test_export_text(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        assert main(
            ["export", "crypto_01", str(path), "--instructions", "400"]
        ) == 0
        content = path.read_text()
        assert "# trace: crypto_01" in content
        assert "NOT_BRANCH" in content

    def test_export_npz_roundtrip(self, tmp_path):
        from repro.isa import Trace

        path = tmp_path / "trace.npz"
        assert main(
            ["export", "crypto_01", str(path), "--instructions", "400"]
        ) == 0
        loaded = Trace.load(path)
        assert len(loaded) == 400
        loaded.validate()


class TestLintCommand:
    BAD = "import random\n\ndef pick(items):\n    return random.choice(items)\n"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out

    def test_json_report(self, tmp_path, capsys):
        import json

        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD)
        assert main(["lint", "--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 2
        assert payload["counts_by_rule"] == {"SIM001": 1}
        finding = payload["findings"][0]
        assert finding["effects"] == []
        assert finding["call_path"] == []

    def test_callgraph_out_writes_artifact(self, tmp_path, capsys):
        import json

        out = tmp_path / "callgraph.json"
        assert main(["lint", "src", "--callgraph-out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1
        qnames = {entry["qname"] for entry in payload["functions"]}
        assert "repro.serve.scheduler.Scheduler.submit" in qnames
        assert payload["edges"]

    def test_callgraph_out_written_even_with_findings(self, tmp_path, capsys):
        import json

        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.BAD)
        out = tmp_path / "callgraph.json"
        assert main(["lint", str(tmp_path), "--callgraph-out", str(out)]) == 1
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert "repro.core.bad.pick" in {
            entry["qname"] for entry in payload["functions"]
        }

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "SIM004"]) == 0
        out = capsys.readouterr().out
        assert "pointer test" in out and "bad:" in out and "good:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "sim001"]) == 0
        assert "SIM001" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--explain", "SIM999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM004", "SIM007"):
            assert code in out

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "SIM000" in capsys.readouterr().out
