"""Legacy setup shim.

The PEP 660 editable-install path requires the `wheel` package; this shim
keeps `pip install -e .` working in offline environments without it (pip
falls back to `setup.py develop` when no build backend is declared).
All metadata lives in setup.cfg / pyproject.toml.
"""

from setuptools import setup

setup()
