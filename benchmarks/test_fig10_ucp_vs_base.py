"""Bench: Fig. 10 — UCP and baseline IPC relative to no µ-op cache.

Paper: UCP lifts the share of applications benefiting from a µ-op cache
from 80.7% to 90%, with remaining slowdowns below 0.8%.
"""

from conftest import run_once

from repro.experiments import fig10_ucp_vs_base as experiment


def test_fig10_ucp_vs_base(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig10", experiment.render(result))
    # Shape: UCP benefits at least as many traces as the baseline.
    assert result.ucp_fraction_benefiting >= result.base_fraction_benefiting - 1e-9
    # Shape: UCP never turns the µ-op cache into a large loss.
    for _name, _base_pct, ucp_pct in result.rows:
        assert ucp_pct > -2.0
