"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure at the QUICK scale,
prints the rendered table, saves it under ``benchmarks/out/``, and asserts
the qualitative shape the paper reports.  Simulation results are shared
across benchmarks through the disk cache in ``.simcache/`` (relocatable
via ``REPRO_SIM_CACHE_DIR``), and every figure's simulations route
through the parallel execution engine — set ``REPRO_SIM_JOBS`` to fan
uncached runs out across worker processes (results are bit-identical to
the serial path; see ``docs/EXPERIMENT_ENGINE.md``).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_SIM_JOBS=8 pytest benchmarks/ --benchmark-only   # parallel sims

For the full-scale reproduction (all 16 workloads, 40K instructions), set
``REPRO_BENCH_SCALE=full`` — expect a long runtime on first (uncached)
execution; ``REPRO_SIM_JOBS`` cuts that roughly by the core count.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import FULL, QUICK

@pytest.fixture(scope="session")
def scale():
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else QUICK


@pytest.fixture(scope="session")
def bench_environment() -> dict:
    """The execution-mode stamp every BENCH payload must carry.

    Measurements taken under the batched kernel (``REPRO_SIM_KERNEL=1``,
    the default) and the interpreter are not comparable; the perf gate
    fails loudly on a stamp mismatch instead of silently comparing a
    kernel run against an interpreter baseline (or vice versa).
    """
    import sys

    sys.path.insert(0, str(Path(__file__).parent / "perf"))
    import perf_bench_lib as lib

    environment = lib.bench_environment()
    print(f"\nbench environment: {environment}")
    return environment


@pytest.fixture(scope="session")
def bench_out_dir(tmp_path_factory) -> Path:
    """Where rendered tables and BENCH artifacts land.

    ``REPRO_BENCH_OUT`` names a directory to keep (CI sets it and uploads
    the artifacts); unset, everything goes to a pytest-managed temp dir so
    a plain ``pytest benchmarks/`` never dirties the working tree.
    """
    override = os.environ.get("REPRO_BENCH_OUT")
    out_dir = Path(override) if override else tmp_path_factory.mktemp("bench-out")
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir


@pytest.fixture()
def report(bench_out_dir):
    """Print a rendered experiment table and persist it under the out dir."""

    def _report(name: str, text: str) -> None:
        (bench_out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
