"""Bench: Fig. 7 — misprediction contribution per TAGE-SC-L component.

Paper: HitBank 66.7%, SC 11.1%, AltBank 8.1%, bimodal 6.2% (+7.5% with a
recent bimodal miss), loop predictor 0.1%.  Our shorter, colder traces
shift weight from HitBank toward the bimodal providers, but the structure
— tagged/bimodal providers dominate, the loop predictor is negligible —
holds.
"""

from conftest import run_once

from repro.branch.tage_sc_l import Provider
from repro.experiments import fig07_contributions as experiment


def test_fig07_component_contrib(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig07", experiment.render(result))
    total = sum(share for _miss, share in result.shares.values())
    assert abs(total - 100.0) < 0.5
    # Shape: the loop predictor contributes almost nothing.
    assert result.share(Provider.LOOP) < 10.0
    # Shape: the direction providers (tagged + bimodal) dominate.
    direction = (
        result.share(Provider.HITBANK)
        + result.share(Provider.ALTBANK)
        + result.share(Provider.BIMODAL)
        + result.share(Provider.BIMODAL_1IN8)
    )
    assert direction > 50.0
