"""Bench: Fig. 11 — per-trace UCP speedup vs conditional MPKI.

Paper: 2% average speedup (up to 12%); the biggest winners have clearly
higher conditional MPKI (6.17 vs the 1.56 average) — refill acceleration
pays where refills are frequent.
"""

from conftest import run_once

from repro.experiments import fig11_speedup_mpki as experiment


def test_fig11_speedup_mpki(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig11", experiment.render(result))
    # Shape: UCP helps on average, and no trace degrades noticeably.
    assert result.geomean_pct > -0.2
    for _name, speedup, _mpki in result.rows:
        assert speedup > -1.5
    # Shape: higher-MPKI traces gain more (top half vs bottom half).
    assert result.correlation_positive()
