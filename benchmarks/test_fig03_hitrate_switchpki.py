"""Bench: Fig. 3 — µ-op cache hit rate and switch PKI.

Paper: amean hit rate 71.6% (range ~30.7–99%); low-hit traces suffer many
more build/stream switches (up to ~22 PKI).
"""

from conftest import run_once

from repro.experiments import fig03_hitrate_switches as experiment


def test_fig03_hitrate_switchpki(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig03", experiment.render(result))
    # Shape: the suite spans over-subscribed and comfortably-fitting
    # footprints.
    hits = [hit for _, hit, _ in result.rows]
    assert min(hits) < 75.0
    assert max(hits) > 90.0
    assert 35.0 < result.mean_hit_rate < 95.0
    # Shape: traces in the bottom half of hit rate switch modes more.
    half = len(result.rows) // 2
    low = [pki for _, _, pki in result.rows[:half]]
    high = [pki for _, _, pki in result.rows[half:]]
    if low and high:
        assert sum(low) / len(low) >= sum(high) / len(high)
