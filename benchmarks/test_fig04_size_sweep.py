"""Bench: Fig. 4 — µ-op cache size sweep vs ideal.

Paper: 4K→64Kops lifts the hit rate from 71.6% to 91.2% but IPC by only
~1.2%; the ideal µ-op cache stands far above (10.8% average) — capacity
alone cannot close the gap.
"""

from conftest import run_once

from repro.experiments import fig04_size_sweep as experiment


def test_fig04_size_sweep(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig04", experiment.render(result))
    # Shape: hit rate grows clearly with capacity (bounded by compulsory
    # first-build misses at our trace scale, so no absolute ceiling).
    hits = [hit for _, _, hit in result.rows]
    assert hits[-1] >= hits[0] + 5.0
    # Shape: even 16x capacity captures only a fraction of the ideal gain.
    assert result.speedup_of("64Kops") < 0.6 * result.ideal_speedup_pct
    # Shape: the ideal cache dominates every finite size.
    for label, speedup, _hit in result.rows:
        assert result.ideal_speedup_pct >= speedup - 0.5, label
