"""Bench: Fig. 6 — per-component, per-confidence misprediction rates.

Paper: saturated HitBank/bimodal counters barely miss; bimodal with a
recent miss (>1in8) misses >6% even when saturated; AltBank misses heavily
at any counter value; confident loop predictions are reliable (<3%); SC
miss rates are substantial at every |LSUM| band.
"""

from conftest import run_once

from repro.branch.tage_sc_l import Provider
from repro.experiments import fig06_conf_missrate as experiment


def test_fig06_conf_missrate(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig06", experiment.render(result))

    hitbank = result.provider_rates(Provider.HITBANK)
    saturated = [hitbank[v] for v in (3, -4) if v in hitbank]
    weak = [hitbank[v] for v in (0, -1) if v in hitbank]
    if saturated and weak:
        # Shape: weak counters miss more than saturated ones.
        assert min(weak) >= max(saturated) - 5.0
        # Shape: saturated HitBank counters are trustworthy.
        assert max(saturated) < 20.0

    loop = result.provider_rates(Provider.LOOP)
    confident_loop = [rate for conf, rate in loop.items() if conf >= 3]
    if confident_loop:
        # Shape: confident loop predictions are near-perfect.
        assert max(confident_loop) < 10.0

    sc = result.provider_rates(Provider.SC)
    if sc:
        # Shape: SC predictions keep a substantial miss rate at any band.
        assert max(sc.values()) > 10.0
