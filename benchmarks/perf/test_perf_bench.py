"""Perf-regression benchmark suite over the pinned workload subset.

Three guarantees, in dependency order:

1. **Bit identity** — with the PR 2 differential oracle armed
   (``check=True``, the ``REPRO_SIM_CHECK=1`` path), every pinned case
   retires exactly the trace-replay commit stream and reproduces the
   golden stats in ``tests/golden/`` down to the last cycle.  The
   optimized hot path is only allowed to be *faster*, never different.
2. **Telemetry** — the suite measures wall time / cycles-per-second /
   instructions-per-second for every pinned case and writes
   ``BENCH_sim.json`` (to ``REPRO_BENCH_OUT`` if set, else the pytest
   tmp dir) so every CI run leaves a throughput trajectory artifact.
3. **Regression gate** — geomean *normalized* throughput (simulated
   instr/sec over a fixed pure-Python calibration loop) must stay within
   25% of the committed ``BENCH_baseline.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import perf_bench_lib as lib
from repro.verify.differential import check_commit_stream

GOLDEN_DIR = Path(__file__).parents[2] / "tests" / "golden"

#: Exact-match integer stats from the golden fixtures.
EXACT_STATS = (
    "cycles",
    "uops_committed",
    "uops_uop",
    "uops_decode",
    "uops_mrc",
    "cond_mispredictions",
    "mode_switches",
)
#: Float stats, stored rounded to 6 places in the fixtures.
FLOAT_STATS = ("ipc", "uop_hit_rate", "cond_mpki", "switch_pki")


def _stats_from_result(result) -> dict:
    window = result.window
    return {
        "cycles": result.cycles,
        "uops_committed": result.instructions,
        "uops_uop": window.get("uops_uop", 0),
        "uops_decode": window.get("uops_decode", 0),
        "uops_mrc": window.get("uops_mrc", 0),
        "cond_mispredictions": window.get("cond_mispredictions", 0),
        "mode_switches": window.get("mode_switches", 0),
        "ipc": round(result.ipc, 6),
        "uop_hit_rate": round(result.uop_hit_rate, 6),
        "cond_mpki": round(result.cond_mpki, 6),
        "switch_pki": round(result.switch_pki, 6),
    }


@pytest.mark.parametrize("key", sorted(lib.pinned_cases()))
def test_bit_identical_vs_golden(key):
    """Oracle-checked run reproduces the pre-optimization golden stats."""
    workload, config = lib.pinned_cases()[key]
    label = key.split("/")[1]
    fixture_path = GOLDEN_DIR / f"{workload}_{label}.json"
    assert fixture_path.exists(), f"missing golden fixture {fixture_path}"
    fixture = json.loads(fixture_path.read_text())
    assert fixture["n_instructions"] == lib.N_INSTRUCTIONS

    # check=True arms the full invariant sanitizer *and* the commit-stream
    # oracle — the strictest equivalence check the repo has.
    result = check_commit_stream(
        workload, config, lib.N_INSTRUCTIONS, label=label, check=True
    )
    actual = _stats_from_result(result)
    expected = fixture["stats"]
    for stat in EXACT_STATS:
        assert actual[stat] == expected[stat], (
            f"{key}: {stat} drifted {expected[stat]} -> {actual[stat]} "
            f"(optimizations must be bit-identical)"
        )
    for stat in FLOAT_STATS:
        assert actual[stat] == pytest.approx(expected[stat], abs=1e-6), (
            f"{key}: {stat} drifted {expected[stat]} -> {actual[stat]}"
        )


@pytest.fixture(scope="session")
def bench_payload(bench_out_dir):
    """Measure the pinned subset once per session and persist BENCH_sim.json."""
    payload = lib.run_bench()
    path = bench_out_dir / "BENCH_sim.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nBENCH_sim.json -> {path}")
    return payload


def test_bench_json_schema(bench_payload):
    """The emitted BENCH_sim payload is well-formed and covers the subset."""
    lib.validate_bench(bench_payload)
    for key, row in bench_payload["configs"].items():
        assert row["instructions"] == lib.N_INSTRUCTIONS
        assert row["cycles"] > row["instructions"] / 8, key  # sanity: CPI floor


def test_bench_environment_stamp(bench_payload, bench_environment):
    """The payload records the execution mode it was measured in."""
    assert bench_payload["environment"] == bench_environment
    assert "REPRO_SIM_KERNEL" in bench_payload["environment"]


def test_compare_refuses_cross_mode_gate(bench_payload):
    """Baseline/flag mismatch fails loudly, never silently cross-compares."""
    flipped = dict(bench_payload)
    stamp = dict(bench_payload["environment"])
    stamp["REPRO_SIM_KERNEL"] = "0" if stamp["REPRO_SIM_KERNEL"] == "1" else "1"
    flipped["environment"] = stamp
    with pytest.raises(ValueError, match="environment mismatch"):
        lib.compare_bench(bench_payload, flipped)


def test_compare_refuses_schema1_baseline(bench_payload):
    """A pre-kernel (schema 1, no stamp) baseline is rejected with a
    regenerate hint instead of being compared across modes."""
    stale = {k: v for k, v in bench_payload.items() if k != "environment"}
    stale["schema"] = 1
    with pytest.raises(ValueError, match="regenerate"):
        lib.compare_bench(stale, bench_payload)


@pytest.mark.parametrize("key", sorted(lib.pinned_cases()))
def test_kernel_bit_identical_vs_golden(key):
    """The batched kernel reproduces the golden fixtures at bench scale.

    ``test_bit_identical_vs_golden`` above arms ``check=True`` and thus
    exercises the *interpreter* (the kernel defers to the sanitizer);
    this counterpart forces the replay kernel on and compares the same
    fixtures, so both execution modes are pinned to the same goldens.
    """
    from repro.core.pipeline import simulate
    from repro.workloads import load_workload

    workload, config = lib.pinned_cases()[key]
    label = key.split("/")[1]
    fixture = json.loads((GOLDEN_DIR / f"{workload}_{label}.json").read_text())
    trace = load_workload(workload, lib.N_INSTRUCTIONS).trace
    result = simulate(trace, config, name=workload, kernel=True)
    actual = _stats_from_result(result)
    expected = fixture["stats"]
    for stat in EXACT_STATS:
        assert actual[stat] == expected[stat], (
            f"{key}: kernel drifted {stat} {expected[stat]} -> {actual[stat]}"
        )
    for stat in FLOAT_STATS:
        assert actual[stat] == pytest.approx(expected[stat], abs=1e-6), (
            f"{key}: kernel drifted {stat} {expected[stat]} -> {actual[stat]}"
        )


def test_no_regression_vs_baseline(bench_payload):
    """Geomean normalized throughput stays within 25% of the baseline."""
    assert lib.BASELINE_PATH.exists(), (
        "missing committed baseline benchmarks/perf/BENCH_baseline.json — "
        "generate with: python benchmarks/perf/perf_bench_lib.py run "
        f"--output {lib.BASELINE_PATH}"
    )
    baseline = json.loads(lib.BASELINE_PATH.read_text())
    ok, report = lib.compare_bench(baseline, bench_payload)
    print(f"\n{report}")
    assert ok, f"perf regression vs committed baseline:\n{report}"
