"""Shared machinery for the perf-regression benchmark suite.

The suite runs the **pinned subset** — the six golden-fixture cases
(``fp_01``/``int_02``/``srv_05`` under the baseline and UCP
configurations, 6,000 instructions, matching ``tests/golden/``) — and
produces ``BENCH_sim.json``::

    {
      "schema": 2,
      "n_instructions": 6000,
      "environment": {"REPRO_SIM_KERNEL": "1"},   # execution-mode stamp
      "calibration_ops_per_sec": <fixed pure-python loop throughput>,
      "configs": {
        "fp_01/base": {
          "wall_seconds": ..., "cycles": ..., "instructions": ...,
          "cycles_per_sec": ..., "instr_per_sec": ...,
          "normalized_instr_per_sec": ...   # instr_per_sec / calibration
        }, ...
      },
      "geomean_instr_per_sec": ...,
      "geomean_normalized": ...
    }

Raw instr/sec is machine-dependent, so the regression gate compares the
**normalized** throughput: simulated instructions per second divided by
how fast the same interpreter runs a fixed pure-Python integer loop.
Both numerator and denominator scale with host speed and interpreter
version, so their ratio tracks *simulator* efficiency.  The committed
baseline lives in ``benchmarks/perf/BENCH_baseline.json``; CI fails when
the geomean normalized throughput regresses by more than 25%.

Numbers measured under the batched kernel (``REPRO_SIM_KERNEL=1``, the
default) and under the interpreter (``=0``) are **not comparable** — the
kernel is ~1.5-2x faster on the pinned subset.  Every payload therefore
carries an ``environment`` stamp of the mode it was measured in, and
:func:`compare_bench` refuses (raises ``ValueError``) to gate across
mismatched stamps instead of silently reporting a bogus regression or
masking a real one.

Run the regression gate from a shell (CI does exactly this)::

    python benchmarks/perf/perf_bench_lib.py check \
        --current out/BENCH_sim.json \
        --baseline benchmarks/perf/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from time import perf_counter

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import SimResult, simulate
from repro.workloads import load_workload

#: Instruction budget of the pinned subset — matches ``tests/golden``.
N_INSTRUCTIONS = 6_000

#: BENCH payload schema.  2 added the ``environment`` stamp; schema-1
#: payloads predate the batched kernel and cannot be gated against.
SCHEMA = 2

#: Default regression tolerance: fail when geomean normalized throughput
#: drops below (1 - tolerance) x baseline.
DEFAULT_TOLERANCE = 0.25

BASELINE_PATH = Path(__file__).parent / "BENCH_baseline.json"


def pinned_cases() -> dict[str, tuple[str, SimConfig]]:
    """The pinned workload x config subset, keyed ``workload/label``."""
    cases: dict[str, tuple[str, SimConfig]] = {}
    for workload in ("fp_01", "int_02", "srv_05"):
        cases[f"{workload}/base"] = (workload, SimConfig())
        cases[f"{workload}/ucp"] = (
            workload,
            SimConfig(ucp=UCPConfig(enabled=True)),
        )
    return cases


def bench_environment() -> dict[str, str]:
    """The execution-mode stamp recorded in (and gated across) payloads.

    Mirrors the default resolution of ``repro.core.pipeline.simulate`` so
    the stamp always names the mode :func:`time_case` actually ran in.
    """
    from repro.core.kernel import kernel_enabled

    return {"REPRO_SIM_KERNEL": "1" if kernel_enabled() else "0"}


def calibration_ops_per_sec(repeats: int = 3, ops: int = 200_000) -> float:
    """Throughput of a fixed pure-Python integer loop (best of ``repeats``).

    The loop body is frozen — changing it would silently rescale every
    normalized number and invalidate the committed baseline.
    """
    best = math.inf
    for _ in range(repeats):
        start = perf_counter()
        value = 1
        for _ in range(ops):
            value = (value * 1103515245 + 12345) & 0xFFFFFFFF
        best = min(best, perf_counter() - start)
    return ops / best


def time_case(workload: str, config: SimConfig, repeats: int = 3) -> tuple[SimResult, float]:
    """Simulate one pinned case; wall time is the best of ``repeats`` runs."""
    trace = load_workload(workload, N_INSTRUCTIONS).trace
    best = math.inf
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = simulate(trace, config, name=workload)
        best = min(best, perf_counter() - start)
    return result, best


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_bench(repeats: int = 3) -> dict:
    """Measure the pinned subset and return the BENCH_sim payload."""
    calibration = calibration_ops_per_sec()
    configs: dict[str, dict] = {}
    for key, (workload, config) in sorted(pinned_cases().items()):
        result, wall = time_case(workload, config, repeats=repeats)
        instr_per_sec = result.instructions / wall
        configs[key] = {
            "wall_seconds": wall,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "cycles_per_sec": result.cycles / wall,
            "instr_per_sec": instr_per_sec,
            "normalized_instr_per_sec": instr_per_sec / calibration,
        }
    return {
        "schema": SCHEMA,
        "n_instructions": N_INSTRUCTIONS,
        "environment": bench_environment(),
        "calibration_ops_per_sec": calibration,
        "configs": configs,
        "geomean_instr_per_sec": _geomean(
            [row["instr_per_sec"] for row in configs.values()]
        ),
        "geomean_normalized": _geomean(
            [row["normalized_instr_per_sec"] for row in configs.values()]
        ),
    }


def validate_bench(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed BENCH_sim."""
    for field in (
        "schema",
        "n_instructions",
        "environment",
        "calibration_ops_per_sec",
        "configs",
        "geomean_instr_per_sec",
        "geomean_normalized",
    ):
        if field not in payload:
            if field == "environment" and payload.get("schema") == 1:
                raise ValueError(
                    "BENCH payload has schema 1 (no environment stamp) — "
                    "it predates the batched kernel and cannot be compared; "
                    "regenerate with: python benchmarks/perf/perf_bench_lib.py run"
                )
            raise ValueError(f"BENCH_sim missing field {field!r}")
    if payload["schema"] != SCHEMA:
        raise ValueError(f"unknown BENCH_sim schema {payload['schema']!r}")
    environment = payload["environment"]
    if not isinstance(environment, dict) or "REPRO_SIM_KERNEL" not in environment:
        raise ValueError("BENCH_sim environment must stamp REPRO_SIM_KERNEL")
    if set(payload["configs"]) != set(pinned_cases()):
        raise ValueError(
            f"BENCH_sim configs {sorted(payload['configs'])} do not match "
            f"the pinned subset {sorted(pinned_cases())}"
        )
    for key, row in payload["configs"].items():
        for field in (
            "wall_seconds",
            "cycles",
            "instructions",
            "cycles_per_sec",
            "instr_per_sec",
            "normalized_instr_per_sec",
        ):
            if field not in row:
                raise ValueError(f"BENCH_sim config {key!r} missing {field!r}")
            if not row[field] > 0:
                raise ValueError(f"BENCH_sim {key}.{field} must be positive")


def compare_bench(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[bool, str]:
    """Gate ``current`` against ``baseline`` on normalized throughput.

    Returns ``(ok, report)``.  The gate is the *geomean* across the
    pinned subset — per-config numbers are reported for context but a
    single noisy config does not fail the build.
    """
    validate_bench(baseline)
    validate_bench(current)
    if baseline["environment"] != current["environment"]:
        raise ValueError(
            "BENCH environment mismatch — refusing to gate across execution "
            f"modes: baseline {baseline['environment']} vs current "
            f"{current['environment']}.  Re-baseline with the same "
            "REPRO_SIM_KERNEL setting (python benchmarks/perf/perf_bench_lib.py "
            "run) or rerun the bench in the baseline's mode."
        )
    lines = [
        f"{'config':<14s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}",
    ]
    for key in sorted(baseline["configs"]):
        base_norm = baseline["configs"][key]["normalized_instr_per_sec"]
        cur_norm = current["configs"][key]["normalized_instr_per_sec"]
        lines.append(
            f"{key:<14s} {base_norm:>10.4f} {cur_norm:>10.4f} "
            f"{cur_norm / base_norm:>6.2f}x"
        )
    base_geo = baseline["geomean_normalized"]
    cur_geo = current["geomean_normalized"]
    ratio = cur_geo / base_geo
    ok = ratio >= 1.0 - tolerance
    lines.append(
        f"{'geomean':<14s} {base_geo:>10.4f} {cur_geo:>10.4f} {ratio:>6.2f}x  "
        f"({'OK' if ok else 'REGRESSION'}, gate {1.0 - tolerance:.2f}x)"
    )
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    actions = parser.add_subparsers(dest="action", required=True)

    run = actions.add_parser("run", help="measure the pinned subset")
    run.add_argument("--output", default="BENCH_sim.json")
    run.add_argument("--repeats", type=int, default=3)

    check = actions.add_parser("check", help="gate a BENCH_sim vs the baseline")
    check.add_argument("--current", required=True)
    check.add_argument("--baseline", default=str(BASELINE_PATH))
    check.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)

    args = parser.parse_args(argv)
    if args.action == "run":
        payload = run_bench(repeats=args.repeats)
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
        print(f"geomean {payload['geomean_instr_per_sec']:,.0f} instr/s "
              f"(normalized {payload['geomean_normalized']:.4f})")
        return 0
    if args.action == "check":
        baseline = json.loads(Path(args.baseline).read_text())
        current = json.loads(Path(args.current).read_text())
        try:
            ok, report = compare_bench(baseline, current, tolerance=args.tolerance)
        except ValueError as error:
            print(f"BENCH GATE ERROR: {error}")
            return 2
        print(report)
        return 0 if ok else 1
    raise AssertionError(f"unhandled action {args.action}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
