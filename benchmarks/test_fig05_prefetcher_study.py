"""Bench: Fig. 5 — L1I prefetchers versus alternate-path idealisations.

Paper: standalone L1I prefetchers gain 1.1–1.6%; forwarding all L1I hits
into the µ-op cache (L1I-Hits) lifts the hit rate as high as 97% yet IPC
only to ~1.9%; IdealBRCond-8/16 (perfect post-misprediction µ-ops) beats
that with a much smaller hit-rate increase — criticality beats bulk.
"""

from conftest import run_once

from repro.experiments import fig05_prefetchers as experiment

#: Quick-mode subset; the full sweep covers all six prefetchers.
PREFETCHERS = (None, "fnl_mma", "ep")


def test_fig05_prefetcher_study(benchmark, scale, report):
    result = run_once(
        benchmark, lambda: experiment.run(scale, prefetchers=PREFETCHERS)
    )
    report("fig05", experiment.render(result))
    # Shape: L1I-Hits massively raises the hit rate over Base...
    for label in result.hit_rates:
        assert result.hit_rates[label]["l1i_hits"] > result.hit_rates[label]["base"] + 5
    # ...while IdealBRCond-8's hit-rate increase is comparatively modest.
    none_rates = result.hit_rates["none"]
    assert none_rates["ideal8"] - none_rates["base"] < (
        none_rates["l1i_hits"] - none_rates["base"]
    )
    # Shape: IdealBRCond-16 >= IdealBRCond-8 (longer ideal window).
    for label in result.speedups:
        assert result.speedups[label]["ideal16"] >= result.speedups[label]["ideal8"] - 0.5
    # Shape: the idealisations beat the plain standalone prefetcher.
    for label in result.speedups:
        assert result.speedups[label]["ideal8"] >= result.speedups[label]["base"] - 0.5
