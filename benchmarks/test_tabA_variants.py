"""Bench: artifact appendix table — UCP variant IPC improvements.

Paper artifact values (threshold 500): UCP 2.0%, UCP-TillL1I 1.6%,
UCP-SharedDecoders 1.8%, UCP-IdealBTBBanking 2.2%.
"""

from conftest import run_once

from repro.experiments import taba_variants as experiment


def test_taba_variants(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("tabA", experiment.render(result))
    ucp = result.speedup("UCP")
    # Shape orderings from the artifact table:
    # UCP >= SharedDecoders (dedicated decoders never hurt)...
    assert ucp >= result.speedup("UCP-SharedDecoders") - 0.15
    # ...UCP >= TillL1I (filling the µ-op cache is the point)...
    assert ucp >= result.speedup("UCP-TillL1I") - 0.1
    # ...and ideal BTB banking can only help.
    assert result.speedup("UCP-IdealBTBBanking") >= ucp - 0.1
    # All variants remain net positive.
    for label, pct in result.speedups.items():
        assert pct > -0.3, label
