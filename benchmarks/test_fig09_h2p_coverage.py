"""Bench: Fig. 9 — H2P classifier coverage and accuracy.

Paper: UCP-Conf improves coverage over TAGE-Conf from 48.5% to 70% and
accuracy from 12% to 14.66%.
"""

from conftest import run_once

from repro.experiments import fig09_h2p as experiment


def test_fig09_h2p_coverage(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig09", experiment.render(result))
    # Shape: UCP-Conf is a strict extension — coverage must not drop.
    assert result.coverage("ucp") >= result.coverage("tage")
    # Shape: and its accuracy is at least as good.
    assert result.accuracy("ucp") >= result.accuracy("tage") - 0.5
    # Sanity: both estimators flag a meaningful share of mispredictions.
    assert result.coverage("ucp") > 40.0
    assert 0 < result.accuracy("ucp") < 100.0
