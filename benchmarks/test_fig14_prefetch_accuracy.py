"""Bench: Fig. 14 — UCP prefetch accuracy.

Paper: on average 67.7% of prefetches are timely with respect to the
triggering H2P instance; ~8% of wrong-path prefetched entries are still
used at least once later.
"""

from conftest import run_once

from repro.experiments import fig14_prefetch_accuracy as experiment


def test_fig14_prefetch_accuracy(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig14", experiment.render(result))
    active = [(acc, n) for _, acc, n in result.rows if n > 0]
    assert active, "no UCP prefetches happened"
    # Shape: prefetches are mostly timely on active traces.
    weighted = sum(acc * n for acc, n in active) / sum(n for _, n in active)
    assert weighted > 30.0
    # Shape: a meaningful fraction of prefetched entries gets used.
    assert result.used_rate > 2.0
