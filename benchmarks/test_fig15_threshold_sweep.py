"""Bench: Fig. 15 — stopping-threshold sensitivity.

Paper: the µ-op-prefetch gain plateaus around a threshold of ~500 and
thrashes past ~1000; the L1I-only flavour peaks later (~1000) and stays
between 0.6% and 1.7%.
"""

from conftest import run_once

from repro.experiments import fig15_threshold as experiment

THRESHOLDS = (16, 64, 500, 1024, 4096)


def test_fig15_threshold_sweep(benchmark, scale, report):
    result = run_once(
        benchmark, lambda: experiment.run(scale, thresholds=THRESHOLDS)
    )
    report("fig15", experiment.render(result))
    # Shape: the paper's operating point (500) performs within a whisker
    # of the best threshold for µ-op-cache prefetching.
    at_500 = result.ucp[THRESHOLDS.index(500)]
    assert at_500 >= max(result.ucp) - 0.25
    # Shape: a tiny threshold (16) leaves gains on the table.
    assert result.ucp[0] <= at_500 + 0.1
    # Shape: full UCP beats the L1I-only flavour at the operating point.
    assert at_500 >= result.till_l1i[THRESHOLDS.index(500)] - 0.1
