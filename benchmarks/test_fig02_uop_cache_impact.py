"""Bench: Fig. 2 — IPC impact of the 4Kops µ-op cache.

Paper: beneficial for ~80.7% of traces, improvements roughly -2%..+6%.
"""

from conftest import run_once

from repro.experiments import fig02_uop_impact as experiment


def test_fig02_uop_cache_impact(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig02", experiment.render(result))
    # Shape: a clear majority of traces benefits from the µ-op cache...
    assert result.fraction_benefiting >= 0.6
    # ...and no trace swings implausibly far in either direction.
    for _name, pct in result.speedups:
        assert -8.0 < pct < 25.0
