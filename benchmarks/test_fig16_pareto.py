"""Bench: Fig. 16 — storage vs speedup Pareto of frontend techniques.

Paper: both UCP flavours (8.95/12.95KB) sit on the Pareto front; D-JOLT
spends ~125KB for less; MRC reaches only 0.3–0.7% even at 132KB; doubling
the branch predictor costs ~64KB for a marginal edge over UCP.
"""

from conftest import run_once

from repro.experiments import fig16_pareto as experiment


def test_fig16_pareto(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale, full=True))
    report("fig16", experiment.render(result))
    ucp = result.point("UCP")
    no_ind = result.point("UCP-NoIndirect")
    djolt = result.point("DJOLT")
    # Budgets match the paper's Section IV-F accounting.
    assert 12 < ucp.storage_kb < 14
    assert 8 < no_ind.storage_kb < 10
    assert djolt.storage_kb == 125.0
    # Shape: UCP delivers its gain at an order of magnitude less storage
    # than D-JOLT-class prefetchers.
    assert ucp.storage_kb < djolt.storage_kb / 5
    # Shape: MRC scaling is a poor investment per KB vs UCP.
    mrc_big = result.point("MRC-512")
    ucp_per_kb = ucp.speedup_pct / ucp.storage_kb
    mrc_per_kb = mrc_big.speedup_pct / mrc_big.storage_kb
    assert ucp_per_kb >= mrc_per_kb
