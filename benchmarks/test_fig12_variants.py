"""Bench: Fig. 12 — UCP ablations (indirect predictor, confidence source).

Paper: (a) the dedicated Alt-Ind indirect predictor lifts the gain from
1.9% (UCP-NoInd) to 2%; (b) the UCP-Conf trigger beats TAGE-Conf (2.0%
vs 1.8%).
"""

from conftest import run_once

from repro.experiments import fig12_variants as experiment


def test_fig12_variants(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig12", experiment.render(result))
    # Shape (a): the Alt-Ind indirect predictor does not hurt, and usually
    # extends the useful alternate path.
    assert result.speedup("UCP") >= result.speedup("UCP-NoInd") - 0.15
    # Shape (b): the improved confidence estimator is at least as good a
    # trigger as the original TAGE heuristic.
    assert result.speedup("UCP") >= result.speedup("TAGE-Conf") - 0.15
    # All flavours provide some benefit.
    for label, pct in result.speedups.items():
        assert pct > -0.5, label
