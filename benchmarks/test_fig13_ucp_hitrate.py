"""Bench: Fig. 13 — µ-op cache hit rate under UCP.

Paper: the amean hit rate moves only from 71.4% to 74% — UCP prefetches
few but critical entries (its gains come from refill speed, not bulk hit
rate).
"""

from conftest import run_once

from repro.experiments import fig13_ucp_hitrate as experiment


def test_fig13_ucp_hitrate(benchmark, scale, report):
    result = run_once(benchmark, lambda: experiment.run(scale))
    report("fig13", experiment.render(result))
    delta = result.mean_ucp_hit - result.mean_base_hit
    # Shape: UCP raises the hit rate...
    assert delta >= -0.5
    # ...but only modestly (selective prefetching, not bulk).
    assert delta < 20.0
