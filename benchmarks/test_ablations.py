"""Bench: ablations of design points the paper discusses in prose.

Not paper figures — these probe the mechanisms behind them: the mode-
switch penalty (why the µ-op cache can hurt), FTQ decoupling depth (why
FDP hides L1I misses), UCP's walk bandwidth, and the Section IV-G design
points (decode statefulness, L1I inclusivity).
"""

from conftest import run_once

from repro.experiments import ablations


def test_abl_mode_switch_penalty(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.mode_switch_penalty(scale))
    report("abl_switch_penalty", result.render())
    # Shape: a costlier switch erodes the µ-op cache's benefit.
    assert result.value("penalty=0") >= result.value("penalty=4") - 0.2


def test_abl_ftq_depth(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.ftq_depth(scale))
    report("abl_ftq_depth", result.render())
    # Shape: a shallow FTQ forfeits decoupled run-ahead (FDP coverage).
    assert result.value("ftq=32") <= result.value("ftq=384") + 0.2
    # The baseline depth is its own reference point.
    assert abs(result.value("ftq=192")) < 1e-9


def test_abl_walk_width(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.walk_width(scale))
    report("abl_walk_width", result.render())
    # Shape: a wider walk never hurts materially (prefetches land earlier).
    assert result.value("walk=16/cycle") >= result.value("walk=2/cycle") - 0.2


def test_abl_isa_statefulness(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.isa_statefulness(scale))
    report("abl_isa_statefulness", result.render())
    # Shape: stateless (ARM) decode is at least as good as head-of-line-
    # blocked stateful (x86) decode for UCP's prefetch pipeline.
    assert result.value("stateless (ARMv8)") >= result.value("stateful (x86)") - 0.15


def test_abl_l1i_inclusivity(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.l1i_inclusivity(scale))
    report("abl_l1i_inclusivity", result.render())
    # Shape: inclusivity caps the µ-op cache's reach (paper Section IV-G-2),
    # so the paper's non-inclusive design is at least as good.
    assert result.value("non-inclusive (paper)") >= result.value("L1I-inclusive") - 0.2


def test_abl_btb_organization(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.btb_organization(scale))
    report("abl_btb_organization", result.render())
    # Shape: UCP remains effective under either BTB organisation.
    assert result.value("region BTB") > -0.3
    assert result.value("instruction BTB") > -0.3


def test_abl_clasp(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.clasp(scale))
    report("abl_clasp", result.render())
    # Shape (Kotra et al., paper Section VII-E): relaxing the region rule
    # raises the hit rate without a commensurate IPC change.
    labels = [label for label, _ in result.rows]
    strict = next(label for label in labels if label.startswith("strict"))
    relaxed = next(label for label in labels if label.startswith("CLASP"))
    strict_hit = float(strict.split("hit ")[1].rstrip("%)"))
    clasp_hit = float(relaxed.split("hit ")[1].rstrip("%)"))
    assert clasp_hit >= strict_hit - 0.5


def test_abl_confidence_family(benchmark, scale, report):
    result = run_once(benchmark, lambda: ablations.confidence_family(scale))
    report("abl_confidence_family", result.render())
    # Shape: the paper's UCP-Conf is the best trigger of the three.
    assert result.value("UCP-Conf") >= result.value("TAGE-Conf") - 0.15
    assert result.value("UCP-Conf") >= result.value("perceptron") - 0.15
