#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Drives all experiment modules (Fig. 2–16 and the artifact variant table)
and prints their tables.  ``--quick`` uses the 6-trace quick scale;
``--full`` runs the whole 16-workload suite (slow on first run — results
are cached under .simcache/).

Run:  python examples/reproduce_paper.py [--quick|--full] [figN ...]
"""

import sys
import time

from repro.experiments import FULL, QUICK
from repro.experiments.registry import EXPERIMENTS


def main() -> None:
    args = [arg for arg in sys.argv[1:]]
    scale = FULL if "--full" in args else QUICK
    requested = [arg for arg in args if not arg.startswith("--")]
    names = requested or list(EXPERIMENTS)

    print(f"scale: {scale.name} ({len(scale.workloads)} workloads, "
          f"{scale.n_instructions} instructions each)\n")
    for name in names:
        module = EXPERIMENTS[name]
        start = time.time()
        result = module.run(scale)
        elapsed = time.time() - start
        print(module.render(result))
        print(f"[{name}: {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main()
