#!/usr/bin/env python3
"""Frontend energy and statistical confidence of UCP's gains.

Two analyses the paper argues in prose, quantified on this model:

1. **Energy** (Sections II, VI-F): the µ-op cache saves decode/L1I energy;
   UCP spends a slice of it back through its alternate decoders (the paper
   quotes a ~25.5% increase in decoded instructions).
2. **Confidence**: the workloads are stochastic, so the headline speedup
   is replicated across generator seeds and reported with a Student-t
   confidence interval.

Run:  python examples/energy_and_confidence.py [workload]
"""

import sys
from dataclasses import replace

from repro.analysis import (
    bar_chart,
    decode_overhead_pct,
    frontend_energy,
    replicate_speedup,
)
from repro.core import SimConfig, simulate
from repro.core.configs import UCPConfig
from repro.workloads import load_workload

N_INSTRUCTIONS = 15_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "srv_04"
    trace = load_workload(name, N_INSTRUCTIONS).trace
    configs = {
        "no u-op cache": SimConfig().without_uop_cache(),
        "baseline": SimConfig(),
        "UCP": replace(SimConfig(), ucp=UCPConfig(enabled=True)),
    }
    results = {label: simulate(trace, config) for label, config in configs.items()}

    # --- 1. Energy ------------------------------------------------------
    labels = list(results)
    energies = [
        frontend_energy(result).per_instruction(result.window_instructions)
        for result in results.values()
    ]
    print(bar_chart(
        f"{name}: relative frontend energy per instruction",
        labels,
        energies,
        unit=" u",
    ))
    overhead = decode_overhead_pct(results["UCP"], results["baseline"])
    print(
        f"\nUCP decode overhead: {overhead:+.1f}% more decoded instructions"
        f" (paper Section VI-F reports ~25.5%)\n"
    )

    # --- 2. Confidence interval over seeds -------------------------------
    replication = replicate_speedup(
        name,
        replace(SimConfig(), ucp=UCPConfig(enabled=True)),
        SimConfig(),
        n_seeds=4,
        n_instructions=10_000,
    )
    low, high = replication.confidence_interval()
    verdict = "significant" if replication.significant() else "within noise"
    print(
        f"UCP speedup across {len(replication.seeds)} generator seeds: "
        f"{replication.mean:+.2f}% (95% CI [{low:+.2f}%, {high:+.2f}%], {verdict})"
    )


if __name__ == "__main__":
    main()
