#!/usr/bin/env python3
"""µ-op cache over-subscription study (paper Section III on your machine).

Sweeps the static code footprint of a datacenter-style synthetic workload
and shows how the µ-op cache hit rate, build/stream switch rate, and the
value of a µ-op cache degrade as the footprint outgrows the 4Kops reach —
the motivating observation of the paper.

Run:  python examples/uop_cache_pressure.py
"""

from repro.analysis.tables import format_table
from repro.core import SimConfig, simulate
from repro.workloads import WorkloadConfig, generate_trace

N_INSTRUCTIONS = 15_000

#: Footprint sweep: function counts chosen so static code spans roughly
#: 10KB (fits the 16KB µ-op reach) up to ~200KB (heavily over-subscribed).
FUNCTION_COUNTS = (8, 24, 64, 160, 320)


def main() -> None:
    rows = []
    for n_functions in FUNCTION_COUNTS:
        config = WorkloadConfig(
            name=f"sweep_{n_functions}",
            seed=7,
            n_functions=n_functions,
            n_instructions=N_INSTRUCTIONS,
            call_weight=0.14,
            dispatch_skew=1.1,
        )
        trace = generate_trace(config)
        touched_kb = trace.stats().static_code_bytes / 1024

        base = simulate(trace, SimConfig())
        no_uop = simulate(trace, SimConfig().without_uop_cache())
        speedup = 100.0 * (base.ipc / no_uop.ipc - 1.0)
        rows.append(
            (
                f"{n_functions} funcs",
                touched_kb,
                base.uop_hit_rate,
                base.switch_pki,
                speedup,
            )
        )

    print(
        format_table(
            "u-op cache pressure vs code footprint (4Kops = 16KB reach)",
            ["program", "touched KB", "hit rate %", "switch PKI", "uop-cache gain %"],
            rows,
        )
    )
    print(
        "\nAs the touched footprint outgrows the u-op cache reach, the hit"
        "\nrate collapses, mode switches multiply, and the u-op cache stops"
        "\npaying for itself - paper Fig. 2/3 in miniature."
    )


if __name__ == "__main__":
    main()
