#!/usr/bin/env python3
"""Branch-confidence anatomy: who predicts, who misses, what UCP flags.

Runs the baseline 64KB-class TAGE-SC-L over a workload and prints, per
predictor component, how many predictions it provided, its miss rate, and
how the two hard-to-predict (H2P) classifiers — Seznec's TAGE-Conf and the
paper's UCP-Conf — would have triaged them (paper Figs. 6, 7 and 9).

Run:  python examples/h2p_confidence.py [workload]
"""

import sys
from collections import defaultdict

from repro.analysis.tables import format_table
from repro.branch import (
    ConfidenceStats,
    TageScL,
    tage_conf_is_h2p,
    ucp_conf_is_h2p,
)
from repro.isa import BranchClass
from repro.workloads import load_workload

N_INSTRUCTIONS = 25_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "int_03"
    trace = load_workload(name, N_INSTRUCTIONS).trace
    predictor = TageScL()
    per_provider = defaultdict(lambda: [0, 0])  # provider -> [n, misses]
    estimators = {
        "TAGE-Conf": (tage_conf_is_h2p, ConfidenceStats("tage")),
        "UCP-Conf": (ucp_conf_is_h2p, ConfidenceStats("ucp")),
    }
    warm = len(trace) // 2

    for i in range(len(trace)):
        branch_class = trace.branch_classes[i]
        if branch_class == BranchClass.COND_DIRECT:
            pc = int(trace.pcs[i])
            taken = bool(trace.takens[i])
            prediction = predictor.predict(pc)
            if i >= warm:
                miss = prediction.taken != taken
                entry = per_provider[prediction.provider.value]
                entry[0] += 1
                entry[1] += miss
                for classify, stats in estimators.values():
                    stats.record(classify(prediction), miss)
            predictor.update(prediction, taken)
        elif branch_class != BranchClass.NOT_BRANCH:
            predictor.push_unconditional(int(trace.pcs[i]))

    rows = [
        (provider, n, 100.0 * miss / max(1, n))
        for provider, (n, miss) in sorted(
            per_provider.items(), key=lambda item: -item[1][0]
        )
    ]
    print(format_table(
        f"{name}: predictions and miss rate per TAGE-SC-L component",
        ["component", "predictions", "miss rate %"],
        rows,
    ))

    print()
    rows = [
        (label, stats.coverage, stats.accuracy)
        for label, (_fn, stats) in estimators.items()
    ]
    print(format_table(
        "H2P classifiers (paper Fig. 9)",
        ["estimator", "coverage %", "accuracy %"],
        rows,
    ))
    print(
        "\ncoverage = mispredictions flagged as H2P;"
        "\naccuracy = flagged branches that actually mispredict."
    )


if __name__ == "__main__":
    main()
