#!/usr/bin/env python3
"""L1I prefetcher shoot-out (paper Fig. 5 / Section III-C, interactive).

Runs every implemented L1I prefetcher against the same workloads and
charts speedup, L1I miss reduction, and µ-op cache hit rate — then adds
UCP for contrast, showing the paper's point: generic prefetchers chase
bulk misses, UCP chases the critical post-misprediction ones.

Run:  python examples/prefetcher_shootout.py [workload ...]
"""

import sys
from dataclasses import replace

from repro.analysis import bar_chart
from repro.common.stats import geomean
from repro.core import SimConfig, simulate
from repro.core.configs import UCPConfig
from repro.workloads import load_workload

N_INSTRUCTIONS = 15_000
PREFETCHERS = [None, "next_line", "fnl_mma", "fnl_mma++", "djolt", "ep", "ep++"]


def main() -> None:
    names = sys.argv[1:] or ["srv_02", "srv_04", "int_03"]
    traces = {name: load_workload(name, N_INSTRUCTIONS).trace for name in names}

    baselines = {name: simulate(trace, SimConfig()) for name, trace in traces.items()}

    labels = []
    speedups = []
    miss_reductions = []
    for prefetcher in PREFETCHERS + ["UCP"]:
        if prefetcher == "UCP":
            config = replace(SimConfig(), ucp=UCPConfig(enabled=True))
            label = "UCP"
        else:
            config = replace(SimConfig(), l1i_prefetcher=prefetcher)
            label = prefetcher or "none"
        ratios = []
        base_misses = run_misses = 0
        for name, trace in traces.items():
            result = simulate(trace, config)
            ratios.append(result.ipc / baselines[name].ipc)
            base_misses += baselines[name].window.get("l1i_demand_misses", 0)
            run_misses += result.window.get("l1i_demand_misses", 0)
        labels.append(label)
        speedups.append(100.0 * (geomean(ratios) - 1.0))
        miss_reductions.append(
            100.0 * (1.0 - run_misses / base_misses) if base_misses else 0.0
        )

    print(bar_chart(
        f"speedup over no-prefetcher baseline ({', '.join(names)})",
        labels,
        speedups,
        unit="%",
    ))
    print()
    print(bar_chart(
        "L1I demand-miss reduction",
        labels,
        miss_reductions,
        unit="%",
    ))
    print(
        "\nGeneric L1I prefetchers cut bulk (mostly compulsory) misses; UCP"
        "\nbarely moves them — it targets only the alternate-path entries"
        "\nthat matter at refills (the paper's Section III-C argument)."
        "\nRecurrence-trained prefetchers (EP, D-JOLT) sit near zero at this"
        "\ntrace scale: the misses they learn from stay L1I-resident."
    )


if __name__ == "__main__":
    main()
