#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without UCP.

Builds a synthetic datacenter-style workload, runs the paper's Table II
baseline pipeline on it, then enables UCP (alternate-path µ-op cache
prefetching) and reports the difference — the headline experiment of the
paper in a few lines of the public API.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

from repro.core import SimConfig, simulate
from repro.core.configs import UCPConfig
from repro.workloads import load_workload

N_INSTRUCTIONS = 20_000


def main() -> None:
    # 1. Materialise a workload from the built-in suite (a deterministic
    #    synthetic trace standing in for the paper's CVP-1 traces).
    workload = load_workload("srv_04", N_INSTRUCTIONS)
    stats = workload.trace.stats()
    print(f"workload: {workload.name}")
    print(
        f"  {stats.instructions} instructions, "
        f"{stats.static_code_bytes / 1024:.0f}KB of static code touched, "
        f"{stats.conditional_branches} conditional branches"
    )

    # 2. Baseline: Alder-Lake-like frontend with a 4Kops µ-op cache.
    baseline = simulate(workload.trace, SimConfig())
    print("\nbaseline (Table II):")
    print(f"  IPC                  {baseline.ipc:.3f}")
    print(f"  u-op cache hit rate  {baseline.uop_hit_rate:.1f}%")
    print(f"  mode switches PKI    {baseline.switch_pki:.1f}")
    print(f"  conditional MPKI     {baseline.cond_mpki:.2f}")

    # 3. UCP: prefetch the alternate path of hard-to-predict branches.
    ucp_result = simulate(
        workload.trace, replace(SimConfig(), ucp=UCPConfig(enabled=True))
    )
    speedup = 100.0 * (ucp_result.ipc / baseline.ipc - 1.0)
    window = ucp_result.window
    print("\nwith UCP (Section IV):")
    print(f"  IPC                  {ucp_result.ipc:.3f}  ({speedup:+.2f}%)")
    print(f"  u-op cache hit rate  {ucp_result.uop_hit_rate:.1f}%")
    print(f"  H2P triggers         {window.get('ucp_h2p_triggers', 0)}")
    print(f"  alternate walks      {window.get('ucp_walks_started', 0)}")
    print(f"  entries prefetched   {window.get('ucp_entries_prefetched', 0)}")
    print(f"  prefetch accuracy    {ucp_result.prefetch_accuracy:.1f}%")


if __name__ == "__main__":
    main()
