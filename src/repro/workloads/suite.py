"""The named workload suite — this repo's stand-in for the CVP-1 trace set.

The paper's 306 CVP-1 traces split into datacenter (srv), integer, crypto
and FP categories, with 90% of hot code averaging 120KB against a 16KB
µ-op cache reach and a 32KB L1I (Section III-A).  The suite below spans the
same regimes with explicit footprints (4 bytes per instruction):

* ``srv_*``  — datacenter-like: 80–400KB static code, deep call graphs,
  moderate-to-high H2P fractions → µ-op cache hit rates ~30–70%.
* ``int_*``  — mid-size: 20–50KB code, mixed predictability.
* ``crypto_*`` — small hot loops, highly predictable → ~99% hit rates.
* ``fp_*``   — tiny loopy kernels.

Traces are deterministic per (name, length) and cached in-process.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.isa.trace import Trace
from repro.workloads.datacenter import DATACENTER_SUITE
from repro.workloads.generator import WorkloadConfig, generate_trace


def _srv(name: str, seed: int, functions: int, h2p: float, **extra: float) -> WorkloadConfig:
    """Datacenter-style config: big footprint, many calls, noticeable H2P."""
    kwargs = dict(
        blocks_per_function=20,
        block_size_mean=8.5,
        cond_weight=0.45,
        fallthrough_weight=0.3,
        call_weight=0.14,
        indirect_weight=0.04,
        dispatch_skew=1.1,
        h2p_fraction=h2p,
        biased_fraction=0.92 - h2p,
        correlated_fraction=0.02,
        pattern_fraction=0.01,
    )
    kwargs.update(extra)
    return WorkloadConfig(name=name, seed=seed, n_functions=functions, **kwargs)


def _int(name: str, seed: int, functions: int, h2p: float) -> WorkloadConfig:
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=16,
        block_size_mean=7.5,
        cond_weight=0.45,
        fallthrough_weight=0.3,
        call_weight=0.08,
        h2p_fraction=h2p,
        biased_fraction=0.84 - h2p,
        correlated_fraction=0.04,
        pattern_fraction=0.03,
    )


def _crypto(name: str, seed: int, functions: int) -> WorkloadConfig:
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=12,
        block_size_mean=9.0,
        call_weight=0.06,
        indirect_weight=0.01,
        loop_fraction=0.35,
        loop_variable_fraction=0.05,
        h2p_fraction=0.01,
        biased_fraction=0.66,
        correlated_fraction=0.18,
        pattern_fraction=0.15,
    )


def _fp(name: str, seed: int, functions: int) -> WorkloadConfig:
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=10,
        block_size_mean=11.0,
        call_weight=0.04,
        indirect_weight=0.0,
        loop_fraction=0.45,
        loop_trip_min=4,
        loop_trip_max=40,
        loop_variable_fraction=0.05,
        h2p_fraction=0.01,
        biased_fraction=0.62,
        correlated_fraction=0.2,
        pattern_fraction=0.17,
    )


#: One entry per workload: the generator configuration it is built from.
SUITE: dict[str, WorkloadConfig] = {
    # Datacenter: footprints from ~90KB up to ~400KB of static code.
    "srv_01": _srv("srv_01", seed=101, functions=160, h2p=0.03),
    "srv_02": _srv("srv_02", seed=102, functions=220, h2p=0.05),
    "srv_03": _srv("srv_03", seed=103, functions=190, h2p=0.02),
    "srv_04": _srv("srv_04", seed=104, functions=240, h2p=0.06),
    "srv_05": _srv("srv_05", seed=105, functions=260, h2p=0.08, loop_fraction=0.15),
    "srv_06": _srv("srv_06", seed=106, functions=300, h2p=0.035),
    "srv_07": _srv("srv_07", seed=107, functions=150, h2p=0.015, loop_fraction=0.3),
    # Integer: 20-60KB of code, varied predictability.
    "int_01": _int("int_01", seed=201, functions=40, h2p=0.02),
    "int_02": _int("int_02", seed=202, functions=64, h2p=0.04),
    "int_03": _int("int_03", seed=203, functions=90, h2p=0.06),
    "int_04": _int("int_04", seed=204, functions=52, h2p=0.01),
    # Crypto: small, regular, predictable code.
    "crypto_01": _crypto("crypto_01", seed=301, functions=10),
    "crypto_02": _crypto("crypto_02", seed=302, functions=16),
    "crypto_03": _crypto("crypto_03", seed=303, functions=24),
    # FP: tiny loop nests.
    "fp_01": _fp("fp_01", seed=401, functions=6),
    "fp_02": _fp("fp_02", seed=402, functions=12),
    # Web: mid-large footprint with heavy indirect dispatch (template
    # engines / routing tables).
    "web_01": _srv(
        "web_01", seed=501, functions=180, h2p=0.04,
        indirect_weight=0.08, indirect_fanout=6, dispatch_skew=0.7,
    ),
    "web_02": _srv(
        "web_02", seed=502, functions=260, h2p=0.06,
        indirect_weight=0.08, indirect_fanout=6, dispatch_skew=0.9,
    ),
    # DB: large footprint, deeper call chains, loopier operators.
    "db_01": _srv(
        "db_01", seed=601, functions=220, h2p=0.05,
        loop_fraction=0.22, loop_trip_max=16, call_depth_levels=6,
    ),
    "db_02": _srv(
        "db_02", seed=602, functions=320, h2p=0.07,
        loop_fraction=0.18, loop_trip_max=16, call_depth_levels=6,
    ),
    # Mixed: between int and srv regimes.
    "mix_01": _int("mix_01", seed=701, functions=110, h2p=0.05),
    "mix_02": _int("mix_02", seed=702, functions=140, h2p=0.08),
    # Datacenter shapes: deep call graphs, interpreter dispatch,
    # megamorphic indirect branches (repro.workloads.datacenter).
    **DATACENTER_SUITE,
}

#: Symbolic groups for experiments that slice by category.
CATEGORIES: dict[str, list[str]] = {
    prefix: [name for name in SUITE if name.startswith(prefix + "_")]
    for prefix in ("srv", "int", "crypto", "fp", "web", "db", "mix", "dc")
}


class WorkloadSpec:
    """Resolved workload: its config plus the generated trace."""

    def __init__(self, config: WorkloadConfig, trace: Trace) -> None:
        self.config = config
        self.trace = trace

    @property
    def name(self) -> str:
        return self.config.name

    def __repr__(self) -> str:
        return f"WorkloadSpec({self.name!r}, {len(self.trace)} instructions)"


@lru_cache(maxsize=64)
def _cached_trace(name: str, n_instructions: int) -> Trace:
    config = replace(SUITE[name], n_instructions=n_instructions)
    return generate_trace(config)


@lru_cache(maxsize=16)
def _cached_ingested(name: str, digest: str, n_instructions: int) -> Trace:
    # Keyed by content digest: re-converting a different trace under the
    # same name cannot serve a stale in-process copy.
    from repro.workloads.store import load_ingested

    return load_ingested(name, n_instructions)


def _load_ingested_spec(name: str, n_instructions: int | None) -> WorkloadSpec | None:
    from repro.workloads.store import resolve_meta

    meta = resolve_meta(name)
    if meta is None:
        return None
    length = (
        min(n_instructions, meta.instructions)
        if n_instructions is not None
        else meta.instructions
    )
    trace = _cached_ingested(name, meta.digest, length)
    # Ingested traces have no generator config; a stub records provenance
    # (seed 0 marks "not generated") so WorkloadSpec consumers keep working.
    config = WorkloadConfig(name=name, seed=0, n_instructions=length)
    return WorkloadSpec(config, trace)


def workload_names() -> list[str]:
    """All resolvable workload names: the built-in suite plus every
    registered ingested trace."""
    from repro.workloads.store import ingested_names

    return sorted(SUITE) + ingested_names()


def load_workload(name: str, n_instructions: int | None = None) -> WorkloadSpec:
    """Materialise one workload (traces are cached per length).

    Resolution order: the built-in suite first, then the ingested-trace
    store (:mod:`repro.workloads.store`) — so ``repro ingest convert``
    output drops into every consumer of this function unchanged.
    """
    if name not in SUITE:
        spec = _load_ingested_spec(name, n_instructions)
        if spec is not None:
            return spec
        raise KeyError(f"unknown workload {name!r}; choose from {workload_names()}")
    config = SUITE[name]
    length = n_instructions if n_instructions is not None else config.n_instructions
    return WorkloadSpec(replace(config, n_instructions=length), _cached_trace(name, length))


def load_suite(
    names: list[str] | None = None, n_instructions: int | None = None
) -> list[WorkloadSpec]:
    """Materialise several workloads (default: the full suite)."""
    names = list(SUITE) if names is None else names
    return [load_workload(name, n_instructions) for name in names]
