"""Datacenter-shape workload configurations (the ``dc_*`` suite slice).

The paper's motivation (Section III) rests on datacenter front-end
behaviour: instruction footprints far past the µ-op cache reach, deep
service call stacks, and dispatch-heavy control flow.  The three shapes
below push each of those axes harder than the general ``srv_*`` mix:

* ``dc_call_*``  — *deep call graphs*: 8-level call DAGs with a high
  call weight, so most control transfers are call/return pairs and the
  RAS-depth regime resembles RPC stacks (service → stub → marshal →
  alloc → ...).
* ``dc_interp_*`` — *interpreter dispatch loops*: a tight, loopy core
  whose terminators are dominated by indirect jumps with moderate
  fan-out and bursty target reuse — the classic bytecode
  switch-threaded dispatch shape.
* ``dc_mega_*``  — *megamorphic indirect branches*: wide-fanout,
  low-repeat indirect calls over a flat handler space, the virtual-call
  sites that defeat simple BTBs and generate the alternate-path
  opportunities UCP prefetches along.

All six are ordinary :class:`~repro.workloads.generator.WorkloadConfig`
instances — deterministic per seed, cached, and cache-key compatible
with the rest of the suite.
"""

from __future__ import annotations

from repro.workloads.generator import WorkloadConfig

__all__ = ["DATACENTER_SUITE", "dc_call", "dc_interp", "dc_mega"]


def dc_call(name: str, seed: int, functions: int, h2p: float) -> WorkloadConfig:
    """Deep-call-graph shape: RPC-style stacks, call/return dominated."""
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=12,
        block_size_mean=7.0,
        call_depth_levels=8,
        call_weight=0.30,
        cond_weight=0.34,
        jump_weight=0.06,
        indirect_weight=0.02,
        fallthrough_weight=0.28,
        dispatch_skew=1.0,
        h2p_fraction=h2p,
        biased_fraction=0.90 - h2p,
        correlated_fraction=0.04,
        pattern_fraction=0.02,
    )


def dc_interp(name: str, seed: int, functions: int, fanout: int) -> WorkloadConfig:
    """Interpreter-dispatch shape: indirect-jump threaded, bursty reuse.

    The terminator mix is dominated by :data:`indirect_weight` with a
    *narrow* fanout and a *high* repeat probability — the next-opcode
    jump of a bytecode loop re-hits the same handler in bursts, which is
    exactly what makes real dispatch ITTAGE-predictable.  Loops are kept
    rare so the dynamic stream tracks the indirect mix instead of being
    swamped by loop-back conditionals.
    """
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=24,
        block_size_mean=5.5,
        call_depth_levels=2,
        call_weight=0.04,
        cond_weight=0.22,
        jump_weight=0.05,
        indirect_weight=0.30,
        fallthrough_weight=0.39,
        indirect_fanout=fanout,
        indirect_repeat=0.75,
        loop_fraction=0.06,
        dispatch_skew=0.6,
        h2p_fraction=0.03,
        biased_fraction=0.72,
        correlated_fraction=0.15,
        pattern_fraction=0.10,
    )


def dc_mega(name: str, seed: int, functions: int, fanout: int) -> WorkloadConfig:
    """Megamorphic shape: wide, low-reuse indirect branch sites.

    Same indirect-dominated mix as ``dc_interp``, but each site fans out
    over a *wide* target set (:data:`indirect_fanout`) with a *low*
    repeat probability and a flatter popularity skew — virtual-call
    sites that cycle through many receivers rather than bursting on one.
    The footprint is ~3x the interpreter core.
    """
    return WorkloadConfig(
        name=name,
        seed=seed,
        n_functions=functions,
        blocks_per_function=18,
        block_size_mean=6.5,
        call_depth_levels=3,
        call_weight=0.10,
        cond_weight=0.26,
        jump_weight=0.05,
        indirect_weight=0.26,
        fallthrough_weight=0.33,
        indirect_fanout=fanout,
        indirect_repeat=0.10,
        loop_fraction=0.08,
        dispatch_skew=0.2,
        h2p_fraction=0.05,
        biased_fraction=0.80,
        correlated_fraction=0.08,
        pattern_fraction=0.07,
    )


#: The datacenter slice, merged into :data:`repro.workloads.suite.SUITE`.
DATACENTER_SUITE: dict[str, WorkloadConfig] = {
    "dc_call_01": dc_call("dc_call_01", seed=801, functions=200, h2p=0.03),
    "dc_call_02": dc_call("dc_call_02", seed=802, functions=280, h2p=0.06),
    "dc_interp_01": dc_interp("dc_interp_01", seed=811, functions=24, fanout=4),
    "dc_interp_02": dc_interp("dc_interp_02", seed=812, functions=40, fanout=6),
    "dc_mega_01": dc_mega("dc_mega_01", seed=821, functions=48, fanout=24),
    "dc_mega_02": dc_mega("dc_mega_02", seed=822, functions=72, fanout=32),
}
