"""Branch direction behaviours for synthetic conditional branches.

Each static conditional branch in a generated program owns a behaviour
object deciding its dynamic outcomes.  The mixture of behaviours determines
which predictor component (bimodal / TAGE tagged tables / loop predictor /
statistical corrector) can capture the branch, and therefore reproduces the
per-component confidence structure of paper Fig. 6/7:

* :class:`Bernoulli` — i.i.d. coin flips.  Near-certain probabilities make
  bimodal-friendly biased branches; probabilities near 0.5 make genuinely
  hard-to-predict (H2P) branches that no history can capture.
* :class:`Pattern` — a fixed repeating direction sequence; predictable by a
  tagged table whose history window covers the period.
* :class:`LoopTrip` — taken ``trip - 1`` times then not taken, resampling
  the trip count per loop entry; fixed trips are loop-predictor food.
* :class:`GlobalCorrelated` — the outcome is a (noisy) parity of recent
  *global* conditional outcomes, i.e. classic history correlation that only
  long-history TAGE tables capture.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class BranchBehavior(ABC):
    """Decides successive dynamic outcomes of one static conditional."""

    @abstractmethod
    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        """Return the next direction.

        ``global_history`` packs recent global conditional outcomes,
        newest in bit 0, so correlated behaviours can consult it.
        """

    def reset(self) -> None:
        """Forget per-instance state (called when a fresh walk starts)."""


class Bernoulli(BranchBehavior):
    """Independent outcomes, taken with probability ``p``."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        self.p = p

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        return rng.random() < self.p

    def __repr__(self) -> str:
        return f"Bernoulli(p={self.p})"


class Pattern(BranchBehavior):
    """A deterministic repeating sequence of directions."""

    def __init__(self, pattern: list[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = list(pattern)
        self._index = 0

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        outcome = self.pattern[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        return outcome

    def reset(self) -> None:
        self._index = 0

    def __repr__(self) -> str:
        bits = "".join("T" if bit else "N" for bit in self.pattern)
        return f"Pattern({bits})"


class LoopTrip(BranchBehavior):
    """A loop back-edge: taken while iterations remain, then falls out.

    The trip count is (re)sampled uniformly from ``[min_trip, max_trip]``
    every time the loop is re-entered.  ``min_trip == max_trip`` yields the
    fixed-trip loops that a loop predictor captures perfectly.
    """

    def __init__(self, min_trip: int, max_trip: int | None = None) -> None:
        max_trip = min_trip if max_trip is None else max_trip
        if min_trip < 1 or max_trip < min_trip:
            raise ValueError(f"invalid trip range [{min_trip}, {max_trip}]")
        self.min_trip = min_trip
        self.max_trip = max_trip
        self._remaining: int | None = None

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        if self._remaining is None:
            self._remaining = rng.randint(self.min_trip, self.max_trip)
        self._remaining -= 1
        if self._remaining <= 0:
            self._remaining = None  # loop exits; resample on re-entry
            return False
        return True

    def reset(self) -> None:
        self._remaining = None

    def __repr__(self) -> str:
        return f"LoopTrip({self.min_trip}, {self.max_trip})"


class GlobalCorrelated(BranchBehavior):
    """Outcome correlates with recent global conditional history.

    Computes the parity of ``taps`` selected global-history bits and flips
    it with probability ``noise``.  With low noise this is exactly the class
    of branches long-history TAGE tables predict and short predictors miss.
    """

    def __init__(self, taps: list[int], noise: float = 0.0) -> None:
        if not taps:
            raise ValueError("need at least one history tap")
        if any(tap < 0 for tap in taps):
            raise ValueError("taps must be non-negative bit indices")
        if not 0.0 <= noise <= 0.5:
            raise ValueError(f"noise must be in [0, 0.5], got {noise}")
        self.taps = list(taps)
        self.noise = noise

    def next_outcome(self, rng: random.Random, global_history: int) -> bool:
        parity = 0
        for tap in self.taps:
            parity ^= (global_history >> tap) & 1
        outcome = bool(parity)
        if self.noise and rng.random() < self.noise:
            outcome = not outcome
        return outcome

    def __repr__(self) -> str:
        return f"GlobalCorrelated(taps={self.taps}, noise={self.noise})"
