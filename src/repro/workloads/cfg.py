"""Control-flow-graph program model and the trace walker.

A :class:`Program` is a list of :class:`Function` objects, each a list of
:class:`BasicBlock` objects laid out contiguously in a synthetic address
space.  Walking the program executes it: conditional outcomes come from the
blocks' :class:`~repro.workloads.behaviors.BranchBehavior` objects, calls
push a software return stack, and the emitted instruction stream is a
control-flow-consistent dynamic trace.

Structural rules that guarantee bounded execution:

* the call graph is a DAG (functions may only call higher-indexed ones);
* every non-entry function's final block returns; the entry function's
  final block jumps back to its first block, so the walk never ends;
* conditional back edges must carry behaviours that eventually fall out
  (loop trips, or coin flips with bounded taken probability) — enforced by
  the generator, checked statistically by tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum, auto

from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass, TraceEntry
from repro.isa.trace import Trace
from repro.workloads.behaviors import BranchBehavior


class TerminatorKind(Enum):
    FALLTHROUGH = auto()
    COND = auto()
    JUMP = auto()
    CALL = auto()
    CALL_INDIRECT = auto()
    INDIRECT = auto()
    RETURN = auto()


@dataclass
class BasicBlock:
    """One basic block: ``size`` instructions, the last being the terminator.

    Successor fields are interpreted per :class:`TerminatorKind`:

    * ``COND`` — taken goes to block ``taken_block`` (same function),
      not-taken falls through to the next block; ``behavior`` decides.
    * ``JUMP`` — always goes to ``taken_block``.
    * ``CALL`` — calls function ``callees[0]``; resumes at the next block.
    * ``CALL_INDIRECT`` — calls one of ``callees`` per ``callee_weights``.
    * ``INDIRECT`` — jumps to one of ``indirect_targets`` (same function)
      per ``indirect_weights``.
    * ``RETURN`` — pops the call stack.
    * ``FALLTHROUGH`` — no branch; execution merges into the next block.
    """

    size: int
    terminator: TerminatorKind = TerminatorKind.FALLTHROUGH
    taken_block: int | None = None
    behavior: BranchBehavior | None = None
    callees: list[int] = field(default_factory=list)
    callee_weights: list[float] = field(default_factory=list)
    indirect_targets: list[int] = field(default_factory=list)
    indirect_weights: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("a basic block holds at least one instruction")
        if self.terminator is TerminatorKind.COND:
            if self.taken_block is None or self.behavior is None:
                raise ValueError("COND blocks need taken_block and behavior")
        if self.terminator is TerminatorKind.JUMP and self.taken_block is None:
            raise ValueError("JUMP blocks need taken_block")
        if self.terminator in (TerminatorKind.CALL, TerminatorKind.CALL_INDIRECT):
            if not self.callees:
                raise ValueError("CALL blocks need at least one callee")
        if self.terminator is TerminatorKind.INDIRECT and not self.indirect_targets:
            raise ValueError("INDIRECT blocks need targets")


@dataclass
class Function:
    """A list of basic blocks, laid out contiguously from ``base_pc``."""

    blocks: list[BasicBlock]
    base_pc: int = 0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("function needs at least one block")
        self._starts: list[int] = []
        pc = self.base_pc
        for block in self.blocks:
            self._starts.append(pc)
            pc += block.size * INSTRUCTION_SIZE
        self.end_pc = pc

    def block_start(self, index: int) -> int:
        return self._starts[index]

    def terminator_pc(self, index: int) -> int:
        block = self.blocks[index]
        return self._starts[index] + (block.size - 1) * INSTRUCTION_SIZE

    @property
    def size_bytes(self) -> int:
        return self.end_pc - self.base_pc


_TERMINATOR_TO_CLASS = {
    TerminatorKind.COND: BranchClass.COND_DIRECT,
    TerminatorKind.JUMP: BranchClass.UNCOND_DIRECT,
    TerminatorKind.CALL: BranchClass.CALL_DIRECT,
    TerminatorKind.CALL_INDIRECT: BranchClass.CALL_INDIRECT,
    TerminatorKind.INDIRECT: BranchClass.INDIRECT,
    TerminatorKind.RETURN: BranchClass.RETURN,
}


class Program:
    """A whole synthetic program: functions placed in one address space."""

    def __init__(self, functions: list[Function], name: str = "program") -> None:
        if not functions:
            raise ValueError("program needs at least one function")
        self.functions = functions
        self.name = name
        self.validate()

    def validate(self) -> None:
        for func_index, function in enumerate(self.functions):
            n_blocks = len(function.blocks)
            for block_index, block in enumerate(function.blocks):
                for successor in self._local_successors(block):
                    if not 0 <= successor < n_blocks:
                        raise ValueError(
                            f"function {func_index} block {block_index}: "
                            f"successor {successor} out of range"
                        )
                for callee in block.callees:
                    if not 0 <= callee < len(self.functions):
                        raise ValueError(f"unknown callee function {callee}")
                    if callee <= func_index:
                        raise ValueError(
                            f"function {func_index} calls {callee}: the call "
                            "graph must be a DAG (callee index must be higher)"
                        )
                needs_next = block.terminator in (
                    TerminatorKind.FALLTHROUGH,
                    TerminatorKind.COND,
                    TerminatorKind.CALL,
                    TerminatorKind.CALL_INDIRECT,
                )
                if needs_next and block_index == n_blocks - 1:
                    raise ValueError(
                        f"function {func_index}: final block cannot fall through"
                    )
            last = function.blocks[-1].terminator
            if func_index == 0:
                if last not in (TerminatorKind.JUMP, TerminatorKind.INDIRECT):
                    raise ValueError("entry function must loop back via a jump")
            elif last is not TerminatorKind.RETURN:
                raise ValueError(f"function {func_index} must end with RETURN")

    @staticmethod
    def _local_successors(block: BasicBlock) -> list[int]:
        successors = []
        if block.taken_block is not None:
            successors.append(block.taken_block)
        successors.extend(block.indirect_targets)
        return successors

    @property
    def static_instructions(self) -> int:
        return sum(
            block.size for function in self.functions for block in function.blocks
        )

    @property
    def code_bytes(self) -> int:
        return self.static_instructions * INSTRUCTION_SIZE

    def reset_behaviors(self) -> None:
        for function in self.functions:
            for block in function.blocks:
                if block.behavior is not None:
                    block.behavior.reset()

    def walk(
        self, n_instructions: int, seed: int = 0, indirect_repeat: float = 0.0
    ) -> Trace:
        """Execute the program and emit a trace of ``n_instructions``.

        ``indirect_repeat`` is the probability that an indirect call/jump
        repeats its previous dynamic target — the burstiness that makes
        real dispatch code predictable by an indirect target predictor.
        """
        rng = random.Random(seed)
        self.reset_behaviors()
        entries: list[TraceEntry] = []
        call_stack: list[tuple[int, int]] = []
        func_index, block_index = 0, 0
        global_history = 0
        last_indirect_choice: dict[tuple[int, int], int] = {}

        while len(entries) < n_instructions:
            function = self.functions[func_index]
            block = function.blocks[block_index]
            start = function.block_start(block_index)
            body_len = (
                block.size
                if block.terminator is TerminatorKind.FALLTHROUGH
                else block.size - 1
            )
            for offset in range(body_len):
                entries.append(TraceEntry(pc=start + offset * INSTRUCTION_SIZE))

            kind = block.terminator
            if kind is TerminatorKind.FALLTHROUGH:
                block_index += 1
                continue

            branch_pc = function.terminator_pc(block_index)
            branch_class = _TERMINATOR_TO_CLASS[kind]

            if kind is TerminatorKind.COND:
                taken = block.behavior.next_outcome(rng, global_history)
                global_history = ((global_history << 1) | int(taken)) & (1 << 64) - 1
                target = function.block_start(block.taken_block)
                entries.append(
                    TraceEntry(branch_pc, branch_class, taken, target if taken else 0)
                )
                block_index = block.taken_block if taken else block_index + 1
            elif kind is TerminatorKind.JUMP:
                target = function.block_start(block.taken_block)
                entries.append(TraceEntry(branch_pc, branch_class, True, target))
                block_index = block.taken_block
            elif kind in (TerminatorKind.CALL, TerminatorKind.CALL_INDIRECT):
                if kind is TerminatorKind.CALL:
                    callee = block.callees[0]
                else:
                    site = (func_index, block_index)
                    previous = last_indirect_choice.get(site)
                    if previous is not None and rng.random() < indirect_repeat:
                        callee = previous
                    else:
                        callee = rng.choices(block.callees, block.callee_weights or None)[0]
                    last_indirect_choice[site] = callee
                target = self.functions[callee].block_start(0)
                entries.append(TraceEntry(branch_pc, branch_class, True, target))
                call_stack.append((func_index, block_index + 1))
                func_index, block_index = callee, 0
            elif kind is TerminatorKind.INDIRECT:
                site = (func_index, block_index)
                previous = last_indirect_choice.get(site)
                if previous is not None and rng.random() < indirect_repeat:
                    chosen = previous
                else:
                    chosen = rng.choices(
                        block.indirect_targets, block.indirect_weights or None
                    )[0]
                last_indirect_choice[site] = chosen
                target = function.block_start(chosen)
                entries.append(TraceEntry(branch_pc, branch_class, True, target))
                block_index = chosen
            elif kind is TerminatorKind.RETURN:
                if not call_stack:
                    raise RuntimeError("return with an empty call stack")
                func_index, block_index = call_stack.pop()
                target = self.functions[func_index].block_start(block_index)
                entries.append(TraceEntry(branch_pc, branch_class, True, target))
            else:  # pragma: no cover - exhaustive over TerminatorKind
                raise AssertionError(f"unhandled terminator {kind}")

        trace = Trace.from_entries(self.name, entries[:n_instructions])
        return trace

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.functions)} functions, "
            f"{self.static_instructions} static instructions)"
        )
