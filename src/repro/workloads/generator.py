"""Random program generation driven by a :class:`WorkloadConfig`.

The configuration exposes the two axes the paper's phenomena depend on:

* **static code footprint** — ``n_functions`` × blocks × mean block size
  instructions, to be compared against the µ-op cache reach (4Kops ≈ 16KB
  of 4-byte instructions) and the 32KB L1I;
* **branch predictability mixture** — fractions of biased / patterned /
  history-correlated / hard-to-predict conditionals, plus loop structure,
  which set the conditional MPKI and the population of H2P branches UCP
  triggers on.

Programs are shaped like request-serving datacenter code: the entry
function is a *dispatcher* loop that indirectly calls into a level-
structured call DAG (``call_depth_levels`` deep).  Each dispatch walks a
call tree of a few hundred instructions, so a trace of tens of kilo-
instructions sweeps across a large fraction of the static code — the
over-subscription regime of paper Section III.  Function popularity follows
a Zipf-like skew (``dispatch_skew``): hot request handlers re-hit quickly,
the long tail thrashes the µ-op cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.isa.trace import Trace
from repro.workloads.behaviors import (
    Bernoulli,
    BranchBehavior,
    GlobalCorrelated,
    LoopTrip,
    Pattern,
)
from repro.workloads.cfg import BasicBlock, Function, Program, TerminatorKind

#: Base of the synthetic code address space.
CODE_BASE = 0x0010_0000


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic program generator (all deterministic per seed)."""

    name: str = "synthetic"
    seed: int = 1
    n_instructions: int = 50_000

    # Footprint shape.
    n_functions: int = 24
    blocks_per_function: int = 16
    block_size_mean: float = 6.0
    call_depth_levels: int = 4
    dispatch_skew: float = 0.8  # Zipf exponent for handler popularity

    # Terminator mixture over non-final blocks (weights, renormalised).
    cond_weight: float = 0.55
    call_weight: float = 0.12
    jump_weight: float = 0.08
    indirect_weight: float = 0.03
    fallthrough_weight: float = 0.22

    # Among conditionals: chance the branch is a loop back edge.
    loop_fraction: float = 0.12
    loop_trip_min: int = 2
    loop_trip_max: int = 8
    loop_variable_fraction: float = 0.4  # loops whose trip count varies

    # Behaviour mixture for forward (non-loop) conditionals (renormalised).
    biased_fraction: float = 0.55
    pattern_fraction: float = 0.15
    correlated_fraction: float = 0.22
    h2p_fraction: float = 0.08
    h2p_low: float = 0.12  # taken-probability band for H2P branches
    h2p_high: float = 0.38
    bias_low: float = 0.96  # taken- (or not-taken-) probability of biased branches
    bias_high: float = 0.995
    not_taken_bias_fraction: float = 0.9  # biased branches leaning not-taken

    # Indirect branches.
    indirect_fanout: int = 4
    #: Probability an indirect call/jump repeats its previous target
    #: (request bursts / megamorphic-but-bursty dispatch), which is what
    #: makes real indirect branches ITTAGE-predictable.
    indirect_repeat: float = 0.6

    def scaled_footprint(self, factor: float) -> "WorkloadConfig":
        """Return a copy with the static footprint scaled by ``factor``."""
        return replace(self, n_functions=max(2, round(self.n_functions * factor)))


class ProgramGenerator:
    """Builds a random :class:`Program` from a :class:`WorkloadConfig`.

    Function 0 is the dispatcher; the remaining functions are partitioned
    into ``call_depth_levels`` levels with calls only flowing downward,
    which keeps the call graph a DAG and call-tree sizes bounded.
    """

    def __init__(self, config: WorkloadConfig) -> None:
        if config.n_functions < 2:
            raise ValueError("need at least a dispatcher and one handler")
        self.config = config
        self.rng = random.Random(config.seed)
        self._levels = self._assign_levels()

    def _assign_levels(self) -> list[list[int]]:
        """Partition functions 1..N-1 into contiguous index ranges per level."""
        config = self.config
        n_callees = config.n_functions - 1
        n_levels = max(1, min(config.call_depth_levels, n_callees))
        levels: list[list[int]] = []
        start = 1
        for level in range(n_levels):
            remaining_levels = n_levels - level
            remaining_functions = config.n_functions - start
            count = max(1, remaining_functions // remaining_levels)
            levels.append(list(range(start, start + count)))
            start += count
        return levels

    def _level_of(self, func_index: int) -> int:
        for level, members in enumerate(self._levels):
            if func_index in range(members[0], members[-1] + 1):
                return level
        raise ValueError(f"function {func_index} not in any level")

    def build(self) -> Program:
        config = self.config
        functions: list[Function] = []
        base_pc = CODE_BASE
        for func_index in range(config.n_functions):
            if func_index == 0:
                blocks = self._build_dispatcher()
            else:
                blocks = self._build_function_blocks(func_index)
            function = Function(blocks, base_pc=base_pc)
            functions.append(function)
            # Leave a small gap so functions don't share cache lines.
            base_pc = function.end_pc + 64
        return Program(functions, name=config.name)

    # ------------------------------------------------------------------
    # Dispatcher (function 0)
    # ------------------------------------------------------------------

    def _build_dispatcher(self) -> list[BasicBlock]:
        """A request loop: small preamble, indirect call over level-1 handlers."""
        handlers = self._levels[0]
        weights = [1.0 / (rank + 1) ** self.config.dispatch_skew for rank in range(len(handlers))]
        # Shuffle so popularity is not correlated with address order.
        shuffled = handlers[:]
        self.rng.shuffle(shuffled)
        blocks = [
            BasicBlock(self._block_size(), TerminatorKind.FALLTHROUGH),
            BasicBlock(
                self._block_size(),
                TerminatorKind.CALL_INDIRECT,
                callees=shuffled,
                callee_weights=weights,
            ),
            BasicBlock(self._block_size(), TerminatorKind.JUMP, taken_block=0),
        ]
        return blocks

    # ------------------------------------------------------------------
    # Regular functions
    # ------------------------------------------------------------------

    def _build_function_blocks(self, func_index: int) -> list[BasicBlock]:
        config, rng = self.config, self.rng
        n_blocks = max(
            4, round(rng.gauss(config.blocks_per_function, config.blocks_per_function / 4))
        )
        level = self._level_of(func_index)
        callee_pool = self._levels[level + 1] if level + 1 < len(self._levels) else []

        blocks: list[BasicBlock] = []
        for block_index in range(n_blocks - 1):
            size = self._block_size()
            kind = self._pick_terminator(bool(callee_pool))
            if kind is TerminatorKind.COND:
                blocks.append(self._cond_block(size, block_index, n_blocks, level))
            elif kind is TerminatorKind.JUMP:
                target = self._forward_target(block_index, n_blocks)
                blocks.append(BasicBlock(size, TerminatorKind.JUMP, taken_block=target))
            elif kind is TerminatorKind.CALL:
                callee = rng.choice(callee_pool)
                blocks.append(BasicBlock(size, TerminatorKind.CALL, callees=[callee]))
            elif kind is TerminatorKind.CALL_INDIRECT:
                callees = self._sample_from_pool(callee_pool, 2, 4)
                blocks.append(
                    BasicBlock(
                        size,
                        TerminatorKind.CALL_INDIRECT,
                        callees=callees,
                        callee_weights=self._dispatch_weights(len(callees)),
                    )
                )
            elif kind is TerminatorKind.INDIRECT:
                targets = self._sample_indirect_targets(block_index, n_blocks)
                blocks.append(
                    BasicBlock(
                        size,
                        TerminatorKind.INDIRECT,
                        indirect_targets=targets,
                        indirect_weights=self._dispatch_weights(len(targets)),
                    )
                )
            else:
                blocks.append(BasicBlock(size, TerminatorKind.FALLTHROUGH))

        blocks.append(BasicBlock(self._block_size(), TerminatorKind.RETURN))
        return blocks

    def _block_size(self) -> int:
        size = 1 + int(self.rng.expovariate(1.0 / max(1.0, self.config.block_size_mean - 1)))
        return min(size, 24)

    def _pick_terminator(self, can_call: bool) -> TerminatorKind:
        config, rng = self.config, self.rng
        kinds = [
            (TerminatorKind.COND, config.cond_weight),
            (TerminatorKind.JUMP, config.jump_weight),
            (TerminatorKind.INDIRECT, config.indirect_weight),
            (TerminatorKind.FALLTHROUGH, config.fallthrough_weight),
        ]
        if can_call:
            # Split call weight 4:1 between direct and indirect calls.
            kinds.append((TerminatorKind.CALL, config.call_weight * 0.8))
            kinds.append((TerminatorKind.CALL_INDIRECT, config.call_weight * 0.2))
        names, weights = zip(*kinds)
        return rng.choices(names, weights)[0]

    def _cond_block(
        self, size: int, block_index: int, n_blocks: int, level: int = 0
    ) -> BasicBlock:
        config, rng = self.config, self.rng
        is_loop = rng.random() < config.loop_fraction
        if is_loop:
            # Loop bodies span the block itself or at most the previous
            # block: deeper back edges nest multiplicatively and blow the
            # per-request instruction cost far past realistic handler sizes.
            window = min(block_index, 1)
            target = block_index - (rng.random() < 0.3) * window
            behavior = self._loop_behavior()
        else:
            target = self._forward_target(block_index, n_blocks)
            behavior = self._forward_behavior(level)
        return BasicBlock(size, TerminatorKind.COND, taken_block=target, behavior=behavior)

    def _forward_target(self, block_index: int, n_blocks: int) -> int:
        """A forward successor, skipping up to a handful of blocks."""
        low = block_index + 1
        high = min(n_blocks - 1, block_index + 1 + self.rng.randint(0, 5))
        return self.rng.randint(low, high)

    def _loop_behavior(self) -> BranchBehavior:
        config, rng = self.config, self.rng
        if rng.random() < config.loop_variable_fraction:
            low = rng.randint(config.loop_trip_min, config.loop_trip_max)
            high = rng.randint(low, config.loop_trip_max)
            return LoopTrip(low, high)
        trip = rng.randint(config.loop_trip_min, config.loop_trip_max)
        return LoopTrip(trip, trip)

    def _forward_behavior(self, level: int = 0) -> BranchBehavior:
        config, rng = self.config, self.rng
        if level <= 0:
            # Request handlers (hot code): the full mixture, including the
            # data-dependent hard-to-predict branches datacenter profiles
            # attribute to request-processing logic.
            weights = [
                config.biased_fraction,
                config.pattern_fraction,
                config.correlated_fraction,
                config.h2p_fraction,
            ]
        else:
            # Deeper library-style code: overwhelmingly biased branches.
            weights = [
                config.biased_fraction
                + config.correlated_fraction
                + config.h2p_fraction,
                config.pattern_fraction,
                0.0,
                0.0,
            ]
        choice = rng.choices(["biased", "pattern", "correlated", "h2p"], weights)[0]
        if choice == "biased":
            bias = rng.uniform(config.bias_low, config.bias_high)
            if level > 0:
                # Library-style code: compiler-laid-out not-taken forward
                # branches, correctly predicted even on a cold encounter.
                return Bernoulli(1.0 - bias)
            taken_leaning = rng.random() >= config.not_taken_bias_fraction
            return Bernoulli(bias if taken_leaning else 1.0 - bias)
        if choice == "pattern":
            period = rng.randint(2, 8)
            pattern = [rng.random() < 0.5 for _ in range(period)]
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]
            return Pattern(pattern)
        if choice == "correlated":
            n_taps = rng.randint(1, 3)
            taps = rng.sample(range(1, 14), n_taps)
            return GlobalCorrelated(taps, noise=rng.uniform(0.0, 0.02))
        return Bernoulli(rng.uniform(config.h2p_low, config.h2p_high))

    def _sample_from_pool(self, pool: list[int], low: int, high: int) -> list[int]:
        k = min(len(pool), self.rng.randint(low, high))
        return self.rng.sample(pool, k)

    def _sample_indirect_targets(self, block_index: int, n_blocks: int) -> list[int]:
        config, rng = self.config, self.rng
        pool = list(range(block_index + 1, n_blocks))
        k = min(len(pool), rng.randint(2, max(2, config.indirect_fanout)))
        return rng.sample(pool, k)

    def _dispatch_weights(self, n: int) -> list[float]:
        """Skewed weights: one dominant target plus a tail (realistic dispatch)."""
        return [self.rng.uniform(0.5, 1.0)] + [
            self.rng.uniform(0.05, 0.4) for _ in range(n - 1)
        ]


def generate_trace(config: WorkloadConfig) -> Trace:
    """Build the program for ``config``, walk it, and return the trace."""
    program = ProgramGenerator(config).build()
    trace = program.walk(
        config.n_instructions, seed=config.seed + 1, indirect_repeat=config.indirect_repeat
    )
    trace.validate()
    return trace
