"""The ingested-trace store: imported traces as first-class workloads.

``repro ingest convert`` normalises a real trace (ChampSim/CVP-1/RISC-V/
text) and registers it here; from that point the name behaves exactly
like a built-in suite entry — ``repro simulate NAME``, experiment
matrices, the result cache, and the serve path all resolve it through
:func:`repro.workloads.suite.load_workload`.

Layout (``REPRO_TRACE_DIR``, default ``.simtraces/``)::

    <dir>/manifest.json      {"schema": 1, "traces": {name: {...meta}}}
    <dir>/<name>.npz         canonical columnar Trace

Two integrity properties the rest of the system depends on:

* **Content-addressed cache identity.**  Every entry records a digest of
  the canonical trace *columns* (not the npz bytes, which are
  compression-dependent).  :func:`cache_token` folds that digest into
  the simulation result-cache key, so re-converting a *different* trace
  under the same name can never resurrect stale cached results, while
  identical conversions share the cache across CLI, engine, and serve
  paths.
* **Verified loads.**  :func:`load_ingested` recomputes the column
  digest and refuses a store whose npz no longer matches its manifest
  entry (bit-rot, partial writes, hand-edits) with a typed
  :class:`~repro.isa.errors.TraceFormatError`.

Manifest writes are atomic (temp file + ``os.replace``), mirroring the
result cache's hardening.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.isa.errors import TraceFormatError
from repro.isa.trace import Trace

__all__ = [
    "IngestedWorkload",
    "cache_token",
    "ingest_trace",
    "ingested_names",
    "is_ingested",
    "load_ingested",
    "resolve_meta",
    "store_dir",
]

#: Manifest format version.
STORE_SCHEMA = 1


def store_dir() -> Path:
    """The trace-store directory, resolved from the environment at call
    time (like the result cache's ``REPRO_SIM_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_TRACE_DIR", ".simtraces"))


@dataclass(frozen=True)
class IngestedWorkload:
    """Manifest entry for one ingested trace (the workload's "config")."""

    name: str
    digest: str
    instructions: int
    source_format: str
    source_path: str

    def as_dict(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "instructions": self.instructions,
            "source_format": self.source_format,
            "source_path": self.source_path,
        }


def trace_digest(trace: Trace) -> str:
    """Content digest over the canonical columns (compression-independent)."""
    digest = hashlib.sha256()
    digest.update(len(trace).to_bytes(8, "little"))
    digest.update(trace.pcs.tobytes())
    digest.update(trace.branch_classes.tobytes())
    digest.update(trace.takens.tobytes())
    digest.update(trace.targets.tobytes())
    return digest.hexdigest()


def _manifest_path(directory: Path | None = None) -> Path:
    return (directory if directory is not None else store_dir()) / "manifest.json"


def _read_manifest(directory: Path | None = None) -> dict[str, IngestedWorkload]:
    path = _manifest_path(directory)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise TraceFormatError(
            f"corrupt trace-store manifest: {error}", path=str(path)
        ) from error
    if not isinstance(data, dict) or data.get("schema") != STORE_SCHEMA:
        raise TraceFormatError(
            f"trace-store manifest has unsupported schema "
            f"(expected {STORE_SCHEMA})",
            path=str(path),
        )
    traces = data.get("traces")
    if not isinstance(traces, dict):
        raise TraceFormatError("trace-store manifest missing 'traces'", path=str(path))
    entries: dict[str, IngestedWorkload] = {}
    for name, meta in traces.items():
        if not isinstance(meta, dict):
            raise TraceFormatError(
                f"trace-store manifest entry {name!r} is not an object",
                path=str(path),
            )
        try:
            entries[str(name)] = IngestedWorkload(
                name=str(name),
                digest=str(meta["digest"]),
                instructions=int(meta["instructions"]),
                source_format=str(meta["source_format"]),
                source_path=str(meta.get("source_path", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(
                f"trace-store manifest entry {name!r} is malformed: {error}",
                path=str(path),
            ) from error
    return entries


def _write_manifest(
    entries: dict[str, IngestedWorkload], directory: Path | None = None
) -> None:
    directory = directory if directory is not None else store_dir()
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": STORE_SCHEMA,
        "traces": {name: entries[name].as_dict() for name in sorted(entries)},
    }
    blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=".manifest.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp_name, _manifest_path(directory))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _trace_path(name: str, directory: Path | None = None) -> Path:
    return (directory if directory is not None else store_dir()) / f"{name}.npz"


def _validate_name(name: str) -> None:
    if not name or not all(
        ch.isascii() and (ch.isalnum() or ch in "_-") for ch in name
    ):
        raise ValueError(
            f"invalid ingested-trace name {name!r}: use letters, digits, "
            f"'_' and '-'"
        )


def ingest_trace(
    trace: Trace,
    name: str,
    source_format: str,
    source_path: str = "",
    overwrite: bool = True,
) -> IngestedWorkload:
    """Register a canonical trace in the store under ``name``.

    The trace must already be normalised (``validate()`` is enforced
    here — the store only ever holds simulator-ready streams).
    """
    _validate_name(name)
    from repro.workloads.suite import SUITE

    if name in SUITE:
        raise ValueError(
            f"name {name!r} shadows a built-in suite workload; pick another"
        )
    trace.validate()
    entries = _read_manifest()
    if name in entries and not overwrite:
        raise ValueError(f"ingested trace {name!r} already exists")
    directory = store_dir()
    directory.mkdir(parents=True, exist_ok=True)
    stored = Trace(
        name, trace.pcs, trace.branch_classes, trace.takens, trace.targets
    )
    stored.save(_trace_path(name, directory))
    meta = IngestedWorkload(
        name=name,
        digest=trace_digest(stored),
        instructions=len(stored),
        source_format=source_format,
        source_path=source_path,
    )
    entries[name] = meta
    _write_manifest(entries, directory)
    return meta


def ingested_names() -> list[str]:
    """Sorted names of every registered ingested trace."""
    return sorted(_read_manifest())


def is_ingested(name: str) -> bool:
    try:
        return name in _read_manifest()
    except TraceFormatError:
        return False


def resolve_meta(name: str) -> IngestedWorkload | None:
    """Manifest entry for ``name``, or ``None`` when not registered."""
    return _read_manifest().get(name)


def cache_token(name: str) -> str:
    """Result-cache identity for workload ``name``.

    Built-in suite workloads are identified by name alone (their traces
    are deterministic functions of the committed generator).  Ingested
    traces append the content digest, so the cache key tracks the actual
    trace bytes.
    """
    meta = resolve_meta(name)
    if meta is None:
        return name
    return f"{name}@{meta.digest[:16]}"


def load_ingested(name: str, n_instructions: int | None = None) -> Trace:
    """Load (a prefix of) an ingested trace, verifying its content digest.

    ``n_instructions`` longer than the stored trace clamps to the full
    length — real traces are finite, unlike the synthetic generators.
    """
    meta = resolve_meta(name)
    if meta is None:
        raise KeyError(
            f"unknown ingested trace {name!r}; registered: {ingested_names()}"
        )
    path = _trace_path(name)
    if not path.exists():
        raise TraceFormatError(
            f"trace {name!r} is in the manifest but its npz is missing",
            path=str(path),
        )
    try:
        trace = Trace.load(path)
    except Exception as error:
        raise TraceFormatError(
            f"corrupt stored trace: {error}", path=str(path)
        ) from error
    if trace_digest(trace) != meta.digest:
        raise TraceFormatError(
            f"stored trace {name!r} does not match its manifest digest "
            f"(store corrupted; re-run `repro ingest convert`)",
            path=str(path),
        )
    if n_instructions is None or n_instructions >= len(trace):
        return trace
    return Trace(
        trace.name,
        trace.pcs[:n_instructions],
        trace.branch_classes[:n_instructions],
        trace.takens[:n_instructions],
        trace.targets[:n_instructions],
    )
