"""Synthetic workload generation — the CVP-1 trace substitute.

The paper evaluates on 306 proprietary Qualcomm datacenter traces (CVP-1
"secret" set).  Those are not redistributable, so this package builds the
closest synthetic equivalent: stochastic programs (control-flow graphs with
functions, loops, indirect dispatch) whose *static code footprint* and
*branch predictability mixture* are explicit knobs.  Walking a program
yields a control-flow-consistent dynamic :class:`~repro.isa.trace.Trace`.

The named suite in :mod:`repro.workloads.suite` spans the same qualitative
regimes as the paper's traces: µ-op cache hit rates from ~30% to ~99% and
conditional MPKI from well under 1 to ~8.
"""

from repro.workloads.behaviors import (
    Bernoulli,
    BranchBehavior,
    GlobalCorrelated,
    LoopTrip,
    Pattern,
)
from repro.workloads.cfg import BasicBlock, Function, Program, TerminatorKind
from repro.workloads.datacenter import DATACENTER_SUITE
from repro.workloads.generator import ProgramGenerator, WorkloadConfig, generate_trace
from repro.workloads.store import (
    IngestedWorkload,
    cache_token,
    ingest_trace,
    ingested_names,
    is_ingested,
    load_ingested,
)
from repro.workloads.suite import (
    SUITE,
    WorkloadSpec,
    load_suite,
    load_workload,
    workload_names,
)

__all__ = [
    "BranchBehavior",
    "Bernoulli",
    "Pattern",
    "LoopTrip",
    "GlobalCorrelated",
    "BasicBlock",
    "Function",
    "Program",
    "TerminatorKind",
    "WorkloadConfig",
    "ProgramGenerator",
    "generate_trace",
    "SUITE",
    "DATACENTER_SUITE",
    "WorkloadSpec",
    "load_workload",
    "load_suite",
    "workload_names",
    "IngestedWorkload",
    "cache_token",
    "ingest_trace",
    "ingested_names",
    "is_ingested",
    "load_ingested",
]
