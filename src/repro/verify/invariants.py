"""Runtime invariant checking over a live :class:`~repro.core.pipeline.Simulator`.

The checker walks a registry of named invariants once per cycle (or per
``stride`` cycles).  Each invariant is a small function over the
simulator object graph; structural checks live as ``check_invariants``
methods on the structures themselves (FTQ, fetch engine, µ-op cache,
caches, RAS, backend) so they stay next to the state they validate, and
the functions here mostly dispatch to them plus a few cross-structure
conservation laws only the simulator can see.

Violations raise :class:`SimCheckError` — an ``AssertionError`` subclass
carrying the invariant name and the cycle, so both pytest and the fault
harness can attribute a detection precisely.

Adding an invariant::

    from repro.verify.invariants import register_invariant

    @register_invariant("my-check")
    def _my_check(checker, cycle):
        assert something_about(checker.sim), "what went wrong"

``every=N`` runs it on every N-th checked cycle (for expensive deep
scans), ``stride_one_only=True`` restricts it to per-cycle checking
(for checks comparing adjacent-cycle deltas), and ``on_finish=True``
defers it to end-of-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class SimCheckError(AssertionError):
    """One invariant or oracle violation, attributed to a cycle."""

    def __init__(self, invariant: str, sim_name: str, cycle: int, detail: str) -> None:
        self.invariant = invariant
        self.sim_name = sim_name
        self.cycle = cycle
        self.detail = detail
        super().__init__(f"[{invariant}] {sim_name} @ cycle {cycle}: {detail}")


@dataclass(frozen=True)
class Invariant:
    name: str
    check: Callable[["SimChecker", int], None]
    every: int = 1
    stride_one_only: bool = False
    on_finish: bool = False


#: Name -> Invariant.  Ordered; earlier entries report first on a cycle
#: with multiple simultaneous violations.
INVARIANTS: dict[str, Invariant] = {}


def register_invariant(
    name: str,
    *,
    every: int = 1,
    stride_one_only: bool = False,
    on_finish: bool = False,
):
    """Register ``fn(checker, cycle)`` under ``name`` (decorator)."""

    def decorator(fn: Callable[["SimChecker", int], None]):
        if name in INVARIANTS:
            raise ValueError(f"invariant {name!r} already registered")
        INVARIANTS[name] = Invariant(
            name, fn, every=every, stride_one_only=stride_one_only, on_finish=on_finish
        )
        return fn

    return decorator


class SimChecker:
    """Attached to one Simulator; validates it as it runs.

    Construction installs the shadow oracles (reference L1I contents,
    reference RAS) on the live structures; :meth:`on_cycle` then runs the
    per-cycle invariants and :meth:`on_finish` the end-of-run ones.
    """

    def __init__(self, sim, stride: int = 1) -> None:
        self.sim = sim
        self.stride = max(1, stride)
        self.cycles_checked = 0
        self.checks_run = 0
        self._prev_committed = 0
        self._prev_sources: tuple[int, int, int] | None = None
        self._attach_shadows()

    # ------------------------------------------------------------------
    # Shadow oracle installation
    # ------------------------------------------------------------------

    def _attach_shadows(self) -> None:
        from repro.verify.oracles import RefRAS, RefSetAssocCache

        sim = self.sim
        l1i = sim.hierarchy.l1i
        l1i.shadow = RefSetAssocCache(l1i.config.n_sets, l1i.config.ways)
        sim.bpu.ras.shadow = RefRAS(sim.bpu.ras.capacity)
        if sim.ucp is not None:
            sim.ucp.alt_ras.shadow = RefRAS(sim.ucp.alt_ras.capacity)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        if cycle % self.stride:
            return
        self.cycles_checked += 1
        for invariant in INVARIANTS.values():
            if invariant.on_finish:
                continue
            if invariant.stride_one_only and self.stride != 1:
                continue
            if invariant.every > 1 and self.cycles_checked % invariant.every:
                continue
            self._run(invariant, cycle)

    def on_finish(self, cycle: int) -> None:
        for invariant in INVARIANTS.values():
            if invariant.on_finish:
                self._run(invariant, cycle)

    def _run(self, invariant: Invariant, cycle: int) -> None:
        try:
            invariant.check(self, cycle)
        except SimCheckError:
            raise
        except AssertionError as error:
            raise SimCheckError(
                invariant.name, self.sim.name, cycle, str(error) or "assertion failed"
            ) from None
        self.checks_run += 1


# ----------------------------------------------------------------------
# Built-in invariant catalog (see docs/VALIDATION.md)
# ----------------------------------------------------------------------


@register_invariant("ftq-order")
def _ftq_order(checker: SimChecker, cycle: int) -> None:
    """FTQ FIFO accounting, trace-order contiguity, stall-block position."""
    checker.sim.ftq.check_invariants()


@register_invariant("fetch-queue")
def _fetch_queue(checker: SimChecker, cycle: int) -> None:
    """Fetch mode exclusivity; µ-op queue bounds and index sequencing."""
    checker.sim.fetch.check_invariants()


@register_invariant("uop-cache-bounds")
def _uop_cache_bounds(checker: SimChecker, cycle: int) -> None:
    """µ-op cache per-set occupancy never exceeds the configured ways."""
    cache = checker.sim.uop_cache
    if cache is None:
        return
    ways = cache.config.ways
    for index, entries in enumerate(cache._sets):
        assert len(entries) <= ways, (
            f"uop cache set {index} holds {len(entries)} entries > {ways} ways"
        )


@register_invariant("uop-cache-entries", every=64)
def _uop_cache_entries(checker: SimChecker, cycle: int) -> None:
    """Deep scan: entry shape, set mapping, region-boundary rules."""
    cache = checker.sim.uop_cache
    if cache is not None:
        cache.check_invariants()


@register_invariant("l1i-shadow")
def _l1i_shadow(checker: SimChecker, cycle: int) -> None:
    """L1I geometry bounds + content/classification agreement with the
    reference functional cache oracle."""
    hierarchy = checker.sim.hierarchy
    hierarchy.l1i.check_invariants()
    assert (
        hierarchy.prefetch_queue_occupancy <= hierarchy.config.prefetch_queue_entries
    ), (
        f"prefetch queue holds {hierarchy.prefetch_queue_occupancy} > "
        f"{hierarchy.config.prefetch_queue_entries} entries"
    )


@register_invariant("bpu-ras")
def _bpu_ras(checker: SimChecker, cycle: int) -> None:
    """BPU cursor bounds; RAS depth bounds + reference-RAS agreement."""
    checker.sim.bpu.check_invariants()


@register_invariant("commit-conservation")
def _commit_conservation(checker: SimChecker, cycle: int) -> None:
    """dispatched == committed + in-flight; ROB is a contiguous,
    in-order window whose head is the commit cursor."""
    checker.sim.backend.check_invariants()


@register_invariant("commit-monotonic")
def _commit_monotonic(checker: SimChecker, cycle: int) -> None:
    """The commit counter never decreases and never outruns commit width."""
    backend = checker.sim.backend
    committed = backend.committed
    previous = checker._prev_committed
    assert committed >= previous, (
        f"commit counter went backwards: {previous} -> {committed}"
    )
    limit = backend.config.commit_width * checker.stride
    assert committed - previous <= limit, (
        f"committed {committed - previous} µ-ops in {checker.stride} "
        f"cycle(s), exceeding commit width {backend.config.commit_width}"
    )
    checker._prev_committed = committed


@register_invariant("queue-dispatch-seam")
def _queue_dispatch_seam(checker: SimChecker, cycle: int) -> None:
    """The oldest queued µ-op is exactly the next one to dispatch."""
    queue = checker.sim.fetch.uop_queue
    if queue:
        dispatched = checker.sim.backend.dispatched
        assert queue[0][0] == dispatched, (
            f"µ-op queue head index {queue[0][0]} != dispatch cursor "
            f"{dispatched} — µ-ops lost or duplicated at the seam"
        )


@register_invariant("source-exclusive", stride_one_only=True)
def _source_exclusive(checker: SimChecker, cycle: int) -> None:
    """Build/stream/MRC mode exclusivity: µ-ops come from at most one
    supply path per cycle."""
    stats = checker.sim.stats
    sources = (stats["uops_uop"], stats["uops_decode"], stats["uops_mrc"])
    previous = checker._prev_sources
    if previous is not None:
        grew = sum(1 for now, before in zip(sources, previous) if now > before)
        assert grew <= 1, (
            f"multiple µ-op sources delivered in one cycle: "
            f"uop/decode/mrc went {previous} -> {sources}"
        )
    checker._prev_sources = sources


@register_invariant("ucp-queues")
def _ucp_queues(checker: SimChecker, cycle: int) -> None:
    """UCP Alt-FTQ / alternate decode queue bounds; Alt-RAS agreement."""
    ucp = checker.sim.ucp
    if ucp is None:
        return
    assert len(ucp.alt_ftq) <= ucp.ucp.alt_ftq_entries, (
        f"Alt-FTQ holds {len(ucp.alt_ftq)} > {ucp.ucp.alt_ftq_entries} entries"
    )
    assert len(ucp.decode_queue) <= ucp.ucp.alt_decode_entries, (
        f"alt decode queue holds {len(ucp.decode_queue)} > "
        f"{ucp.ucp.alt_decode_entries} entries"
    )
    ucp.alt_ras.check_invariants()


@register_invariant("final-conservation", on_finish=True)
def _final_conservation(checker: SimChecker, cycle: int) -> None:
    """End of run: every trace instruction was delivered through exactly
    one supply path, dispatched once, and committed once."""
    sim = checker.sim
    n = len(sim.trace)
    assert sim.backend.committed == n, (
        f"run finished with {sim.backend.committed} committed != {n}"
    )
    assert sim.backend.rob_occupancy == 0, (
        f"run finished with {sim.backend.rob_occupancy} µ-ops left in the ROB"
    )
    assert not sim.fetch.uop_queue, (
        f"run finished with {len(sim.fetch.uop_queue)} µ-ops left queued"
    )
    stats = sim.stats
    delivered = stats["uops_uop"] + stats["uops_decode"] + stats["uops_mrc"]
    assert delivered == n, (
        f"{delivered} µ-ops delivered across all supply paths != {n} "
        f"trace instructions — conservation across flushes broken"
    )
    if sim.uop_cache is not None:
        sim.uop_cache.check_invariants()
    sim.hierarchy.l2.check_invariants()
    sim.hierarchy.llc.check_invariants()
