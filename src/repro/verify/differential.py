"""Differential oracle harness: timing model vs functional ground truth.

The simulator replays recorded correct-path traces, so its *architectural*
behaviour is fully known in advance: the committed instruction stream is
the trace, in order, regardless of any timing feature.  The harness
exploits that as a free total oracle — it replays the same synthetic CFG
program through the full timing model under many configurations and
asserts:

* **commit-stream identity** — the retired index sequence equals the
  trace-replay oracle (:func:`repro.verify.oracles.reference_commit_stream`);
* **timing independence** — µ-arch knobs (UCP on/off, prefetchers, MRC,
  idealisations, cache sizes) never change that stream;
* **metamorphic properties** — e.g. µ-op cache hit rate is monotonic in
  cache size (within a small tolerance: growing the set count remaps
  entries and perturbs build/stream mode switching, so exact
  monotonicity is provably too strict — large regressions still mean a
  bug).

Used by ``repro verify`` and the tier-1 differential tests; the fault
harness (:mod:`repro.verify.faults`) uses the same entry points to prove
injected bugs are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import Simulator, SimResult
from repro.verify.invariants import SimCheckError
from repro.verify.oracles import reference_commit_stream
from repro.workloads import load_workload

#: Hit-rate slack (percentage points) allowed against strict monotonicity
#: when growing the µ-op cache: set-count scaling remaps entries.
HITRATE_MONOTONIC_TOL = 0.5


def oracle_configs() -> dict[str, SimConfig]:
    """The configuration spread the differential suite replays."""
    base = SimConfig()
    return {
        "base": base,
        "no-uop": base.without_uop_cache(),
        "ideal-uop": replace(base, ideal_uop_cache=True),
        "ucp": replace(base, ucp=UCPConfig(enabled=True)),
        "ucp-till-l1i": replace(base, ucp=UCPConfig(enabled=True, till_l1i_only=True)),
        "mrc": replace(base, mrc_entries=64),
        "fnl-mma": replace(base, l1i_prefetcher="fnl_mma"),
        "uop-16k": base.with_uop_cache_kops(16),
    }


def run_with_commit_capture(
    workload: str,
    config: SimConfig,
    n_instructions: int,
    check: bool | None = None,
) -> tuple[SimResult, list[int]]:
    """Simulate and tap the retired-index stream via the backend hook."""
    trace = load_workload(workload, n_instructions).trace
    sim = Simulator(trace, config, name=workload, check=check)
    stream: list[int] = []
    sim.backend.commit_hook = stream.append
    result = sim.run()
    return result, stream


def check_commit_stream(
    workload: str,
    config: SimConfig,
    n_instructions: int,
    label: str = "",
    check: bool | None = None,
) -> SimResult:
    """Assert the timing model retires exactly the trace-replay oracle."""
    result, stream = run_with_commit_capture(
        workload, config, n_instructions, check=check
    )
    expected = reference_commit_stream(n_instructions)
    if stream != expected:
        divergence = next(
            (i for i, (got, want) in enumerate(zip(stream, expected)) if got != want),
            min(len(stream), len(expected)),
        )
        raise SimCheckError(
            "commit-stream-oracle",
            f"{workload}{f'/{label}' if label else ''}",
            result.cycles,
            f"committed stream diverges from the trace-replay oracle at "
            f"retire slot {divergence} "
            f"(got {stream[divergence:divergence + 3]}, "
            f"want {expected[divergence:divergence + 3]}; "
            f"lengths {len(stream)} vs {len(expected)})",
        )
    return result


def check_timing_independence(
    workload: str,
    n_instructions: int,
    configs: dict[str, SimConfig] | None = None,
    check: bool | None = None,
) -> dict[str, SimResult]:
    """Every configuration must retire the identical architectural stream.

    This is the metamorphic core: enabling/disabling UCP, prefetchers,
    the MRC, or resizing caches may change *when* instructions retire but
    never *which* or *in what order*.
    """
    results: dict[str, SimResult] = {}
    for label, config in (configs or oracle_configs()).items():
        results[label] = check_commit_stream(
            workload, config, n_instructions, label=label, check=check
        )
    return results


def check_hitrate_monotonic(
    workload: str,
    n_instructions: int,
    kops: tuple[int, ...] = (4, 8, 16),
    tolerance: float = HITRATE_MONOTONIC_TOL,
) -> list[float]:
    """µ-op cache hit rate must not regress as the cache grows."""
    trace = load_workload(workload, n_instructions).trace
    rates: list[float] = []
    for size in kops:
        config = SimConfig().with_uop_cache_kops(size)
        rates.append(Simulator(trace, config, name=workload).run().uop_hit_rate)
    for smaller, (larger_kops, larger) in zip(rates, list(zip(kops, rates))[1:]):
        if larger < smaller - tolerance:
            raise SimCheckError(
                "hitrate-monotonic",
                workload,
                0,
                f"hit rate fell from {smaller:.2f}% to {larger:.2f}% when "
                f"growing the µ-op cache to {larger_kops}Kops "
                f"(tolerance {tolerance} points): {rates}",
            )
    return rates


@dataclass
class VerifyReport:
    """Outcome of one ``repro verify`` differential+invariant sweep."""

    workloads: tuple[str, ...]
    n_instructions: int
    configs: tuple[str, ...]
    runs: int
    cycles_checked: int
    hitrates: dict[str, list[float]]

    def render(self) -> str:
        lines = [
            f"verified {self.runs} runs "
            f"({len(self.workloads)} workloads x {len(self.configs)} configs, "
            f"{self.n_instructions} instructions) against the commit-stream "
            f"oracle with per-cycle invariants",
            f"invariant-checked cycles: {self.cycles_checked}",
        ]
        for name, rates in self.hitrates.items():
            pretty = " -> ".join(f"{rate:.1f}%" for rate in rates)
            lines.append(f"hit-rate monotonicity {name}: {pretty}")
        lines.append("all invariants and oracles held")
        return "\n".join(lines)


def run_verification(
    workloads: tuple[str, ...] = ("int_02", "srv_04", "fp_01"),
    n_instructions: int = 4_000,
    monotonic_workloads: tuple[str, ...] = ("int_02",),
) -> VerifyReport:
    """The full clean-model verification sweep (``repro verify``).

    Raises :class:`SimCheckError` on the first violation; returns a
    renderable report when everything holds.
    """
    configs = oracle_configs()
    runs = 0
    cycles_checked = 0
    for workload in workloads:
        for label, config in configs.items():
            trace = load_workload(workload, n_instructions).trace
            sim = Simulator(trace, config, name=workload, check=True)
            stream: list[int] = []
            sim.backend.commit_hook = stream.append
            sim.run()
            if stream != reference_commit_stream(n_instructions):
                raise SimCheckError(
                    "commit-stream-oracle",
                    f"{workload}/{label}",
                    0,
                    "committed stream diverges from the trace-replay oracle",
                )
            runs += 1
            if sim.checker is not None:
                cycles_checked += sim.checker.cycles_checked
    hitrates = {
        name: check_hitrate_monotonic(name, n_instructions)
        for name in monotonic_workloads
    }
    return VerifyReport(
        workloads=workloads,
        n_instructions=n_instructions,
        configs=tuple(configs),
        runs=runs,
        cycles_checked=cycles_checked,
        hitrates=hitrates,
    )
