"""Service-level fault injection: failures the experiment server must contain.

The PR 2 registry (:mod:`repro.verify.faults`) proves the *simulator*
catches model bugs; this registry proves the *service* layer
(:mod:`repro.serve`) contains operational failures.  Each
:class:`ServiceFault` patches one seam — the worker job entry, the cache
read path — then the harness runs a real server with two concurrent
client requests:

* the **victim** request exercises the fault and must fail *cleanly*
  with the expected typed protocol error code;
* the **healthy** request shares the server (and possibly the shard) and
  must still complete — failure scoping is the property under test.

Faults with a ``followup_code`` get a third request after the failure to
prove the server's post-failure behaviour (e.g. a crashed key is
quarantined, not retried into another crash).

Exposed through ``repro verify --list-faults`` / ``--inject`` alongside
the model faults, and through ``tests/test_serve_faults.py``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.analysis import runner as _runner
from repro.core.configs import SimConfig

__all__ = [
    "SERVICE_FAULTS",
    "ServiceFault",
    "ServiceFaultResult",
    "run_all_service_faults",
    "run_service_fault",
]

#: The workload whose jobs the injected fault targets.
VICTIM_WORKLOAD = "int_01"
#: A second workload that must keep working while the victim fails.
HEALTHY_WORKLOAD = "fp_01"
#: Trace length for both (short: the property is scoping, not fidelity).
N_INSTRUCTIONS = 2_000


def _victim_key() -> str:
    return _runner.cache_key(VICTIM_WORKLOAD, N_INSTRUCTIONS, SimConfig())


@contextmanager
def _patched_attr(module: object, attribute: str, replacement: object) -> Iterator[None]:
    """Swap a module attribute for the duration of the block."""
    original = getattr(module, attribute)
    setattr(module, attribute, replacement)
    try:
        yield
    finally:
        setattr(module, attribute, original)


@dataclass(frozen=True)
class ServiceFault:
    """One injectable service failure and its expected typed error."""

    name: str
    description: str
    #: Protocol error code the victim request must fail with.
    expected_code: str
    #: Returns the context manager installing the failure.
    inject: Callable[[], object]
    #: Scheduler shard mode the fault needs (process isolation for
    #: worker-death faults; thread mode is faster where containment is
    #: not what the fault exercises).
    mode: str = "thread"
    #: Per-request timeout the harness attaches to the victim request.
    request_timeout: float | None = None
    #: Expected error code of a *repeat* victim request (None: skip).
    followup_code: str | None = None


SERVICE_FAULTS: dict[str, ServiceFault] = {}


def _register(fault: ServiceFault) -> ServiceFault:
    if fault.name in SERVICE_FAULTS:
        raise ValueError(f"duplicate service fault {fault.name!r}")
    SERVICE_FAULTS[fault.name] = fault
    return fault


# ----------------------------------------------------------------------
# The faults.
# ----------------------------------------------------------------------


def _inject_worker_killed():
    """The worker process dies (as if OOM-killed) mid-victim-job."""
    from repro.serve import scheduler as _scheduler

    def entry(workload: str, config: SimConfig, n_instructions: int):
        if workload == VICTIM_WORKLOAD:
            os._exit(17)  # hard death: no exception, no cleanup
        return _scheduler._default_job_entry(workload, config, n_instructions)

    return _patched_attr(_scheduler, "_JOB_ENTRY", entry)


_register(
    ServiceFault(
        name="worker-killed",
        description="worker process dies mid-job (SIGKILL/OOM semantics): "
        "the victim request fails with worker-crash after retries and the "
        "key is quarantined; other requests keep completing",
        expected_code="worker-crash",
        inject=_inject_worker_killed,
        mode="process",
        followup_code="quarantined",
    )
)


def _inject_cache_corrupt_read():
    """The cache tier itself fails (I/O error, not a bad entry) on the
    victim key while other keys keep reading fine."""
    real_load = _runner._load_disk
    victim = _victim_key()

    def load(key: str):
        if key == victim:
            raise OSError("injected cache-tier read failure")
        return real_load(key)

    return _patched_attr(_runner, "_load_disk", load)


_register(
    ServiceFault(
        name="cache-corrupt-read",
        description="cache tier raises on the victim key's read (corrupt "
        "entry under load / failing disk): the request fails with "
        "cache-corrupt; other keys keep being served",
        expected_code="cache-corrupt",
        inject=_inject_cache_corrupt_read,
        mode="thread",
    )
)


def _inject_slow_worker():
    """The victim's worker wedges (infinite loop semantics): the job must
    time out, the worker be killed, and the shard keep scheduling."""
    from repro.serve import scheduler as _scheduler

    def entry(workload: str, config: SimConfig, n_instructions: int):
        if workload == VICTIM_WORKLOAD:
            time.sleep(60.0)  # far past the request timeout; killed early
        return _scheduler._default_job_entry(workload, config, n_instructions)

    return _patched_attr(_scheduler, "_JOB_ENTRY", entry)


_register(
    ServiceFault(
        name="slow-worker",
        description="worker wedges on the victim job: the per-job timeout "
        "fires, the worker is killed, the request fails with timeout and "
        "the shard stays schedulable",
        expected_code="timeout",
        inject=_inject_slow_worker,
        mode="process",
        request_timeout=1.0,
    )
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


@dataclass
class ServiceFaultResult:
    """What happened when one service fault ran against a live server."""

    fault: str
    caught: bool
    code: str | None
    healthy_ok: bool
    detail: str

    def render(self) -> str:
        if self.caught:
            return f"CAUGHT  {self.fault}: [{self.code}] — {self.detail}"
        return f"MISSED  {self.fault}: {self.detail}"


@contextmanager
def _isolated_cache() -> Iterator[None]:
    """Run against a private, empty cache; restore everything after."""
    saved_memory = dict(_runner._memory_cache)
    _runner._memory_cache.clear()
    original = os.environ.get("REPRO_SIM_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-servefault-") as tmp:
        os.environ["REPRO_SIM_CACHE_DIR"] = tmp
        try:
            yield
        finally:
            if original is None:
                os.environ.pop("REPRO_SIM_CACHE_DIR", None)
            else:
                os.environ["REPRO_SIM_CACHE_DIR"] = original
            _runner._memory_cache.clear()
            _runner._memory_cache.update(saved_memory)


async def _drive_fault(fault: ServiceFault) -> ServiceFaultResult:
    from repro.serve.client import ServeClient, ServeRequestError
    from repro.serve.server import ExperimentServer

    server = ExperimentServer(
        mode=fault.mode, shards=2, log=lambda *_args: None
    )
    await server.start()
    try:
        async with ServeClient(port=server.port) as client:
            victim = asyncio.create_task(
                client.run(
                    [VICTIM_WORKLOAD],
                    n_instructions=N_INSTRUCTIONS,
                    timeout=fault.request_timeout,
                )
            )
            healthy = asyncio.create_task(
                client.run([HEALTHY_WORKLOAD], n_instructions=N_INSTRUCTIONS)
            )
            code: str | None = None
            detail = ""
            try:
                victim_reply = await victim
                if victim_reply.errors:
                    code = str(victim_reply.errors[0].get("code"))
                    detail = str(victim_reply.errors[0].get("message", ""))
                else:
                    detail = "victim request completed without an error"
            except ServeRequestError as error:
                code = error.code
                detail = str(error)

            healthy_ok = False
            try:
                healthy_reply = await healthy
                healthy_ok = healthy_reply.ok and len(healthy_reply.results) == 1
                if not healthy_ok:
                    detail += " | healthy request failed"
            except ServeRequestError as error:
                detail += f" | healthy request failed: {error}"

            if (
                code == fault.expected_code
                and healthy_ok
                and fault.followup_code is not None
            ):
                try:
                    repeat = await client.run(
                        [VICTIM_WORKLOAD], n_instructions=N_INSTRUCTIONS
                    )
                    repeat_code = (
                        str(repeat.errors[0].get("code"))
                        if repeat.errors
                        else None
                    )
                except ServeRequestError as error:
                    repeat_code = error.code
                if repeat_code != fault.followup_code:
                    return ServiceFaultResult(
                        fault=fault.name,
                        caught=False,
                        code=code,
                        healthy_ok=healthy_ok,
                        detail=f"repeat request got {repeat_code!r}, "
                        f"expected {fault.followup_code!r}",
                    )
                detail += f" | repeat correctly {fault.followup_code}"

            caught = code == fault.expected_code and healthy_ok
            if code != fault.expected_code:
                detail = (
                    f"expected error code {fault.expected_code!r}, got "
                    f"{code!r}: {detail}"
                )
            return ServiceFaultResult(
                fault=fault.name,
                caught=caught,
                code=code,
                healthy_ok=healthy_ok,
                detail=detail,
            )
    finally:
        await server.close()


def run_service_fault(name: str) -> ServiceFaultResult:
    """Inject one service fault against a live server; report the catch."""
    fault = SERVICE_FAULTS[name]
    with _isolated_cache(), fault.inject():
        return asyncio.run(_drive_fault(fault))


def run_all_service_faults() -> list[ServiceFaultResult]:
    """Run every registered service fault (``repro verify --inject all``)."""
    return [run_service_fault(name) for name in SERVICE_FAULTS]
