"""Kernel fault injection: deliberate replay bugs the oracle must catch.

The batched kernel's correctness story rests on the kernel-vs-interpreter
differential oracle (:mod:`repro.verify.kernel_diff`).  This module
proves the oracle's *sensitivity* the same way :mod:`repro.verify.faults`
proves the sanitizer's: each fault monkeypatches one
:class:`~repro.core.kernel.engine.ReplayBPU` method with a subtly broken
clone — the exact class of bug a batching refactor invites — and the
harness asserts the differential fires with the ``kernel-differential``
invariant.  Because only the replay class is patched, the interpreter
reference stays clean and the oracle is the *only* thing standing
between the bug and a silently wrong result.

Exposed through ``repro verify --inject`` / ``--list-faults`` alongside
the core and service fault registries.
"""

from __future__ import annotations

from repro.verify.faults import Fault, FaultResult, _patched
from repro.verify.invariants import SimCheckError
from repro.verify.kernel_diff import kernel_differential
from repro.workloads import load_workload

KERNEL_FAULTS: dict[str, Fault] = {}


def _register(fault: Fault) -> Fault:
    if fault.name in KERNEL_FAULTS:
        raise ValueError(f"duplicate kernel fault {fault.name!r}")
    KERNEL_FAULTS[fault.name] = fault
    return fault


# ----------------------------------------------------------------------
# The faults.  Each clones a ReplayBPU method minus one detail.
# ----------------------------------------------------------------------


def _inject_span_off_by_one():
    """Span jump consumes one instruction too many (may swallow a branch)."""
    from repro.core.kernel.engine import ReplayBPU
    from repro.frontend.bpu import BranchClass
    from repro.frontend.ftq import FetchBlock

    _NOT_BRANCH = int(BranchClass.NOT_BRANCH)
    _COND_DIRECT = int(BranchClass.COND_DIRECT)
    _UNCOND_DIRECT = int(BranchClass.UNCOND_DIRECT)
    _CALL_DIRECT = int(BranchClass.CALL_DIRECT)
    _CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
    _INDIRECT = int(BranchClass.INDIRECT)
    _RETURN = int(BranchClass.RETURN)

    def _build_block(self, cycle):
        classes = self._classes
        block_size = self._fetch_block_size
        n_instructions = self._n_instructions
        next_branch = self._next_branch
        start = self.index
        count = 0
        ends_taken = False
        mispredicted = False

        while count < block_size and self.index < n_instructions:
            i = self.index
            nb = next_branch[i]
            if nb > i:
                # BUG: off-by-one span length — the terminating branch is
                # counted as part of the non-branch run, so it is consumed
                # as a plain instruction and its handler never runs.
                run = nb - i + 1
                room = block_size - count
                if run > room:
                    run = room
                if i + run > n_instructions:
                    run = n_instructions - i
                self.index = i + run
                count += run
                continue
            branch_class = classes[i]
            self.index = i + 1
            count += 1
            if branch_class == _NOT_BRANCH:
                continue

            pc = self._pcs[i]
            taken = self._takens[i]
            target = self._targets[i]

            if branch_class == _COND_DIRECT:
                mispredicted, block_taken = self._handle_conditional(
                    i, pc, taken, target, cycle
                )
                if mispredicted or block_taken:
                    ends_taken = block_taken and not mispredicted
                    break
                continue

            if self.uncond_hook is not None:
                self.uncond_hook(pc)
            if branch_class == _UNCOND_DIRECT:
                self._direct_target(pc, BranchClass.UNCOND_DIRECT, target, cycle)
            elif branch_class == _CALL_DIRECT:
                self._direct_target(pc, BranchClass.CALL_DIRECT, target, cycle)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _CALL_INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
            elif branch_class == _RETURN:
                predicted = self.ras.pop()
                if predicted != target:
                    self.stats.add("ras_mispredictions")
                    mispredicted = True
                    self.stalled_on = i
                    if self.observer is not None:
                        self.observer.on_mispredict(i, pc, "return")
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            ends_taken = not mispredicted
            break

        return FetchBlock(start, count, ends_taken=ends_taken, mispredicted=mispredicted)

    return _patched(ReplayBPU, "_build_block", _build_block)


_register(
    Fault(
        name="kernel-span-off-by-one",
        description="replay span jump overshoots by one instruction, "
        "swallowing branches at span boundaries without handling them",
        expected_invariants=("kernel-differential",),
        inject=_inject_span_off_by_one,
    )
)


def _inject_stale_branch_class():
    """Replay treats direct calls as plain jumps (RAS never pushed)."""
    from repro.core.kernel.engine import ReplayBPU
    from repro.frontend.bpu import BranchClass
    from repro.frontend.ftq import FetchBlock

    _NOT_BRANCH = int(BranchClass.NOT_BRANCH)
    _COND_DIRECT = int(BranchClass.COND_DIRECT)
    _UNCOND_DIRECT = int(BranchClass.UNCOND_DIRECT)
    _CALL_DIRECT = int(BranchClass.CALL_DIRECT)
    _CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
    _INDIRECT = int(BranchClass.INDIRECT)
    _RETURN = int(BranchClass.RETURN)

    def _build_block(self, cycle):
        classes = self._classes
        block_size = self._fetch_block_size
        n_instructions = self._n_instructions
        next_branch = self._next_branch
        start = self.index
        count = 0
        ends_taken = False
        mispredicted = False

        while count < block_size and self.index < n_instructions:
            i = self.index
            nb = next_branch[i]
            if nb > i:
                run = nb - i
                room = block_size - count
                if run > room:
                    run = room
                self.index = i + run
                count += run
                continue
            branch_class = classes[i]
            self.index = i + 1
            count += 1
            if branch_class == _NOT_BRANCH:
                continue

            pc = self._pcs[i]
            taken = self._takens[i]
            target = self._targets[i]

            if branch_class == _COND_DIRECT:
                mispredicted, block_taken = self._handle_conditional(
                    i, pc, taken, target, cycle
                )
                if mispredicted or block_taken:
                    ends_taken = block_taken and not mispredicted
                    break
                continue

            if self.uncond_hook is not None:
                self.uncond_hook(pc)
            # BUG: stale branch class — CALL_DIRECT falls into the plain
            # UNCOND_DIRECT arm, so the return address is never pushed and
            # every matching return pops a stale RAS entry.
            if branch_class == _UNCOND_DIRECT or branch_class == _CALL_DIRECT:
                self._direct_target(pc, BranchClass.UNCOND_DIRECT, target, cycle)
            elif branch_class == _CALL_INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
            elif branch_class == _RETURN:
                predicted = self.ras.pop()
                if predicted != target:
                    self.stats.add("ras_mispredictions")
                    mispredicted = True
                    self.stalled_on = i
                    if self.observer is not None:
                        self.observer.on_mispredict(i, pc, "return")
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            ends_taken = not mispredicted
            break

        return FetchBlock(start, count, ends_taken=ends_taken, mispredicted=mispredicted)

    return _patched(ReplayBPU, "_build_block", _build_block)


_register(
    Fault(
        name="kernel-stale-branch-class",
        description="replay path handles direct calls as plain jumps: no "
        "RAS push, so return prediction replays stale addresses",
        expected_invariants=("kernel-differential",),
        inject=_inject_stale_branch_class,
        workload="dc_call_01",
    )
)


def _inject_skipped_event_boundary():
    """Replay redirect skips the redirect-latency bubble."""
    from repro.core.kernel.engine import ReplayBPU

    def redirect(self, cycle):
        if self.stalled_on is None:
            raise RuntimeError("redirect without a stalled branch")
        self.stalled_on = None
        # BUG: resume_cycle is not advanced — the misprediction-resolution
        # event boundary is skipped and fetch resumes with zero bubble.

    return _patched(ReplayBPU, "redirect", redirect)


_register(
    Fault(
        name="kernel-skipped-event-boundary",
        description="replay redirect drops the resume-cycle bubble: fetch "
        "restarts instantly after every misprediction",
        expected_invariants=("kernel-differential",),
        inject=_inject_skipped_event_boundary,
    )
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run_kernel_fault(name: str) -> FaultResult:
    """Inject one kernel fault and run the differential oracle.

    A catch means :class:`SimCheckError` fired with the
    ``kernel-differential`` invariant; a run that crashes some other way,
    or completes with identical results, is a miss.
    """
    fault = KERNEL_FAULTS[name]
    trace = load_workload(fault.workload, fault.n_instructions).trace
    with fault.inject():
        try:
            kernel_differential(trace, fault.config, name=fault.workload)
        except SimCheckError as error:
            expected = error.invariant in fault.expected_invariants
            return FaultResult(
                fault=name,
                caught=expected,
                invariant=error.invariant,
                cycle=error.cycle,
                detail=str(error)
                if expected
                else f"fired unexpected invariant: {error}",
            )
        except RuntimeError as error:
            return FaultResult(
                fault=name,
                caught=False,
                invariant=None,
                cycle=None,
                detail=f"run died without the oracle firing: {error}",
            )
    return FaultResult(
        fault=name,
        caught=False,
        invariant=None,
        cycle=None,
        detail="differential oracle saw identical results — fault undetected",
    )


def run_all_kernel_faults() -> list[FaultResult]:
    """Run every registered kernel fault (``repro verify --inject all``)."""
    return [run_kernel_fault(name) for name in KERNEL_FAULTS]
