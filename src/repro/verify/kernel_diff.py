"""Kernel-vs-interpreter differential oracle.

The batched kernel (:mod:`repro.core.kernel`) promises *bit-identical*
results to the scalar interpreter — same :meth:`SimResult.to_dict`
export (windowed counters, totals, confidence blocks, interval samples)
and the same idle-skip telemetry.  This module is the enforcement: it
runs both paths on the same trace/config and raises
:class:`~repro.verify.invariants.SimCheckError` with invariant
``kernel-differential`` on any divergence, pinpointing the first key
that differs.

The kernel side is forced on (``check=False, observe=False``) so the
replay path is *always* the thing under test — even in CI jobs that
export ``REPRO_SIM_CHECK=1``, where the kernel would otherwise fall back
to the interpreter and the comparison would be vacuous.  The interpreter
side defers to the environment, so the sanitizer's invariants stay armed
on the reference run.

Also usable as a CLI (``python -m repro.verify.kernel_diff``) which
writes a JSON comparison artifact — per-case instr/s for both paths and
the geomean replay speedup — uploaded by the CI ``kernel-diff`` step.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.configs import SimConfig
from repro.core.kernel import KernelSimulator
from repro.core.pipeline import Simulator
from repro.isa.trace import Trace
from repro.verify.invariants import SimCheckError
from repro.workloads import load_workload

#: Invariant name the oracle reports under (shows up in fault catches).
KERNEL_DIFFERENTIAL = "kernel-differential"


def _first_divergence(reference: dict, candidate: dict) -> str:
    """Human-oriented description of the first differing key."""
    for key in reference:
        ref_value = reference[key]
        cand_value = candidate.get(key)
        if ref_value == cand_value:
            continue
        if isinstance(ref_value, dict) and isinstance(cand_value, dict):
            for sub in sorted(set(ref_value) | set(cand_value)):
                if ref_value.get(sub) != cand_value.get(sub):
                    return (
                        f"{key}[{sub!r}]: interpreter="
                        f"{ref_value.get(sub)!r} kernel={cand_value.get(sub)!r}"
                    )
        return f"{key}: interpreter={ref_value!r} kernel={cand_value!r}"
    extra = set(candidate) - set(reference)
    if extra:
        return f"kernel export has unexpected keys: {sorted(extra)}"
    return "exports differ but no key-level divergence found"


def kernel_differential(
    trace: Trace,
    config: SimConfig,
    name: str,
    idle_skip: bool | None = None,
    interval: int | None = None,
) -> dict[str, Any]:
    """Run interpreter and kernel on one case; raise on any divergence.

    Returns a comparison record (timings, instr/s, speedup) on success.
    """
    t0 = time.perf_counter()  # lint-ok: SIM002 timing telemetry, never touches results
    interp_sim = Simulator(
        trace, config, name=name, idle_skip=idle_skip, interval=interval
    )
    interp = interp_sim.run()
    t1 = time.perf_counter()  # lint-ok: SIM002 timing telemetry, never touches results
    kernel_sim = KernelSimulator(
        trace,
        config,
        name=name,
        check=False,
        observe=False,
        idle_skip=idle_skip,
        interval=interval,
    )
    if not kernel_sim.kernel_active:  # pragma: no cover - defensive
        raise SimCheckError(
            KERNEL_DIFFERENTIAL,
            name,
            0,
            "kernel path not active despite check=False/observe=False — "
            "the differential would compare the interpreter to itself",
        )
    kernel = kernel_sim.run()
    t2 = time.perf_counter()  # lint-ok: SIM002 timing telemetry, never touches results

    ref, cand = interp.to_dict(), kernel.to_dict()
    if ref != cand:
        raise SimCheckError(
            KERNEL_DIFFERENTIAL,
            name,
            int(cand.get("cycles", 0)),
            _first_divergence(ref, cand),
        )
    skip_ref = (interp_sim.skipped_cycles, interp_sim.skip_events)
    skip_cand = (kernel_sim.skipped_cycles, kernel_sim.skip_events)
    if skip_ref != skip_cand:
        raise SimCheckError(
            KERNEL_DIFFERENTIAL,
            name,
            int(cand.get("cycles", 0)),
            f"idle-skip telemetry diverged: interpreter "
            f"(skipped, events)={skip_ref} kernel={skip_cand}",
        )

    n = len(trace)
    interp_s = t1 - t0
    kernel_s = t2 - t1
    return {
        "case": name,
        "instructions": n,
        "cycles": cand["cycles"],
        "interpreter_seconds": round(interp_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "interpreter_instr_per_sec": round(n / interp_s) if interp_s > 0 else None,
        "kernel_instr_per_sec": round(n / kernel_s) if kernel_s > 0 else None,
        "speedup": round(interp_s / kernel_s, 3) if kernel_s > 0 else None,
    }


# ----------------------------------------------------------------------
# Case matrix
# ----------------------------------------------------------------------


def _config_variants() -> dict[str, SimConfig]:
    from repro.experiments.common import baseline_config, ucp_config

    return {"base": baseline_config(), "ucp": ucp_config()}


#: The pinned perf suite plus the datacenter slice (ISSUE 8 scope).
DEFAULT_WORKLOADS: tuple[str, ...] = (
    "fp_01",
    "int_02",
    "srv_05",
    "dc_call_01",
    "dc_interp_01",
    "dc_mega_01",
)


@dataclass
class KernelDiffReport:
    """All case comparisons from one oracle sweep."""

    cases: list[dict[str, Any]] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float | None:
        ratios = [c["speedup"] for c in self.cases if c.get("speedup")]
        if not ratios:
            return None
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def to_dict(self) -> dict[str, Any]:
        geomean = self.geomean_speedup
        return {
            "schema": 1,
            "oracle": KERNEL_DIFFERENTIAL,
            "cases": list(self.cases),
            "geomean_speedup": round(geomean, 3) if geomean else None,
        }

    def render(self) -> str:
        lines = ["kernel-vs-interpreter differential: all cases identical"]
        for case in self.cases:
            lines.append(
                f"  {case['case']:24s} interp {case['interpreter_instr_per_sec'] or 0:>9,} i/s"
                f"  kernel {case['kernel_instr_per_sec'] or 0:>9,} i/s"
                f"  speedup {case['speedup'] or 0:.2f}x"
            )
        geomean = self.geomean_speedup
        if geomean:
            lines.append(f"  geomean replay speedup: {geomean:.2f}x")
        return "\n".join(lines)


def run_kernel_differential(
    n_instructions: int = 4_000,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
) -> KernelDiffReport:
    """Sweep the workload × config matrix through the oracle.

    The first run of each (trace, config) pays the record/precompute
    pre-pass; the per-case speedups therefore *understate* steady-state
    replay gains (perf repeats amortise the pre-pass — see
    ``benchmarks/perf``).
    """
    report = KernelDiffReport()
    variants = _config_variants()
    for workload in workloads:
        trace = load_workload(workload, n_instructions).trace
        for label, config in variants.items():
            record = kernel_differential(trace, config, f"{workload}/{label}")
            report.cases.append(record)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.kernel_diff",
        description="Run the kernel-vs-interpreter differential oracle.",
    )
    parser.add_argument(
        "--instructions", type=int, default=4_000, help="instructions per case"
    )
    parser.add_argument(
        "--out", default=None, help="write the comparison artifact (JSON) here"
    )
    args = parser.parse_args(argv)
    try:
        report = run_kernel_differential(n_instructions=args.instructions)
    except SimCheckError as error:
        print(f"KERNEL DIFFERENTIAL FAILED: {error}")
        return 1
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
