"""Functional golden reference models ("oracles").

Each class here re-implements one hardware structure in the most naive
way possible — plain Python lists, no timing, no clever indexing — so
that the optimized timing-model implementations can be checked against
them, both online (the invariant checker shadows live structures with
these) and offline (property tests drive both implementations with the
same operation sequence and compare every observable).

Keep these *boring*.  An oracle that shares an optimization with the
model it checks can share its bugs too.
"""

from __future__ import annotations


class RefLRU:
    """Reference true-LRU recency order over ``ways`` way indices.

    Mirrors the observable API of :class:`repro.common.lru.LRUSet`:
    ``touch``/``demote``/``victim``/``recency``.
    """

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise ValueError("a set needs at least one way")
        self.ways = ways
        self._lru_to_mru = list(range(ways))

    def touch(self, way: int) -> None:
        self._lru_to_mru.remove(way)
        self._lru_to_mru.append(way)

    def demote(self, way: int) -> None:
        self._lru_to_mru.remove(way)
        self._lru_to_mru.insert(0, way)

    def victim(self) -> int:
        return self._lru_to_mru[0]

    def recency(self, way: int) -> int:
        return self._lru_to_mru.index(way)


class RefRAS:
    """Reference return-address stack: a bounded list keeping the newest.

    Semantically equivalent to the circular-buffer
    :class:`repro.branch.ras.ReturnAddressStack`: overflow silently drops
    the oldest entry, underflow returns ``None``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("RAS needs at least one entry")
        self.capacity = capacity
        self._stack: list[int] = []

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        if len(self._stack) > self.capacity:
            del self._stack[0]

    def pop(self) -> int | None:
        if not self._stack:
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        if not self._stack:
            return None
        return self._stack[-1]

    def copy_from(self, other: "RefRAS") -> None:
        self._stack = list(other._stack[-self.capacity:])

    def __len__(self) -> int:
        return len(self._stack)


class RefSetAssocCache:
    """Reference set-associative tag store: hit/miss plus contents, no timing.

    Operates on *line numbers* (the timing model's
    :meth:`~repro.caches.cache.SetAssocCache.line_of` granularity).  The
    per-set structure intentionally matches the timing model's
    list-of-dicts layout so live shadow comparison is one ``==``.
    """

    def __init__(self, n_sets: int, ways: int) -> None:
        self.n_sets = n_sets
        self.ways = ways
        self.sets: list[dict[int, None]] = [dict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    def _set(self, line: int) -> dict[int, None]:
        return self.sets[line % self.n_sets]

    def access(self, line: int) -> bool:
        """One access: refresh LRU on hit, allocate (evicting LRU) on miss."""
        entries = self._set(line)
        if line in entries:
            self.hits += 1
            del entries[line]
            entries[line] = None
            return True
        self.misses += 1
        if len(entries) >= self.ways:
            del entries[next(iter(entries))]
        entries[line] = None
        return False

    def touch(self, line: int) -> bool:
        """Recency refresh without allocation (MSHR-merge semantics)."""
        entries = self._set(line)
        if line not in entries:
            return False
        del entries[line]
        entries[line] = None
        return True

    def contains(self, line: int) -> bool:
        return line in self._set(line)

    def invalidate(self, line: int) -> None:
        self._set(line).pop(line, None)


def reference_commit_stream(n_instructions: int) -> list[int]:
    """The architectural commit order of an ``n``-instruction trace.

    The simulator replays a recorded correct-path trace with no wrong-path
    execution, so *whatever the timing model does*, the retired
    instruction sequence must be exactly the trace indices in order.
    Every timing feature (UCP, prefetchers, MRC, idealisations) is
    microarchitectural only; this is the differential harness's ground
    truth.
    """
    return list(range(n_instructions))
