"""`repro.verify`: the simulator's correctness substrate.

Three cooperating layers make aggressive refactoring of the timing model
safe (the "sim sanitizer" of the validation plan in ``docs/VALIDATION.md``):

* :mod:`repro.verify.invariants` — cheap per-cycle runtime invariant
  checks over every live pipeline structure (µ-op cache occupancy, FTQ
  ordering, RAS depth, µ-op queue sequencing, commit conservation, …),
  enabled with ``REPRO_SIM_CHECK=1`` (or ``=N`` to check every N cycles)
  and compiled out to a single pointer test per cycle when off.
* :mod:`repro.verify.oracles` — naive *functional* golden reference
  models (LRU, set-associative cache, RAS, commit stream) that the
  invariant checker shadows the timing structures against and that the
  property/differential tests replay independently.
* :mod:`repro.verify.faults` — a mutation/fault-injection harness that
  seeds deliberate model bugs and proves each one is caught by an
  invariant or an oracle (``repro verify --inject``).

The public surface below is what the CLI, the tests and future perf PRs
use; everything else is implementation detail.
"""

from __future__ import annotations

import os

from repro.verify.invariants import (  # noqa: F401  (re-exports)
    INVARIANTS,
    SimChecker,
    SimCheckError,
    register_invariant,
)
from repro.verify.oracles import (  # noqa: F401
    RefLRU,
    RefRAS,
    RefSetAssocCache,
    reference_commit_stream,
)


def check_level() -> int:
    """Configured check stride: 0 = off, 1 = every cycle, N = every N.

    Read from ``REPRO_SIM_CHECK`` at call time so tests and the CLI can
    flip checking on and off without re-importing anything.  Any
    unparsable value counts as "on, every cycle" — a user who set the
    variable wanted checking.
    """
    raw = os.environ.get("REPRO_SIM_CHECK", "")
    if raw in ("", "0"):
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(value, 0) or 1


def checks_enabled() -> bool:
    return check_level() > 0


def make_checker(sim, enabled: bool | None = None) -> SimChecker | None:
    """Build a :class:`SimChecker` for ``sim``, or None when checking is off.

    ``enabled`` overrides the environment: True forces a checker (stride
    from the environment, default 1), False forces none, None defers to
    ``REPRO_SIM_CHECK``.
    """
    if enabled is False:
        return None
    stride = check_level()
    if stride == 0:
        if not enabled:
            return None
        stride = 1
    return SimChecker(sim, stride=stride)
