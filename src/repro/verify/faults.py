"""Fault injection: deliberate model bugs the sanitizer must catch.

Each :class:`Fault` monkeypatches one method of a live model class with a
subtly broken variant — the kind of off-by-one, missing-update or
double-count bug that slips through code review — runs a simulation with
the invariant checker forced on, and records which invariant fired.  The
harness proves two properties:

* **sensitivity** — every registered fault raises :class:`SimCheckError`
  from one of its expected invariants;
* **specificity** — the clean model never fires (covered by
  :func:`repro.verify.differential.run_verification` and the tier-1
  invariant tests).

Patches are installed on the *class* under a context manager and always
restored, so faults cannot leak between runs.  Exposed through
``repro verify --inject`` and ``tests/test_verify_faults.py`` (the
mutation-catch tier-1 test).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.caches.cache import CacheConfig
from repro.caches.hierarchy import HierarchyConfig
from repro.core.configs import SimConfig
from repro.core.pipeline import Simulator
from repro.verify.invariants import SimCheckError
from repro.workloads import load_workload


@contextmanager
def _patched(cls: type, attribute: str, replacement):
    """Swap a class attribute for the duration of the block."""
    original = getattr(cls, attribute)
    setattr(cls, attribute, replacement)
    try:
        yield
    finally:
        setattr(cls, attribute, original)


@dataclass(frozen=True)
class Fault:
    """One injectable model bug and the invariants expected to catch it."""

    name: str
    description: str
    #: Invariant names that legitimately detect this fault (any one).
    expected_invariants: tuple[str, ...]
    #: Returns the context manager installing the bug.
    inject: Callable[[], object]
    #: Workload known to exercise the broken path.
    workload: str = "int_02"
    n_instructions: int = 4_000
    config: SimConfig = field(default_factory=SimConfig)


FAULTS: dict[str, Fault] = {}


def _register(fault: Fault) -> Fault:
    if fault.name in FAULTS:
        raise ValueError(f"duplicate fault {fault.name!r}")
    FAULTS[fault.name] = fault
    return fault


# ----------------------------------------------------------------------
# The faults.  Each `_inject_*` clones the real method minus one detail.
# ----------------------------------------------------------------------


def _inject_uopcache_overflow():
    """µ-op cache insert forgets to evict when the set is full."""
    from repro.caches.uopcache import UopCache

    def insert(self, entry):
        entries = self._sets[self._set_index(entry.start_pc)]
        victim = None
        if entry.start_pc in entries:
            victim = entries.pop(entry.start_pc)
            entry.used = victim.used and not entry.from_prefetch
        # BUG: no eviction when len(entries) >= ways — the set grows
        # without bound, silently inflating the modelled capacity.
        entries[entry.start_pc] = entry
        self.stats.add("insertions")
        if entry.from_prefetch:
            self.stats.add("prefetch_insertions")
        return victim

    return _patched(UopCache, "insert", insert)


_register(
    Fault(
        name="uopcache-overflow",
        description="µ-op cache insert stops evicting: sets exceed the "
        "configured associativity (capacity silently inflated)",
        expected_invariants=("uop-cache-bounds", "uop-cache-entries"),
        inject=_inject_uopcache_overflow,
    )
)


def _inject_ftq_leak():
    """FTQ pop forgets to release the occupancy it consumed."""
    from repro.frontend.ftq import FTQ

    def pop(self):
        # BUG: occupancy counter not decremented — the FTQ appears to
        # fill up and the BPU back-pressures forever.
        return self._blocks.popleft()

    return _patched(FTQ, "pop", pop)


_register(
    Fault(
        name="ftq-leak",
        description="FTQ pop leaks occupancy: the counter drifts from the "
        "queued instruction count until the frontend wedges",
        expected_invariants=("ftq-order",),
        inject=_inject_ftq_leak,
    )
)


def _inject_ras_double_bump():
    """RAS push advances the top-of-stack pointer twice."""
    from repro.branch.ras import ReturnAddressStack

    def push(self, return_address):
        if self.shadow is not None:
            self.shadow.push(return_address)
        self._entries[self._top] = return_address
        # BUG: top advances by two, so peek/pop read a stale slot and
        # returns mispredict to garbage targets.
        self._top = (self._top + 2) % self.capacity
        self._occupancy = min(self.capacity, self._occupancy + 1)

    return _patched(ReturnAddressStack, "push", push)


_register(
    Fault(
        name="ras-double-bump",
        description="RAS push advances the top pointer by two slots: the "
        "predicted return address comes from a stale entry",
        expected_invariants=("bpu-ras", "ucp-queues"),
        inject=_inject_ras_double_bump,
    )
)


def _inject_commit_overcount():
    """Backend commit counts one more retirement than it performed."""
    from repro.core.backend import Backend

    real_commit = Backend.commit

    def commit(self, cycle):
        retired = real_commit(self, cycle)
        if retired:
            # BUG: the commit counter (the IPC numerator) runs ahead of
            # the µ-ops actually drained from the ROB.
            self.committed += 1
        return retired

    return _patched(Backend, "commit", commit)


_register(
    Fault(
        name="commit-overcount",
        description="commit counter increments past the µ-ops actually "
        "retired from the ROB, inflating IPC",
        expected_invariants=("commit-conservation", "commit-monotonic"),
        inject=_inject_commit_overcount,
    )
)


def _inject_fetch_dup():
    """Fetch delivers the first µ-op of every group twice."""
    from repro.frontend.fetch import FetchEngine

    real_deliver = FetchEngine._deliver

    def _deliver(self, index, n, ready, source):
        real_deliver(self, index, n, ready, source)
        # BUG: the group's first µ-op is re-queued — the backend would
        # dispatch (and count) the same trace index twice.
        self.uop_queue.append((index, ready))

    return _patched(FetchEngine, "_deliver", _deliver)


_register(
    Fault(
        name="fetch-dup",
        description="fetch re-queues the first µ-op of each delivered "
        "group, duplicating instructions in the dispatch stream",
        expected_invariants=("fetch-queue",),
        inject=_inject_fetch_dup,
    )
)


def _inject_l1i_lru_skip():
    """L1I hits stop refreshing recency — replacement decays to FIFO."""
    from repro.caches.cache import SetAssocCache

    def access(self, addr, cycle, fill_latency):
        line = self.line_of(addr)
        self._drain_mshr(cycle)
        entries = self._sets[self._set_index(line)]
        if line in self._mshr:
            self.misses += 1
            self.mshr_merges += 1
            if self.shadow is not None:
                self.shadow.touch(line)
            if line in entries:
                del entries[line]
                entries[line] = None
            return False, self._mshr[line]

        if line in entries:
            self.hits += 1
            if self.shadow is not None and not self.shadow.access(line):
                self.shadow_mismatches += 1
            # BUG: hit does not move the line to MRU — replacement is
            # effectively FIFO, evicting hot lines.  Only the functional
            # oracle can see this: geometry stays legal, victims differ.
            return True, cycle + self.config.hit_latency

        self.misses += 1
        if self.shadow is not None and self.shadow.access(line):
            self.shadow_mismatches += 1
        start = cycle
        if len(self._mshr) >= self.config.mshr_entries:
            self.mshr_stalls += 1
            start = max(start, min(self._mshr.values()))
        ready = start + self.config.hit_latency + fill_latency
        self._mshr[line] = ready
        self.allocate(addr)
        return False, ready

    return _patched(SetAssocCache, "access", access)


_register(
    Fault(
        name="l1i-lru-skip",
        description="L1I hits skip the LRU refresh: replacement decays to "
        "FIFO, a pure policy bug invisible to structural checks",
        expected_invariants=("l1i-shadow",),
        inject=_inject_l1i_lru_skip,
        workload="srv_04",
        # A policy bug only shows when victims are actually chosen: shrink
        # the L1I to 4KB/2-way so srv_04's footprint forces replacement.
        config=SimConfig(
            hierarchy=HierarchyConfig(
                l1i=CacheConfig(
                    "L1I", size_bytes=4 * 1024, ways=2, hit_latency=4,
                    mshr_entries=16,
                )
            )
        ),
    )
)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


@dataclass
class FaultResult:
    """What happened when one fault ran under the checker."""

    fault: str
    caught: bool
    invariant: str | None
    cycle: int | None
    detail: str

    def render(self) -> str:
        if self.caught:
            return (
                f"CAUGHT  {self.fault}: [{self.invariant}] at cycle "
                f"{self.cycle} — {self.detail}"
            )
        return f"MISSED  {self.fault}: {self.detail}"


def run_fault(name: str) -> FaultResult:
    """Inject one fault and run with the checker on; report the catch.

    A fault that wedges the pipeline is still a catch *only* if an
    invariant fired first — a bare no-forward-progress RuntimeError counts
    as missed, since the sanitizer's job is to localise the bug.
    """
    fault = FAULTS[name]
    trace = load_workload(fault.workload, fault.n_instructions).trace
    with fault.inject():
        sim = Simulator(trace, fault.config, name=fault.workload, check=True)
        try:
            sim.run()
        except SimCheckError as error:
            expected = error.invariant in fault.expected_invariants
            return FaultResult(
                fault=name,
                caught=expected,
                invariant=error.invariant,
                cycle=error.cycle,
                detail=str(error)
                if expected
                else f"fired unexpected invariant: {error}",
            )
        except RuntimeError as error:
            return FaultResult(
                fault=name,
                caught=False,
                invariant=None,
                cycle=None,
                detail=f"run died without an invariant firing: {error}",
            )
    return FaultResult(
        fault=name,
        caught=False,
        invariant=None,
        cycle=None,
        detail="simulation completed cleanly — fault undetected",
    )


def run_all_faults() -> list[FaultResult]:
    """Run every registered fault; used by ``repro verify --inject all``."""
    return [run_fault(name) for name in FAULTS]
