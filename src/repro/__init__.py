"""repro — Alternate Path µ-op Cache Prefetching (ISCA 2024) in Python.

A from-scratch reproduction of Singh, Perais, Jimborean & Ros's UCP:
a cycle-level decoupled-frontend simulator with a µ-op cache, the full
TAGE-SC-L/ITTAGE/BTB/RAS prediction stack, state-of-the-art L1I prefetcher
baselines, a synthetic datacenter workload suite, and the UCP engine with
every variant the paper evaluates.

Entry points
------------

>>> from repro import SimConfig, simulate, load_workload
>>> result = simulate(load_workload("srv_04", 20_000).trace, SimConfig())
>>> round(result.uop_hit_rate, 1)  # doctest: +SKIP
34.9

See ``examples/`` for walkthroughs, ``repro.experiments`` for the paper's
tables/figures, and ``python -m repro --help`` for the CLI.
"""

from repro.core.configs import SimConfig, UCPConfig
from repro.core.pipeline import SimResult, Simulator, simulate
from repro.workloads.suite import SUITE, load_suite, load_workload

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "UCPConfig",
    "SimResult",
    "Simulator",
    "simulate",
    "SUITE",
    "load_workload",
    "load_suite",
    "__version__",
]
