"""Frontend stall-cycle taxonomy: every cycle lands in exactly one bucket.

The partition mirrors the profiler's discipline (PR 3: component rows sum
to wall time) at the *simulated-cycle* level: delivery cycles are credited
to the µ-op source that produced them, and every no-delivery cycle is
attributed to the single most upstream structure that blocked progress.

Buckets
-------

``streaming``
    µ-ops were delivered from the µ-op cache or the MRC this cycle (the
    short frontend pipe), or the frontend is paying a switch *into*
    stream mode.
``build``
    µ-ops were delivered by the L1I + decode path, or the frontend is
    paying a switch into build mode.
``l1i_miss``
    No delivery: the build path is waiting for instruction bytes from the
    memory hierarchy (attributed to the waiting PC).
``bpu_bubble``
    No delivery: the BPU is serving a BTB-miss re-steer or redirect bubble
    and downstream queues have drained.
``ftq_full``
    No delivery: the BPU has work but the FTQ is at capacity — the
    frontend is rate-limited by its own queue.
``backend_backpressure``
    No delivery: the ROB or the µ-op queue is full — the frontend is
    blocked on the backend draining.
``refill_shadow``
    No delivery inside a misprediction's shadow — from the cycle the BPU
    mispredicts to the first µ-op delivered after the resolving redirect
    (attributed to the mispredicted branch's PC).  This is the window UCP
    attacks (paper Section III-C).
``idle``
    No delivery and nothing blocked: the frontend ran out of trace or is
    waiting on in-flight work with no single culprit.

Priority: a no-delivery cycle is tested in the order refill-shadow,
backend-backpressure, mode-switch stall, L1I miss, BPU bubble, FTQ full,
idle — the first match wins, so the partition is exact by construction.
The accounting invariant (bucket sum == total cycles) is re-checked at
end of run whenever the sim sanitizer is armed (``REPRO_SIM_CHECK``).
"""

from __future__ import annotations

from typing import Any

STREAMING = "streaming"
BUILD = "build"
L1I_MISS = "l1i_miss"
BPU_BUBBLE = "bpu_bubble"
FTQ_FULL = "ftq_full"
BACKEND_BACKPRESSURE = "backend_backpressure"
REFILL_SHADOW = "refill_shadow"
IDLE = "idle"

#: All buckets, in report order.
BUCKETS = (
    STREAMING,
    BUILD,
    L1I_MISS,
    BPU_BUBBLE,
    FTQ_FULL,
    BACKEND_BACKPRESSURE,
    REFILL_SHADOW,
    IDLE,
)


def classify_stall(sim: Any, cycle: int) -> tuple[str, int | None]:
    """Classify one *no-delivery* cycle; returns ``(bucket, pc | None)``.

    Only called for cycles in which the fetch engine moved no µ-ops into
    the µ-op queue (delivery cycles are streaming/build by definition).
    The refill-shadow case is handled by the observer before this runs.
    Every predicate reads state that is frozen while the simulator's
    idle-cycle skipping is active, so skipped ranges classify exactly like
    their executed counterparts.
    """
    fetch = sim.fetch
    if sim.backend.rob_full or fetch.queue_room() <= 0:
        return BACKEND_BACKPRESSURE, None
    if cycle < fetch._stall_until:
        # Mode-switch penalty: charged to the mode being switched into.
        return (STREAMING if fetch._mode == "stream" else BUILD), None
    block = fetch._block
    if block is not None and fetch._mode != "stream":
        pc = fetch._pcs[block.start_index + fetch._offset]
        ready = block.line_ready.get(pc // fetch._line_size)
        if ready is not None and ready > cycle:
            return L1I_MISS, pc
    bpu = sim.bpu
    if bpu.stalled_on is None:
        if cycle < bpu.resume_cycle:
            return BPU_BUBBLE, None
        if bpu.index < len(sim.trace) and not sim.ftq.has_room(
            sim.config.frontend.fetch_block_size
        ):
            return FTQ_FULL, None
    return IDLE, None


class StallTaxonomy:
    """Per-cycle bucket accounting plus per-PC attribution tables."""

    #: Buckets whose cycles are attributed to a specific PC.
    ATTRIBUTED = (L1I_MISS, REFILL_SHADOW)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {bucket: 0 for bucket in BUCKETS}
        #: bucket -> {pc: cycles} for the attributed buckets.
        self.by_pc: dict[str, dict[int, int]] = {
            bucket: {} for bucket in self.ATTRIBUTED
        }
        #: Mispredict *events* per branch PC (not cycles).
        self.mispredicts_by_pc: dict[int, int] = {}

    # -- accounting -----------------------------------------------------

    def add(self, bucket: str, cycles: int = 1, pc: int | None = None) -> None:
        self.counts[bucket] += cycles
        if pc is not None and bucket in self.by_pc:
            table = self.by_pc[bucket]
            table[pc] = table.get(pc, 0) + cycles

    def record_mispredict(self, pc: int) -> None:
        self.mispredicts_by_pc[pc] = self.mispredicts_by_pc.get(pc, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def check_partition(self, total_cycles: int, name: str = "sim") -> None:
        """The accounting invariant: buckets sum exactly to total cycles."""
        accounted = self.total
        if accounted != total_cycles:
            from repro.verify.invariants import SimCheckError

            raise SimCheckError(
                "taxonomy_partition",
                name,
                total_cycles,
                f"stall taxonomy does not partition the run: buckets sum to "
                f"{accounted} but the simulator ran {total_cycles} cycles "
                f"({self.counts})",
            )

    # -- reporting ------------------------------------------------------

    def top(self, bucket: str, k: int = 10) -> list[tuple[int, int]]:
        """Top-``k`` (pc, cycles) for an attributed bucket."""
        table = self.by_pc.get(bucket, {})
        return sorted(table.items(), key=lambda item: (-item[1], item[0]))[:k]

    def top_mispredicted(self, k: int = 10) -> list[tuple[int, int]]:
        """Top-``k`` (pc, mispredict events) branches."""
        return sorted(
            self.mispredicts_by_pc.items(), key=lambda item: (-item[1], item[0])
        )[:k]

    def as_dict(self, top_k: int = 10) -> dict[str, Any]:
        """Stable JSON-friendly export (``repro metrics --json``)."""
        return {
            "cycles": dict(self.counts),
            "top": {
                bucket: [
                    {"pc": pc, "cycles": cycles} for pc, cycles in self.top(bucket, top_k)
                ]
                for bucket in self.ATTRIBUTED
            },
            "top_mispredicted": [
                {"pc": pc, "events": events}
                for pc, events in self.top_mispredicted(top_k)
            ],
        }

    def render(self, top_k: int = 5) -> str:
        """Human-readable taxonomy + attribution tables."""
        total = self.total or 1
        lines = ["stall-cycle taxonomy"]
        for bucket in BUCKETS:
            cycles = self.counts[bucket]
            lines.append(f"  {bucket:21s} {cycles:>10d}  {100.0 * cycles / total:5.1f}%")
        lines.append(f"  {'total':21s} {self.total:>10d}")
        for bucket in self.ATTRIBUTED:
            top = self.top(bucket, top_k)
            if not top:
                continue
            lines.append(f"top {bucket} PCs")
            for pc, cycles in top:
                lines.append(f"  {pc:#010x} {cycles:>10d} cycles")
        top_branches = self.top_mispredicted(top_k)
        if top_branches:
            lines.append("top mispredicted branches")
            for pc, events in top_branches:
                lines.append(f"  {pc:#010x} {events:>10d} events")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"StallTaxonomy({self.total} cycles)"
