"""Interval metrics: windowed time-series sampled every N cycles.

Unlike the event bus (off unless tracing), interval sampling is cheap
enough to stay on by default: the run loop pays one integer compare per
cycle and the recorder materialises one sample per ``interval`` cycles
from :meth:`StatBlock.as_dict` counter deltas.  Samples ride along in
:class:`~repro.core.pipeline.SimResult` (and therefore in the result
cache) as plain dicts.

Sampling happens at exact interval-boundary cycles with the *pre-tick*
architectural state, and the simulator's idle-cycle skipping provably
freezes all counters across skipped ranges, so the sampled series is
bit-identical with skipping on or off.

``REPRO_SIM_INTERVAL`` overrides the default window of 1024 cycles
(``0`` disables sampling entirely).  The knob is deliberately *not* part
of ``SimConfig``: like idle-skip, it is purely observational and must not
perturb the result-cache key.
"""

from __future__ import annotations

import os

from repro.common.stats import StatBlock, per_kilo, percent

#: Default sampling window in cycles.
DEFAULT_INTERVAL = 1024

#: Sentinel "no more samples" boundary for the run loop's hoisted compare.
NO_SAMPLE = 1 << 62


def interval_cycles() -> int:
    """Configured sampling window: 0 = off, N = every N cycles.

    Read from ``REPRO_SIM_INTERVAL`` at call time (same contract as
    ``repro.verify.check_level``); unparsable values fall back to the
    default — a user who set the variable wanted sampling.
    """
    raw = os.environ.get("REPRO_SIM_INTERVAL", "")
    if raw == "":
        return DEFAULT_INTERVAL
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return max(value, 0)


def make_interval_recorder(
    stats: StatBlock, interval: int | None = None
) -> "IntervalRecorder | None":
    """Build a recorder over ``stats``, or None when sampling is off.

    ``interval`` overrides the environment: a positive value forces that
    window, 0 forces sampling off, None defers to ``REPRO_SIM_INTERVAL``.
    """
    if interval is None:
        interval = interval_cycles()
    if interval <= 0:
        return None
    return IntervalRecorder(stats, interval)


class IntervalRecorder:
    """Accumulates one metrics sample per ``interval`` simulated cycles."""

    __slots__ = (
        "interval",
        "next_cycle",
        "samples",
        "_stats",
        "_last_cycle",
        "_prev_instructions",
        "_prev_counters",
    )

    #: Counters whose deltas feed the derived per-window metrics.
    TRACKED = (
        "uops_uop",
        "uops_decode",
        "uops_mrc",
        "cond_branches",
        "cond_mispredictions",
        "mode_switches",
        "ucp_h2p_triggers",
        "ucp_entries_prefetched",
        "ucp_entries_timely",
        "prefetch_insertions",
        "prefetched_entries_used",
    )

    def __init__(self, stats: StatBlock, interval: int) -> None:
        self.interval = interval
        self.next_cycle = interval
        self.samples: list[dict[str, float]] = []
        self._stats = stats
        self._last_cycle = 0
        self._prev_instructions = 0
        self._prev_counters: dict[str, int] = {}

    def catch_up(self, cycle: int, committed: int) -> int:
        """Emit every sample with a boundary ``<= cycle``; returns the next
        boundary.  Called with *pre-tick* state, so after an idle-skip jump
        the late boundaries sample exactly the (frozen) counters they would
        have seen had each cycle executed."""
        while self.next_cycle <= cycle:
            self._sample(self.next_cycle, committed)
            self.next_cycle += self.interval
        return self.next_cycle

    def finish(self, cycle: int, committed: int) -> None:
        """Close the series with a final partial sample at end of run."""
        if cycle > self._last_cycle:
            self._sample(cycle, committed)

    def _sample(self, cycle: int, committed: int) -> None:
        counters = self._stats.as_dict()
        prev = self._prev_counters
        delta = {key: counters.get(key, 0) - prev.get(key, 0) for key in self.TRACKED}
        window_instructions = committed - self._prev_instructions
        window_cycles = cycle - self._last_cycle
        uop = delta["uops_uop"]
        decode = delta["uops_decode"]
        mrc = delta["uops_mrc"]
        self.samples.append(
            {
                "cycle": cycle,
                "instructions": committed,
                "window_cycles": window_cycles,
                "window_instructions": window_instructions,
                "ipc": window_instructions / window_cycles if window_cycles else 0.0,
                "uop_hit_rate": percent(uop, uop + decode + mrc),
                "cond_mpki": per_kilo(delta["cond_mispredictions"], window_instructions),
                "switch_pki": per_kilo(delta["mode_switches"], window_instructions),
                "ucp_triggers": delta["ucp_h2p_triggers"],
                "ucp_entries": delta["ucp_entries_prefetched"],
                "ucp_accuracy": percent(
                    delta["ucp_entries_timely"], delta["ucp_entries_prefetched"]
                ),
                "ucp_coverage": percent(
                    delta["prefetched_entries_used"], delta["prefetch_insertions"]
                ),
            }
        )
        self._last_cycle = cycle
        self._prev_instructions = committed
        self._prev_counters = counters

    def __repr__(self) -> str:
        return f"IntervalRecorder(every {self.interval}, {len(self.samples)} samples)"
