"""Trace sinks: JSONL and Chrome/Perfetto ``trace_event`` output.

Events are buffered in the :class:`~repro.observe.observer.Observer`
during the run and written once at the end, so sinks never sit on the
simulator's hot path.

* :class:`JsonlSink` — one self-describing JSON object per line (a header
  record first), trivially greppable and streamable into pandas.
* :class:`PerfettoSink` — the Chrome ``trace_event`` JSON format: open the
  file in ``chrome://tracing`` or https://ui.perfetto.dev.  Pipeline
  events become instant events on per-component lanes, refill shadows
  become duration slices, and interval metrics become counter tracks.
  Timestamps are simulator *cycles* presented as microseconds (the format
  has no "cycles" unit; 1 cycle == 1 µs keeps the UI readable).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.observe.events import EVENT_CATALOG, LANES
from repro.observe.observer import Observer

#: Schema version of both sink formats.
SINK_SCHEMA = 1


class JsonlSink:
    """Write the event stream as JSON Lines."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write(self, observer: Observer, result: object = None) -> int:
        """Write header + one line per event; returns the event count."""
        events = observer.events
        header: dict[str, Any] = {
            "kind": "header",
            "schema": SINK_SCHEMA,
            "name": observer.sim.name,
            "events": len(events),
            "cycles": observer.cycle,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for event in events:
                handle.write(json.dumps(event.as_dict()) + "\n")
        return len(events)


def load_jsonl(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a JSONL trace back; returns ``(header, events)``."""
    with open(path, encoding="utf-8") as handle:
        lines: list[dict[str, Any]] = [
            json.loads(line) for line in handle if line.strip()
        ]
    if not lines or lines[0].get("kind") != "header":
        raise ValueError(f"{path}: not a repro JSONL trace (missing header)")
    return lines[0], lines[1:]


class PerfettoSink:
    """Write a Chrome/Perfetto ``trace_event`` JSON file."""

    #: Interval-sample fields exported as Perfetto counter tracks.
    COUNTERS = ("ipc", "uop_hit_rate", "cond_mpki")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write(
        self, observer: Observer, intervals: list[dict[str, float]] | None = None
    ) -> int:
        """Write the trace; returns the number of ``traceEvents`` emitted."""
        pid = 0
        metadata: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
            for lane, tid in LANES.items()
        ]
        timed: list[dict[str, Any]] = []
        for event in observer.events:
            lane, _fields = EVENT_CATALOG[event.kind]
            args = dict(event.data)
            if event.pc is not None:
                args["pc"] = f"{event.pc:#x}"
            timed.append(
                {
                    "name": event.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": event.cycle,
                    "pid": pid,
                    "tid": LANES[lane],
                    "args": args,
                }
            )
        for pc, start, end in observer.shadows:
            timed.append(
                {
                    "name": "refill_shadow",
                    "ph": "X",
                    "ts": start,
                    "dur": max(end - start, 1),
                    "pid": pid,
                    "tid": LANES["bpu"],
                    "args": {"pc": f"{pc:#x}"},
                }
            )
        for sample in intervals or []:
            for counter in self.COUNTERS:
                timed.append(
                    {
                        "name": counter,
                        "ph": "C",
                        "ts": sample["cycle"],
                        "pid": pid,
                        "args": {counter: round(sample[counter], 4)},
                    }
                )
        timed.sort(key=lambda item: item["ts"])
        payload: dict[str, Any] = {
            "traceEvents": metadata + timed,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": SINK_SCHEMA,
                "name": observer.sim.name,
                "time_unit": "1 ts == 1 simulated cycle",
            },
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        return len(metadata) + len(timed)


def load_perfetto(path: str | Path) -> dict[str, Any]:
    """Read a Perfetto trace back (plain ``json.load`` with a sanity check)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a trace_event JSON file")
    return payload
