"""Crash flight recorder: bounded per-shard rings of recent events.

Every scheduler shard appends small structured events (submit, start,
finish, retry, restart, …) to its own ring; nothing is written anywhere
in the happy path.  When a worker crashes, times out, or a shard is
quarantined, the scheduler calls :meth:`FlightRecorder.dump` and the
ring — the last ``maxlen`` events leading up to the failure — lands as
a JSON artifact next to the benchmark outputs (``REPRO_BENCH_OUT``
aware via :func:`repro.common.output.resolve_output_path`).

Event timestamps are wall-clock seconds: they order operator-facing
evidence and never feed back into simulation state (SIM002 suppressions
below).  Sequence numbers are process-wide so events from different
shards interleave deterministically in a merged view.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from repro.common.output import resolve_output_path

__all__ = ["DEFAULT_RING_EVENTS", "FlightRecorder", "RECORDER_SCHEMA"]

#: Events retained per shard ring.
DEFAULT_RING_EVENTS = 256

#: Version of the dump artifact shape.
RECORDER_SCHEMA = 1


class FlightRecorder:
    """Per-shard bounded event rings with crash-dump-to-JSON."""

    def __init__(self, maxlen: int = DEFAULT_RING_EVENTS) -> None:
        self._maxlen = maxlen
        self._rings: dict[str, deque[dict[str, Any]]] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._dump_seq = 0
        #: Paths of every artifact written this process, newest last.
        self.dumps: list[Path] = []

    def _ring(self, shard: str) -> deque[dict[str, Any]]:
        ring = self._rings.get(shard)
        if ring is None:
            ring = self._rings.setdefault(shard, deque(maxlen=self._maxlen))
        return ring

    def record(self, shard: str, event: str, **fields: Any) -> None:
        """Append one event to ``shard``'s ring (cheap, never raises)."""
        with self._lock:
            self._seq += 1
            entry: dict[str, Any] = {
                "seq": self._seq,
                "ts": round(time.time(), 6),  # lint-ok: SIM002 operator-facing event timestamp
                "shard": shard,
                "event": event,
            }
            if fields:
                entry.update(fields)
            self._ring(shard).append(entry)

    def events(self, shard: str | None = None) -> list[dict[str, Any]]:
        """Current ring contents (one shard, or all shards merged by seq)."""
        with self._lock:
            if shard is not None:
                return list(self._rings.get(shard, ()))
            merged = [entry for ring in self._rings.values() for entry in ring]
        return sorted(merged, key=lambda entry: int(entry["seq"]))

    def dump(self, shard: str, reason: str) -> Path | None:
        """Write ``shard``'s ring to a JSON artifact; None if ring empty.

        Best-effort by design: a telemetry dump must never turn a worker
        crash into a server crash, so filesystem errors are swallowed.
        """
        with self._lock:
            events = list(self._rings.get(shard, ()))
            self._dump_seq += 1
            dump_seq = self._dump_seq
        if not events:
            return None
        payload = {
            "schema": RECORDER_SCHEMA,
            "shard": shard,
            "reason": reason,
            "dumped_at": round(time.time(), 6),  # lint-ok: SIM002 artifact timestamp
            "events": events,
        }
        name = f"flight-recorder-{shard}-{dump_seq:03d}.json"
        try:
            path = resolve_output_path(name)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        except OSError:
            return None
        self.dumps.append(path)
        return path
