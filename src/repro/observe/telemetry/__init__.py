"""Service-wide telemetry: metrics registry, job spans, flight recorder.

Gating follows the PR 2 / PR 4 convention exactly (compare
:func:`repro.observe.trace_level`): the environment variable
``REPRO_SIM_TELEMETRY`` is read **at call time, never at import time**
(SIM003), unset / ``""`` / ``"0"`` mean *off*, and when off every
``maybe*()`` accessor returns ``None`` — so an instrumentation site
costs exactly one pointer test::

    tel = telemetry.maybe()
    if tel is not None:
        tel.counter("repro_cache_hits_total", labels=("tier",)).inc(tier="disk")

Telemetry must never influence simulation results: it is invisible to
``SimConfig``/cache keys, and the bit-identity differential test in
``tests/test_telemetry.py`` pins SimResult equality on vs. off.

The process-wide singletons (registry, span sink, flight recorder) are
created lazily on first enabled access and survive for the process;
:func:`reset` swaps in fresh ones (test isolation only).
"""

from __future__ import annotations

import os
import threading

from repro.observe.telemetry.recorder import DEFAULT_RING_EVENTS, FlightRecorder
from repro.observe.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
)
from repro.observe.telemetry.spans import (
    Span,
    SpanContext,
    SpanSink,
    new_span_id,
    new_trace_id,
    span_tree,
    spans_to_perfetto,
)

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "DEFAULT_RING_EVENTS",
    "FlightRecorder",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "SpanSink",
    "maybe",
    "maybe_recorder",
    "maybe_spans",
    "new_span_id",
    "new_trace_id",
    "registry",
    "reset",
    "span_tree",
    "spans",
    "spans_to_perfetto",
    "recorder",
    "telemetry_enabled",
    "telemetry_level",
]

_lock = threading.Lock()
_registry: MetricsRegistry | None = None
_spans: SpanSink | None = None
_recorder: FlightRecorder | None = None


def telemetry_level() -> int:
    """Current telemetry level from ``REPRO_SIM_TELEMETRY``.

    Read at call time, never cached at import (SIM003): 0 when the
    variable is unset, empty, or ``"0"``; otherwise 1.
    """
    raw = os.environ.get("REPRO_SIM_TELEMETRY", "")
    if raw in ("", "0"):
        return 0
    return 1


def telemetry_enabled(override: bool | None = None) -> bool:
    """Is the telemetry plane on? ``override`` wins when not None."""
    if override is not None:
        return override
    return telemetry_level() > 0


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (created on first use).

    Unconditional accessor for exposition endpoints and tests; hot
    paths must go through :func:`maybe` so the off state stays a single
    pointer test.
    """
    global _registry
    if _registry is None:
        with _lock:  # lint-ok: SIM010 lazy-singleton init guard, held for one construction
            if _registry is None:
                _registry = MetricsRegistry()
    return _registry


def spans() -> SpanSink:
    """The process-wide span sink (created on first use)."""
    global _spans
    if _spans is None:
        with _lock:  # lint-ok: SIM010 lazy-singleton init guard, held for one construction
            if _spans is None:
                _spans = SpanSink()
    return _spans


def recorder() -> FlightRecorder:
    """The process-wide flight recorder (created on first use)."""
    global _recorder
    if _recorder is None:
        with _lock:  # lint-ok: SIM010 lazy-singleton init guard, held for one construction
            if _recorder is None:
                _recorder = FlightRecorder()
    return _recorder


def maybe(override: bool | None = None) -> MetricsRegistry | None:
    """The registry when telemetry is on, else None (the one-pointer gate)."""
    if not telemetry_enabled(override):
        return None
    return registry()


def maybe_spans(override: bool | None = None) -> SpanSink | None:
    """The span sink when telemetry is on, else None."""
    if not telemetry_enabled(override):
        return None
    return spans()


def maybe_recorder(override: bool | None = None) -> FlightRecorder | None:
    """The flight recorder when telemetry is on, else None."""
    if not telemetry_enabled(override):
        return None
    return recorder()


def reset() -> None:
    """Discard the process singletons (test isolation only)."""
    global _registry, _spans, _recorder
    with _lock:
        _registry = None
        _spans = None
        _recorder = None
