"""``repro top``: a live terminal dashboard over the status verb.

Polls a running experiment server's ``status`` message (which carries
the scheduler counters, the cache state, and — when the server runs
with ``REPRO_SIM_TELEMETRY=1`` — the full metrics-registry snapshot)
and renders a compact, deterministic text view.  ``--once`` prints a
single frame (scriptable, used by tests); ``--json`` dumps the raw
status instead of rendering.

Rendering is pure (:func:`render_status` is dict → str) so tests never
need a TTY; only :func:`run_top` touches the terminal.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = ["render_status", "run_top"]

#: Metric families surfaced in the dashboard's telemetry pane, in order.
_TOP_FAMILIES = (
    "repro_sched_jobs_total",
    "repro_sched_queue_depth",
    "repro_sched_restarts_total",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_engine_jobs_total",
    "repro_kernel_runs_total",
    "repro_kernel_fallback_total",
)


def _fmt_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return "{" + inner + "}"


def _telemetry_lines(snapshot: dict[str, Any] | None) -> list[str]:
    if not snapshot:
        return ["telemetry: off (server runs without REPRO_SIM_TELEMETRY)"]
    by_name = {
        str(metric.get("name")): metric
        for metric in snapshot.get("metrics", [])
        if isinstance(metric, dict)
    }
    lines = [f"telemetry: on ({len(by_name)} metric families)"]
    for name in _TOP_FAMILIES:
        metric = by_name.get(name)
        if metric is None:
            continue
        for sample in metric.get("samples", []):
            if "value" not in sample:
                continue  # histograms are too wide for the dashboard
            labels = sample.get("labels") or {}
            lines.append(f"  {name}{_fmt_labels(labels)} {sample['value']}")
    return lines


def render_status(status: dict[str, Any], endpoint: str = "") -> str:
    """One dashboard frame for a ``status`` reply (deterministic)."""
    scheduler = status.get("scheduler") or {}
    counters = scheduler.get("counters") or {}
    cache = status.get("cache") or {}
    lifetime = cache.get("telemetry")

    where = f" @ {endpoint}" if endpoint else ""
    lines = [
        f"repro serve{where} · protocol {status.get('protocol', '?')} · "
        f"mode {scheduler.get('mode', '?')} · "
        f"shards {scheduler.get('shards', '?')}",
        "jobs: "
        + ", ".join(
            f"{name.removeprefix('jobs_')} {counters.get(name, 0)}"
            for name in (
                "jobs_requested",
                "jobs_coalesced",
                "jobs_from_memory",
                "jobs_from_disk",
                "jobs_simulated",
                "jobs_failed",
            )
        ),
        f"queue: {scheduler.get('queued', 0)} queued · "
        f"{scheduler.get('in_flight', 0)} in flight · "
        f"{scheduler.get('restarts', 0)} restarts · "
        f"{len(scheduler.get('quarantined') or [])} quarantined · "
        f"max pending {status.get('max_pending', '?')}",
        f"cache: {cache.get('disk_entries', 0)} entries / "
        f"{cache.get('disk_bytes', 0)} bytes @ {cache.get('directory', '?')} "
        f"(disk {'on' if cache.get('disk_enabled') else 'off'})",
    ]
    if lifetime:
        rate = lifetime.get("hit_rate")
        rendered = "n/a" if rate is None else f"{rate * 100:.1f}%"
        lines.append(
            f"cache lifetime: hit rate {rendered} "
            f"(memory {lifetime.get('hits_memory', 0)} / "
            f"disk {lifetime.get('hits_disk', 0)} hits, "
            f"{lifetime.get('misses', 0)} misses, "
            f"{lifetime.get('evictions', 0)} evictions)"
        )
    lines.extend(_telemetry_lines(status.get("telemetry")))
    return "\n".join(lines)


async def _poll_once(host: str, port: int) -> dict[str, Any]:
    # Imported lazily: repro.serve imports this package at module load.
    from repro.serve.client import ServeClient

    async with ServeClient(host=host, port=port) as client:
        status: dict[str, Any] = await client.status()
        return status


def run_top(
    host: str,
    port: int,
    *,
    interval: float = 2.0,
    once: bool = False,
    as_json: bool = False,
) -> int:
    """Drive the dashboard loop; returns a process exit code."""

    async def loop() -> int:
        while True:
            try:
                status = await _poll_once(host, port)
            except (ConnectionError, OSError) as error:
                print(f"repro top: cannot reach {host}:{port}: {error}")
                return 1
            if as_json:
                print(json.dumps(status, sort_keys=True))
            else:
                if not once:
                    print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
                print(render_status(status, endpoint=f"{host}:{port}"))
            if once:
                return 0
            await asyncio.sleep(interval)

    try:
        return asyncio.run(loop())
    except KeyboardInterrupt:
        return 0
