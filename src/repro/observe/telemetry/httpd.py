"""Tiny asyncio HTTP exposition endpoint for ``repro serve``.

Serves exactly three read-only paths off the process-wide registry:

* ``GET /metrics`` — Prometheus text exposition (v0.0.4);
* ``GET /metrics.json`` — the registry snapshot as JSON;
* ``GET /healthz`` — liveness probe (``ok``).

Deliberately not a framework: one short-lived connection per request,
no keep-alive, request line + headers capped at 8 KiB.  When telemetry
is off the endpoint still answers (a scrape must not 404 just because
the plane is disabled) but says so in a comment / flag instead of
exposing stale numbers.
"""

from __future__ import annotations

import asyncio
import json

from repro.observe import telemetry

__all__ = ["MetricsEndpoint"]

_MAX_REQUEST_BYTES = 8192


def _response(status: str, content_type: str, body: str) -> bytes:
    payload = body.encode()
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode() + payload


class MetricsEndpoint:
    """One ``asyncio`` HTTP listener bound next to the NDJSON server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = int(sockets[0].getsockname()[1])

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def render(self, path: str) -> bytes:
        """The HTTP response bytes for one request path."""
        enabled = telemetry.telemetry_enabled()
        if path == "/healthz":
            return _response("200 OK", "text/plain; charset=utf-8", "ok\n")
        if path == "/metrics":
            if enabled:
                body = telemetry.registry().render_prometheus()
            else:
                body = "# telemetry disabled (set REPRO_SIM_TELEMETRY=1)\n"
            return _response(
                "200 OK", "text/plain; version=0.0.4; charset=utf-8", body
            )
        if path == "/metrics.json":
            if enabled:
                payload = telemetry.registry().snapshot()
                payload["enabled"] = True
            else:
                payload = {"enabled": False, "metrics": []}
            return _response(
                "200 OK",
                "application/json; charset=utf-8",
                json.dumps(payload, sort_keys=True) + "\n",
            )
        return _response("404 Not Found", "text/plain; charset=utf-8", "not found\n")

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            if len(request) > _MAX_REQUEST_BYTES:
                writer.write(
                    _response("431 Request Header Fields Too Large", "text/plain", "")
                )
                return
            parts = request.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                writer.write(
                    _response(
                        "405 Method Not Allowed", "text/plain; charset=utf-8", ""
                    )
                )
                return
            writer.write(self.render(parts[1]))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
