"""Span-based job tracing with cross-process context propagation.

A *trace* is one logical request (``repro serve`` run verb, one CLI
invocation); a *span* is one timed operation inside it.  The chain for
a served job is::

    client.run -> serve.request -> sched.job -> worker.job -> runner.simulate

The first three live in the client/server processes; the last two run
inside a worker process and come back through the job-entry return
value as plain dicts (:meth:`Span.to_dict` / :meth:`SpanSink.record`),
so no telemetry object ever crosses a pickle boundary.

Context propagation is by value: :meth:`SpanContext.as_wire` is a tiny
``{"trace_id", "span_id"}`` dict carried in the NDJSON ``run`` message
(protocol v2) and in the worker submit call.  IDs come from
``os.urandom`` — never ``random`` (SIM001): trace identity must not
perturb nor depend on simulation seeding.

:func:`spans_to_perfetto` renders finished spans in the same Chrome
trace-event JSON dialect as :class:`repro.observe.sinks.PerfettoSink`,
one synthetic thread per service layer, so a single job's tree is
load-and-click visible in the Perfetto UI.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Span",
    "SpanContext",
    "SpanSink",
    "new_span_id",
    "new_trace_id",
    "span_tree",
    "spans_to_perfetto",
]

#: Synthetic Perfetto "thread" per service layer (span name prefix).
LAYER_TIDS: dict[str, int] = {
    "client": 1,
    "serve": 2,
    "sched": 3,
    "worker": 4,
    "runner": 5,
    "cache": 6,
    "kernel": 7,
}
_OTHER_TID = 8

#: Ring size for finished spans held in memory per process.
DEFAULT_MAX_SPANS = 4096


def new_trace_id() -> str:
    """A 16-byte random hex trace id (os.urandom; see SIM001)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """An 8-byte random hex span id."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of one span: what children point at."""

    trace_id: str
    span_id: str

    def as_wire(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: dict[str, Any] | None) -> SpanContext | None:
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("trace_id")
        span_id = wire.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One timed operation; finished spans are immutable by convention."""

    name: str
    context: SpanContext
    parent_id: str | None
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    def to_dict(self) -> dict[str, Any]:
        """JSON/pickle-safe form (what workers send back to shards)."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Span | None:
        name = data.get("name")
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if (
            not isinstance(name, str)
            or not isinstance(trace_id, str)
            or not isinstance(span_id, str)
        ):
            return None
        parent = data.get("parent_id")
        start = data.get("start")
        end = data.get("end")
        attrs = data.get("attrs")
        return cls(
            name=name,
            context=SpanContext(trace_id=trace_id, span_id=span_id),
            parent_id=parent if isinstance(parent, str) else None,
            start=float(start) if isinstance(start, (int, float)) else 0.0,
            end=float(end) if isinstance(end, (int, float)) else None,
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
        )


class SpanSink:
    """Bounded in-memory store of finished spans for one process."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()

    def start_span(
        self,
        name: str,
        parent: SpanContext | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span now; call :meth:`finish` to seal and keep it."""
        context = SpanContext(
            trace_id=parent.trace_id if parent is not None else new_trace_id(),
            span_id=new_span_id(),
        )
        return Span(
            name=name,
            context=context,
            parent_id=parent.span_id if parent is not None else None,
            start=time.time(),  # lint-ok: SIM002 span timestamps are telemetry, not sim state
            attrs=dict(attrs) if attrs else {},
        )

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Stamp the end time, merge attrs, and retain the span."""
        if span.end is None:
            span.end = time.time()  # lint-ok: SIM002 span timestamps are telemetry, not sim state
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._spans.append(span)
        return span

    def record(self, data: dict[str, Any]) -> Span | None:
        """Ingest a finished span shipped from another process as a dict."""
        span = Span.from_dict(data)
        if span is not None:
            with self._lock:
                self._spans.append(span)
        return span

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans() if span.trace_id == trace_id]

    def drain(self) -> list[Span]:
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def span_tree(spans: list[Span]) -> dict[str | None, list[Span]]:
    """Children grouped by parent span id (``None`` bucket = roots).

    Input order is preserved within each bucket; used by tests to check
    a served job produced one *connected* tree per trace.
    """
    tree: dict[str | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        tree.setdefault(parent, []).append(span)
    return tree


def _layer_tid(name: str) -> int:
    layer = name.split(".", 1)[0]
    return LAYER_TIDS.get(layer, _OTHER_TID)


def spans_to_perfetto(spans: list[Span]) -> dict[str, Any]:
    """Finished spans as Chrome trace-event JSON (Perfetto-compatible).

    Mirrors the PR 4 PerfettoSink dialect: ``ph:"M"`` thread-name
    metadata per service layer, then one ``ph:"X"`` complete slice per
    span with the trace identity in ``args``.  Timestamps are rebased to
    the earliest span start so the UI opens at t=0.
    """
    finished = [span for span in spans if span.end is not None]
    events: list[dict[str, Any]] = []
    layers = sorted({span.name.split(".", 1)[0] for span in finished})
    for layer in layers:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": LAYER_TIDS.get(layer, _OTHER_TID),
                "args": {"name": layer},
            }
        )
    base = min((span.start for span in finished), default=0.0)
    for span in finished:
        end = span.end
        assert end is not None
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": _layer_tid(span.name),
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(max(end - span.start, 0.0) * 1e6, 3),
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
