"""The typed metrics core: Counter / Gauge / Histogram families.

One process-wide :class:`MetricsRegistry` (owned by
:mod:`repro.observe.telemetry`) holds every metric family the service
layers register.  A family is a named metric plus a fixed label schema;
``family.labels(tier="disk")`` returns the child series for one label
set, created on first use.  Children are plain slotted objects whose
update methods are a single attribute mutation — cheap enough that the
*gate* (the one pointer test at every instrumentation site) dominates,
never the update.

Two expositions, both deterministic (families sorted by name, children
by label values, see SIM006):

* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict (the ``telemetry``
  field of the ``status`` protocol verb, ``/metrics.json``);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format v0.0.4 (``repro serve --metrics-port``).

Counter values are exact integers (the same contract StatBlock keeps,
SIM005); gauges and histogram sums are floats.  Registration is
thread-safe; child updates are single attribute writes and tolerate the
benign races a metrics plane can afford.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
]

#: Version of the :meth:`MetricsRegistry.snapshot` payload shape.
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds, tuned for job wall/queue
#: seconds (the dominant histogram use); ``+Inf`` is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, in-flight jobs)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution (cumulative counts at exposition time)."""

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        #: Per-bucket (non-cumulative) observation counts; one extra slot
        #: for observations above the last bound (the ``+Inf`` bucket).
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.total))
        return pairs


class _Family:
    """Shared family plumbing: a label schema and its child series."""

    kind = ""

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _label_values(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != schema "
                f"{sorted(self.label_names)}"
            )
        return tuple(str(labels[key]) for key in self.label_names)

    def _child(self, labels: dict[str, str]) -> Any:
        values = self._label_values(labels)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._children[values] = self._make_child()
        return child

    def series(self) -> list[tuple[dict[str, str], Any]]:
        """Every child with its label dict, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, values)), child) for values, child in items
        ]


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def labels(self, **labels: str) -> Counter:
        child: Counter = self._child(labels)
        return child

    def inc(self, amount: int = 1, **labels: str) -> None:
        self.labels(**labels).inc(amount)


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def labels(self, **labels: str) -> Gauge:
        child: Gauge = self._child(labels)
        return child

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = buckets

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)

    def labels(self, **labels: str) -> Histogram:
        child: Histogram = self._child(labels)
        return child

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_name(name: str) -> str:
    if not name or set(name) - _NAME_OK or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r} (want [a-z_][a-z0-9_]*)")
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = f"{bound:g}"
    return text


def _render_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(key, labels[key]) for key in labels] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + inner + "}"


class MetricsRegistry:
    """Process-wide named metric families with deterministic exposition."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def _register(self, name: str, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not type(family) or (
                    existing.label_names != family.label_names
                ):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"kind or label schema"
                    )
                return existing
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> CounterFamily:
        family = self._register(
            _check_name(name), CounterFamily(name, help_text, tuple(labels))
        )
        assert isinstance(family, CounterFamily)
        return family

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> GaugeFamily:
        family = self._register(
            _check_name(name), GaugeFamily(name, help_text, tuple(labels))
        )
        assert isinstance(family, GaugeFamily)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        family = self._register(
            _check_name(name),
            HistogramFamily(name, help_text, tuple(labels), tuple(buckets)),
        )
        assert isinstance(family, HistogramFamily)
        return family

    # -- reads --------------------------------------------------------------

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, **labels: str) -> float | int | None:
        """One child's current value (counter/gauge), or None if absent.

        A read-side convenience for ``repro cache stats`` and tests; it
        never creates families or children.
        """
        with self._lock:
            family = self._families.get(name)
        if family is None or isinstance(family, HistogramFamily):
            return None
        try:
            values = family._label_values(labels)
        except ValueError:
            return None
        child = family._children.get(values)
        if child is None:
            return None
        result: float | int = child.value
        return result

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as one JSON-safe dict (sorted, stable)."""
        metrics: list[dict[str, Any]] = []
        for family in self.families():
            samples: list[dict[str, Any]] = []
            for labels, child in family.series():
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.total,
                            "sum": round(child.sum, 6),
                            "buckets": {
                                _format_bound(bound): count
                                for bound, count in child.cumulative()
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "samples": samples,
                }
            )
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.series():
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        tag = _render_labels(
                            labels, (("le", _format_bound(bound)),)
                        )
                        lines.append(f"{family.name}_bucket{tag} {cumulative}")
                    tag = _render_labels(labels)
                    lines.append(f"{family.name}_sum{tag} {child.sum:g}")
                    lines.append(f"{family.name}_count{tag} {child.total}")
                else:
                    tag = _render_labels(labels)
                    value = child.value
                    rendered = f"{value:g}" if isinstance(value, float) else str(value)
                    lines.append(f"{family.name}{tag} {rendered}")
        return "\n".join(lines) + "\n"
