"""``repro.observe``: zero-cost-when-off simulator instrumentation.

Three pillars (see ``docs/OBSERVABILITY.md``):

* an **event bus** (:mod:`repro.observe.observer`) collecting the typed
  pipeline events of :mod:`repro.observe.events` — fetch-mode switches,
  µ-op cache fills/evictions/hits, FTQ traffic, branch mispredicts and
  resolutions, UCP triggers and alternate-path fills — with JSONL and
  Chrome/Perfetto sinks (:mod:`repro.observe.sinks`);
* **interval metrics** (:mod:`repro.observe.metrics`): IPC, µ-op cache
  hit rate, MPKI and UCP accuracy/coverage time-series sampled every N
  cycles and carried in ``SimResult.intervals``;
* a **stall-cycle taxonomy** (:mod:`repro.observe.taxonomy`): every cycle
  classified into exactly one bucket, with the partition invariant
  enforced under ``REPRO_SIM_CHECK`` and per-PC attribution tables.

Gating follows the PR 2 sanitizer pattern exactly: ``make_observer``
returns None unless ``REPRO_SIM_TRACE`` is set (or the caller forces
``enabled=True``), and every hook site in the pipeline pays a single
pointer test when tracing is off.
"""

from __future__ import annotations

import os
from typing import Any

from repro.observe.events import EVENT_CATALOG, LANES, TraceEvent
from repro.observe.metrics import (
    DEFAULT_INTERVAL,
    IntervalRecorder,
    interval_cycles,
    make_interval_recorder,
)
from repro.observe.observer import Observer
from repro.observe.sinks import JsonlSink, PerfettoSink, load_jsonl, load_perfetto
from repro.observe.taxonomy import BUCKETS, StallTaxonomy, classify_stall

__all__ = [
    "BUCKETS",
    "DEFAULT_INTERVAL",
    "EVENT_CATALOG",
    "IntervalRecorder",
    "JsonlSink",
    "LANES",
    "Observer",
    "PerfettoSink",
    "StallTaxonomy",
    "TraceEvent",
    "classify_stall",
    "interval_cycles",
    "load_jsonl",
    "load_perfetto",
    "make_interval_recorder",
    "make_observer",
    "trace_level",
    "tracing_enabled",
]


def trace_level() -> int:
    """Configured tracing level: 0 = off, 1 = on.

    Read from ``REPRO_SIM_TRACE`` at call time (the same contract as
    ``repro.verify.check_level``) so tests and the CLI can flip tracing
    without re-importing anything.  Any unparsable value counts as on —
    a user who set the variable wanted tracing.
    """
    raw = os.environ.get("REPRO_SIM_TRACE", "")
    if raw in ("", "0"):
        return 0
    return 1


def tracing_enabled() -> bool:
    return trace_level() > 0


def make_observer(sim: Any, enabled: bool | None = None) -> Observer | None:
    """Build an :class:`Observer` for ``sim``, or None when tracing is off.

    ``enabled`` overrides the environment: True forces an observer, False
    forces none, None defers to ``REPRO_SIM_TRACE``.
    """
    if enabled is False:
        return None
    if not enabled and trace_level() == 0:
        return None
    return Observer(sim)
