"""The event bus at the heart of ``repro.observe``.

One :class:`Observer` per simulation collects typed events from every
pipeline component, drives the stall-cycle taxonomy, and tracks
misprediction refill shadows.  Components hold ``self.observer = None``
by default and emit behind a single pointer test, exactly like the PR 2
sanitizer hooks — with tracing off the whole subsystem costs the run loop
two pointer tests per cycle and each component one per (rare) emit site.

The observer attaches itself to the simulator's components on
construction; the main loop calls :meth:`begin_cycle` / :meth:`end_cycle`
around each executed cycle and :meth:`on_skip` when the idle-skip
fast-path jumps the clock (state is provably frozen across the jump, so
the skipped range is classified once, at the jump point).
"""

from __future__ import annotations

from typing import Any

from repro.observe.events import (
    BRANCH_MISPREDICT,
    BRANCH_RESOLVE,
    ROB_DRAIN,
    ROB_FULL,
    TraceEvent,
)
from repro.observe.taxonomy import (
    BUILD,
    REFILL_SHADOW,
    STREAMING,
    StallTaxonomy,
    classify_stall,
)


class Observer:
    """Event buffer + taxonomy driver for one simulation."""

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        #: Current cycle, maintained by the run loop for emitters that do
        #: not receive one (µ-op cache, FTQ).
        self.cycle = 0
        self.events: list[TraceEvent] = []
        self.taxonomy = StallTaxonomy()
        #: Closed refill shadows: (branch_pc, start_cycle, end_cycle).
        self.shadows: list[tuple[int, int, int]] = []
        self._shadow_pc: int | None = None
        self._shadow_start = 0
        self._shadow_resolved = False
        # Delivery-counter snapshot taken at the top of each cycle.
        self._stats = sim.stats
        self._uop0 = 0
        self._decode0 = 0
        self._mrc0 = 0
        # Flattened PC column (shared with the fetch engine) for emitters
        # that report a trace index rather than a PC.
        self._pcs = sim.fetch._pcs
        # ROB-full edge detector for the backend timeline lane.
        self._rob_was_full = False

        # Attach to every component (one pointer test per emit site).
        sim.fetch.observer = self
        sim.bpu.observer = self
        sim.ftq.observer = self
        sim.backend.observer = self
        if sim.uop_cache is not None:
            sim.uop_cache.observer = self
        if sim.ucp is not None:
            sim.ucp.observer = self

    # ------------------------------------------------------------------
    # Event bus
    # ------------------------------------------------------------------

    def emit(self, kind: str, pc: int | None = None, **data: object) -> None:
        self.events.append(TraceEvent(self.cycle, kind, pc, data))

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # Dedicated entry points for events with taxonomy side effects.

    def on_mispredict(self, index: int, pc: int, flavor: str) -> None:
        """BPU mispredicted a branch: emit and open its refill shadow."""
        self.events.append(
            TraceEvent(
                self.cycle, BRANCH_MISPREDICT, pc, {"index": index, "flavor": flavor}
            )
        )
        self.taxonomy.record_mispredict(pc)
        if self._shadow_pc is not None:
            # A new mispredict before the previous shadow saw its first
            # post-redirect delivery: close the old shadow here.
            self.shadows.append((self._shadow_pc, self._shadow_start, self.cycle))
        self._shadow_pc = pc
        self._shadow_start = self.cycle
        self._shadow_resolved = False

    def on_resolve(self, index: int) -> None:
        """The stalling branch resolved; the pipeline refill begins."""
        self.events.append(
            TraceEvent(self.cycle, BRANCH_RESOLVE, self._pcs[index], {"index": index})
        )
        self._shadow_resolved = True

    # ------------------------------------------------------------------
    # Per-cycle taxonomy driving
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        self.cycle = cycle
        stats = self._stats
        self._uop0 = stats["uops_uop"]
        self._decode0 = stats["uops_decode"]
        self._mrc0 = stats["uops_mrc"]

    def end_cycle(self, cycle: int) -> None:
        rob_full = self.sim.backend.rob_full
        if rob_full != self._rob_was_full:
            self._rob_was_full = rob_full
            occupancy = self.sim.backend.rob_occupancy
            self.events.append(
                TraceEvent(
                    cycle,
                    ROB_FULL if rob_full else ROB_DRAIN,
                    None,
                    {"occupancy": occupancy},
                )
            )
        stats = self._stats
        delivered_stream = (
            stats["uops_uop"] - self._uop0 or stats["uops_mrc"] - self._mrc0
        )
        delivered_build = stats["uops_decode"] - self._decode0
        if delivered_stream or delivered_build:
            self.taxonomy.add(STREAMING if delivered_stream else BUILD)
            if self._shadow_pc is not None and self._shadow_resolved:
                # First delivery after the redirect closes the shadow.
                self.shadows.append((self._shadow_pc, self._shadow_start, cycle))
                self._shadow_pc = None
            return
        if self._shadow_pc is not None:
            self.taxonomy.add(REFILL_SHADOW, pc=self._shadow_pc)
            return
        bucket, pc = classify_stall(self.sim, cycle)
        self.taxonomy.add(bucket, pc=pc)

    def on_skip(self, cycle: int, wake: int) -> None:
        """The clock jumps ``cycle -> wake``: state (and therefore the
        classification) is frozen, so the whole range books in one call.
        A skip is only legal when no component can act, which implies no
        delivery — the no-delivery classifier applies directly."""
        self.cycle = cycle
        cycles = wake - cycle
        if self._shadow_pc is not None:
            self.taxonomy.add(REFILL_SHADOW, cycles, pc=self._shadow_pc)
            return
        bucket, pc = classify_stall(self.sim, cycle)
        self.taxonomy.add(bucket, cycles, pc=pc)

    def on_finish(self, total_cycles: int) -> None:
        """Close open shadows and, with the sanitizer armed, enforce the
        partition invariant (buckets sum exactly to total cycles)."""
        if self._shadow_pc is not None:
            self.shadows.append((self._shadow_pc, self._shadow_start, total_cycles))
            self._shadow_pc = None
        if self.sim.checker is not None:
            self.taxonomy.check_partition(total_cycles, name=self.sim.name)

    def __repr__(self) -> str:
        return f"Observer({len(self.events)} events, cycle {self.cycle})"
