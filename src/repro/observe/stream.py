"""Stream adapter: observability data → NDJSON-ready progress events.

The experiment server (:mod:`repro.serve`) streams a run's progress to
clients as ``event`` lines.  This module is the bridge between the
observability layer's artifacts — the interval-metrics time-series riding
in :class:`~repro.core.pipeline.SimResult` and the stall-cycle taxonomy
export from :class:`~repro.observe.taxonomy.StallTaxonomy` — and plain
JSON-serialisable event dicts.  It knows nothing about sockets or the
wire protocol; the server wraps each event with the protocol envelope
(``type: "event"`` plus the request id).

Event kinds (the ``event`` field):

* ``job-started``  — a job left the queue for a worker;
* ``job-finished`` — a job resolved (``cached`` says from which tier);
* ``interval``     — one interval-metrics sample (downsampled to at most
  ``max_samples`` per job so a long run cannot flood a client);
* ``taxonomy``     — the job's stall-cycle bucket totals.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = [
    "DEFAULT_MAX_SAMPLES",
    "downsample",
    "interval_events",
    "job_finished_event",
    "job_started_event",
    "taxonomy_event",
]

#: Default per-job cap on streamed interval samples.
DEFAULT_MAX_SAMPLES = 32

#: The per-sample fields worth streaming (a subset of the recorder's
#: sample dict — enough to plot IPC/hit-rate/MPKI live).
_SAMPLE_FIELDS = (
    "cycle",
    "instructions",
    "ipc",
    "uop_hit_rate",
    "cond_mpki",
    "switch_pki",
    "ucp_accuracy",
)


def downsample(samples: Sequence[Any], limit: int) -> list[Any]:
    """At most ``limit`` samples, evenly strided, always keeping the last.

    The final sample closes the series (it is the partial end-of-run
    window), so plots stay anchored at the true end of the run.
    """
    if limit <= 0 or len(samples) <= limit:
        return list(samples)
    stride = len(samples) / limit
    picked = [samples[int(i * stride)] for i in range(limit)]
    picked[-1] = samples[-1]
    return picked


def job_started_event(key: str, workload: str) -> dict[str, Any]:
    return {"event": "job-started", "key": key, "workload": workload}


def job_finished_event(
    key: str, workload: str, cached: bool, seconds: float | None = None
) -> dict[str, Any]:
    record: dict[str, Any] = {
        "event": "job-finished",
        "key": key,
        "workload": workload,
        "cached": cached,
    }
    if seconds is not None:
        record["seconds"] = round(seconds, 4)
    return record


def interval_events(
    key: str,
    workload: str,
    samples: Sequence[dict[str, Any]],
    max_samples: int = DEFAULT_MAX_SAMPLES,
) -> list[dict[str, Any]]:
    """One ``interval`` event per (downsampled) recorder sample."""
    events = []
    for sample in downsample(samples, max_samples):
        record: dict[str, Any] = {
            "event": "interval",
            "key": key,
            "workload": workload,
        }
        for field in _SAMPLE_FIELDS:
            if field in sample:
                value = sample[field]
                record[field] = round(value, 4) if isinstance(value, float) else value
        events.append(record)
    return events


def taxonomy_event(
    key: str, workload: str, taxonomy: dict[str, Any]
) -> dict[str, Any]:
    """The job's stall-cycle totals (from ``StallTaxonomy.as_dict()``)."""
    return {
        "event": "taxonomy",
        "key": key,
        "workload": workload,
        "cycles": dict(taxonomy.get("cycles", {})),
    }
