"""Typed pipeline events for the observability layer.

Every event the simulator can emit is declared here, with its payload
fields, so sinks, tests and docs share one catalog.  Events are cheap
plain objects — the hot emit path allocates one :class:`TraceEvent` and
appends it to the observer's buffer; nothing is formatted until a sink
writes the run out.

Timestamps are simulator cycles.  Components that do not know the current
cycle (the µ-op cache, the FTQ) read it from the observer, which the main
loop updates at the top of every executed cycle.
"""

from __future__ import annotations

from collections.abc import Mapping

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

#: Frontend switched fetch mode (stream <-> build).
FETCH_MODE_SWITCH = "fetch_mode_switch"
#: A µ-op cache entry was installed (demand build path or UCP prefetch).
UOP_FILL = "uop_fill"
#: A µ-op cache entry was evicted to make room.
UOP_EVICT = "uop_evict"
#: A demand lookup hit a µ-op cache entry.
UOP_HIT = "uop_hit"
#: A prefetched entry was used for the first time (UCP usefulness).
UCP_USEFUL_FILL = "ucp_useful_fill"
#: The BPU pushed a fetch block into the FTQ.
FTQ_ENQUEUE = "ftq_enqueue"
#: The FTQ was squashed (cleared) wholesale.
FTQ_SQUASH = "ftq_squash"
#: The BPU processed a branch it mispredicted (direction or target).
BRANCH_MISPREDICT = "branch_mispredict"
#: A mispredicted branch resolved in the backend; the frontend redirects.
BRANCH_RESOLVE = "branch_resolve"
#: An H2P trigger started a UCP alternate-path walk.
UCP_TRIGGER = "ucp_trigger"
#: UCP inserted a walked entry into the µ-op cache.
UCP_ALT_FILL = "ucp_alt_fill"
#: The ROB filled up — the frontend is now backpressured.
ROB_FULL = "rob_full"
#: The ROB drained below capacity again.
ROB_DRAIN = "rob_drain"

#: Catalog: kind -> (component lane, payload field documentation).
#: The lane groups events into Perfetto threads; the field docs are the
#: contract ``docs/OBSERVABILITY.md`` and the sink tests check against.
EVENT_CATALOG: dict[str, tuple[str, dict[str, str]]] = {
    FETCH_MODE_SWITCH: (
        "fetch",
        {"to": "mode being switched into ('stream' or 'build')"},
    ),
    UOP_FILL: (
        "uopcache",
        {
            "n_uops": "µ-ops in the installed entry",
            "from_prefetch": "True when UCP's alternate path built the entry",
        },
    ),
    UOP_EVICT: (
        "uopcache",
        {
            "from_prefetch": "True when the victim came from a prefetch",
            "used": "True when the victim was ever hit by a demand lookup",
        },
    ),
    UOP_HIT: ("uopcache", {"n_uops": "µ-ops delivered by the hit entry"}),
    UCP_USEFUL_FILL: (
        "ucp",
        {"n_uops": "µ-ops in the prefetched entry being used for the first time"},
    ),
    FTQ_ENQUEUE: (
        "ftq",
        {
            "start_index": "trace index of the block's first instruction",
            "count": "instructions in the block",
            "ends_taken": "block ends at a predicted-taken branch",
            "mispredicted": "block ends at a mispredicted branch (BPU stalls)",
        },
    ),
    FTQ_SQUASH: (
        "ftq",
        {"blocks": "blocks discarded", "instructions": "instructions discarded"},
    ),
    BRANCH_MISPREDICT: (
        "bpu",
        {
            "index": "trace index of the mispredicted branch",
            "flavor": "branch flavour: 'cond', 'indirect' or 'return'",
        },
    ),
    BRANCH_RESOLVE: (
        "bpu",
        {"index": "trace index of the resolving branch"},
    ),
    UCP_TRIGGER: (
        "ucp",
        {
            "index": "trace index of the H2P trigger branch",
            "alt_taken": "direction the alternate path takes",
        },
    ),
    UCP_ALT_FILL: (
        "ucp",
        {
            "n_uops": "µ-ops in the inserted entry",
            "trigger_index": "trace index of the walk's trigger branch",
            "timely": "inserted before the trigger instance resolved",
        },
    ),
    ROB_FULL: ("backend", {"occupancy": "ROB entries held (== capacity)"}),
    ROB_DRAIN: ("backend", {"occupancy": "ROB entries held after draining"}),
}

#: Perfetto lane (tid) per component, in display order.
LANES: dict[str, int] = {
    "fetch": 1,
    "uopcache": 2,
    "ftq": 3,
    "bpu": 4,
    "ucp": 5,
    "backend": 6,
}


class TraceEvent:
    """One timestamped pipeline event: ``(cycle, kind, pc, data)``."""

    __slots__ = ("cycle", "kind", "pc", "data")

    def __init__(
        self, cycle: int, kind: str, pc: int | None, data: Mapping[str, object]
    ) -> None:
        self.cycle = cycle
        self.kind = kind
        #: PC the event is about (entry start, branch PC, …); None when the
        #: event has no natural program counter (e.g. an FTQ squash).
        self.pc = pc
        self.data = data

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-friendly form (the JSONL sink's line format)."""
        record: dict[str, object] = {"cycle": self.cycle, "kind": self.kind}
        if self.pc is not None:
            record["pc"] = self.pc
        if self.data:
            record.update(self.data)
        return record

    def __repr__(self) -> str:
        pc = f" pc={self.pc:#x}" if self.pc is not None else ""
        return f"TraceEvent(@{self.cycle} {self.kind}{pc})"
