"""Simulation configuration: the paper's Table II baseline and UCP knobs.

Every experiment builds a :class:`SimConfig` (usually starting from the
defaults and overriding a few fields with :func:`dataclasses.replace`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace

from repro.branch.btb import BTBConfig
from repro.branch.ittage import ITTAGEConfig
from repro.branch.tage_sc_l import TageScLConfig
from repro.caches.hierarchy import HierarchyConfig
from repro.caches.uopcache import UopCacheConfig


@dataclass(frozen=True)
class FrontendConfig:
    """Fetch/decode stage parameters (paper Table II, frontend rows)."""

    #: Fetch blocks the BPU may generate per cycle (2 windows/cycle).
    bpu_blocks_per_cycle: int = 2
    #: Maximum instructions per fetch block (2 windows x 8 = 16 addr/cycle).
    fetch_block_size: int = 8
    #: FTQ capacity in instructions.
    ftq_capacity: int = 192
    #: Decode width on the build (L1I + decoders) path.
    decode_width: int = 6
    #: µ-ops deliverable per cycle from the µ-op cache (one entry).
    uop_queue_capacity: int = 32
    #: Extra frontend latency of the build path (decode pipeline stages).
    build_path_latency: int = 5
    #: Frontend latency of the stream path (µ-op cache is close to dispatch).
    stream_path_latency: int = 1
    #: One-cycle penalty on each build<->stream mode switch.
    mode_switch_penalty: int = 1
    #: Consecutive µ-op cache tag hits in build mode before switching back.
    stream_switch_threshold: int = 2
    #: Decode re-steer bubble when a taken branch misses the BTB.
    btb_miss_penalty: int = 8
    #: Cycles from branch resolution to the BPU producing the correct path.
    redirect_latency: int = 2


@dataclass(frozen=True)
class BackendConfig:
    """Abstract occupancy-limited backend (paper Table II, backend rows)."""

    dispatch_width: int = 6
    commit_width: int = 10
    rob_entries: int = 512
    #: Instructions that may *complete* per cycle — the sustained-ILP cap
    #: that makes the backend, not frontend width, the steady-state
    #: bottleneck (cf. paper Section III-C).
    issue_width: int = 3
    #: Execution latencies by instruction class.
    simple_latency: int = 1
    load_latency: int = 6
    #: A slice of loads (1/long_load_every by PC hash) miss the data
    #: caches and take ``long_load_latency`` cycles — the data-side CPI
    #: that dominates datacenter workloads and dilutes frontend effects.
    long_load_every: int = 24
    long_load_latency: int = 300
    branch_latency: int = 8
    #: Fraction (1/n by PC hash) of non-branches treated as loads.
    load_hash_mod: int = 3
    #: Dependency distance is 1 + hash(pc) % dep_window.
    dep_window: int = 6


@dataclass(frozen=True)
class UCPConfig:
    """Alternate-path µ-op cache prefetching (paper Section IV)."""

    enabled: bool = False
    #: H2P classifier: "ucp" (UCP-Conf) or "tage" (TAGE-Conf baseline).
    confidence: str = "ucp"
    #: Use a dedicated Alt-Ind indirect predictor (4KB ITTAGE).
    use_indirect: bool = True
    #: Stop threshold of the 6-bit-weighted saturation counter (Fig. 15).
    stop_threshold: int = 500
    #: Threshold bonus per high-confidence branch on the alternate path.
    high_confidence_bonus: int = 1
    #: 6-bit guard: max instructions walked without seeing a branch.
    max_instructions_without_branch: int = 63
    #: Alt-FTQ capacity (paper: 24 entries of µ-op-entry addresses).
    alt_ftq_entries: int = 24
    #: µ-op cache MSHR for outstanding prefetches (paper: 32 entries).
    mshr_entries: int = 32
    #: Alternate decode queue capacity and dedicated decoder width.
    alt_decode_entries: int = 32
    alt_decode_width: int = 6
    #: Addresses the alternate path walker advances per cycle.
    walk_instructions_per_cycle: int = 8
    #: Prefetch only into the L1I (UCP-TillL1I variant, Section VI-E).
    till_l1i_only: bool = False
    #: Share the 6 baseline decoders instead of dedicated alt-decoders
    #: (UCP-SharedDecoders variant): alternate decode only proceeds when
    #: the demand path is streaming from the µ-op cache.
    shared_decoders: bool = False
    #: Ideal BTB banking: no bank conflicts between demand/alternate paths.
    ideal_btb_banking: bool = False
    #: Alt-RAS capacity.
    alt_ras_entries: int = 16

    @property
    def storage_kb(self) -> float:
        """Hardware budget of UCP state (paper Section IV-F)."""
        alt_bp = 8.0  # 8KB-class TAGE-SC-L
        alt_ind = 4.0 if self.use_indirect else 0.0
        queues = 0.06 + 0.14 + 0.19 + 0.25 + 0.12  # RAS/FTQ/MSHR/PQ/decq
        return alt_bp + alt_ind + queues


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation run needs."""

    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    uop_cache: UopCacheConfig | None = field(default_factory=UopCacheConfig)
    btb: BTBConfig = field(default_factory=BTBConfig)
    branch_predictor: TageScLConfig = field(default_factory=TageScLConfig)
    indirect_predictor: ITTAGEConfig = field(default_factory=ITTAGEConfig)
    ucp: UCPConfig = field(default_factory=UCPConfig)
    #: Standalone L1I prefetcher name (None, "next_line", "fnl_mma",
    #: "fnl_mma++", "djolt", "ep", "ep++").
    l1i_prefetcher: str | None = None
    #: Idealisations used by the motivation studies (Section III-C).
    ideal_uop_cache: bool = False  # every lookup hits (blue line, Fig. 4)
    l1i_hits_are_uop_hits: bool = False  # L1I-Hits configuration (Fig. 5)
    #: IdealBRCond-N: after a conditional mispredict, the next N conditional
    #: branches' instructions are treated as µ-op cache hits (0 = off).
    ideal_brcond_window: int = 0
    #: Stateful (x86-like, variable-length) decode: UCP's alternate
    #: decoders must consume prefetched lines in program order, so an
    #: out-of-order line return blocks younger ready lines (paper Section
    #: IV-G-1).  False models ARMv8's stateless fixed-length decode, where
    #: lines decode as they arrive.
    isa_stateful_decode: bool = False
    #: Fraction of the trace used for warm-up (stats collected after).
    warmup_fraction: float = 0.5
    #: Misprediction Recovery Cache baseline (None or #entries).
    mrc_entries: int | None = None

    def with_uop_cache_kops(self, kops: int) -> "SimConfig":
        """Scale the µ-op cache to ``kops`` * 1024 µ-ops (sets scale)."""
        base = self.uop_cache or UopCacheConfig()
        n_sets = (kops * 1024) // (base.ways * base.uops_per_entry)
        return replace(self, uop_cache=replace(base, n_sets=n_sets))

    def without_uop_cache(self) -> "SimConfig":
        return replace(self, uop_cache=None)


#: UCP variant name -> :class:`UCPConfig` field overrides.  Shared by the
#: CLI (``--ucp-variant``) and the experiment-server protocol so both
#: spell the paper's Section VI ablations identically.
UCP_VARIANTS: dict[str, dict[str, object]] = {
    "noind": {"use_indirect": False},
    "till-l1i": {"till_l1i_only": True},
    "shared-decoders": {"shared_decoders": True},
    "ideal-btb": {"ideal_btb_banking": True},
    "tage-conf": {"confidence": "tage"},
}

#: L1I prefetcher names accepted by :func:`config_from_spec`.
PREFETCHER_CHOICES = ("next_line", "fnl_mma", "fnl_mma++", "djolt", "ep", "ep++")

#: µ-op cache capacities (in K µ-ops) accepted by :func:`config_from_spec`.
UOP_KOPS_CHOICES = (4, 8, 16, 32, 64)

#: Every key :func:`config_from_spec` understands.
CONFIG_SPEC_KEYS = frozenset(
    {
        "no_uop_cache",
        "ideal_uop_cache",
        "uop_kops",
        "prefetcher",
        "mrc",
        "ucp",
        "ucp_variant",
        "stop_threshold",
    }
)


def config_from_spec(spec: Mapping[str, object] | None = None) -> SimConfig:
    """Build a :class:`SimConfig` from a flat JSON-friendly option mapping.

    This is the one normalizer behind both the CLI flags and the
    experiment-server protocol: the same spec always produces the same
    (frozen, hashable-repr) config, and therefore the same result-cache
    key.  Unknown keys and out-of-range values raise :class:`ValueError`
    rather than being silently dropped — a typo must not fork the cache
    keyspace.

    Recognised keys (all optional): ``no_uop_cache``, ``ideal_uop_cache``
    (booleans, mutually exclusive), ``uop_kops`` (4/8/16/32/64),
    ``prefetcher`` (see :data:`PREFETCHER_CHOICES`), ``mrc`` (entries),
    ``ucp`` (boolean), ``ucp_variant`` (see :data:`UCP_VARIANTS`; implies
    UCP), ``stop_threshold`` (UCP stop counter, default 500).
    """
    spec = dict(spec or {})
    unknown = set(spec) - CONFIG_SPEC_KEYS
    if unknown:
        raise ValueError(
            f"unknown config spec key(s): {', '.join(sorted(str(k) for k in unknown))}"
        )

    def _flag(key: str) -> bool:
        value = spec.get(key, False)
        if not isinstance(value, bool):
            raise ValueError(f"config spec {key!r} must be a boolean, got {value!r}")
        return value

    def _int(key: str, default: int | None) -> int | None:
        value = spec.get(key, default)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"config spec {key!r} must be an integer, got {value!r}")
        return value

    config = SimConfig()
    if _flag("no_uop_cache") and _flag("ideal_uop_cache"):
        raise ValueError("no_uop_cache and ideal_uop_cache are mutually exclusive")
    if _flag("no_uop_cache"):
        config = config.without_uop_cache()
    if _flag("ideal_uop_cache"):
        config = replace(config, ideal_uop_cache=True)
    uop_kops = _int("uop_kops", None)
    if uop_kops is not None:
        if uop_kops not in UOP_KOPS_CHOICES:
            raise ValueError(f"uop_kops must be one of {UOP_KOPS_CHOICES}, got {uop_kops}")
        config = config.with_uop_cache_kops(uop_kops)
    prefetcher = spec.get("prefetcher")
    if prefetcher is not None:
        if prefetcher not in PREFETCHER_CHOICES:
            raise ValueError(
                f"prefetcher must be one of {PREFETCHER_CHOICES}, got {prefetcher!r}"
            )
        config = replace(config, l1i_prefetcher=str(prefetcher))
    mrc = _int("mrc", None)
    if mrc:
        config = replace(config, mrc_entries=mrc)
    variant = spec.get("ucp_variant")
    if variant is not None and variant not in UCP_VARIANTS:
        raise ValueError(
            f"ucp_variant must be one of {sorted(UCP_VARIANTS)}, got {variant!r}"
        )
    if _flag("ucp") or variant is not None:
        overrides: dict[str, object] = {} if variant is None else UCP_VARIANTS[str(variant)]
        stop_threshold = _int("stop_threshold", 500)
        assert stop_threshold is not None
        config = replace(
            config,
            ucp=UCPConfig(enabled=True, stop_threshold=stop_threshold, **overrides),  # type: ignore[arg-type]
        )
    return config
