"""Stop-heuristic weights — paper Table I.

Every branch encountered on the alternate path adds a weight to a
saturating stop counter; the weight reflects the misprediction likelihood
of the component that predicted it (roughly one unit per extra 5% miss
rate, Fig. 6).  Unresolvable targets (BTB miss; indirect without Alt-Ind)
weigh infinity, i.e. they stop the walk outright.
"""

from __future__ import annotations

import math

from repro.branch.tage_sc_l import Provider, TageScLPrediction

#: Sentinel for "stop the alternate path immediately".
INFINITE = math.inf


def condition_weight(prediction: TageScLPrediction) -> int:
    """Table I, Condition rows: weight for a conditional on the alt path."""
    provider = prediction.provider
    if provider is Provider.LOOP:
        return 1
    if provider is Provider.SC:
        magnitude = abs(prediction.sc.lsum)
        if magnitude >= 128:
            return 3
        if magnitude >= 64:
            return 6
        if magnitude >= 32:
            return 8
        return 10
    if provider is Provider.ALTBANK:
        return 5 if prediction.tage.alt_ctr in (-4, 3) else 7
    if provider is Provider.HITBANK:
        strength = _tagged_strength(prediction.tage.hit_ctr)
        return {3: 1, 2: 3, 1: 4, 0: 6}[strength]
    # Bimodal (2-bit counter: saturated == -2 or 1).
    saturated = prediction.tage.bimodal_ctr in (-2, 1)
    if provider is Provider.BIMODAL_1IN8:
        return 2 if saturated else 6
    return 1 if saturated else 2


def _tagged_strength(counter: int) -> int:
    """Distance of a 3-bit signed counter from the weak centre (0..3)."""
    return counter if counter >= 0 else -counter - 1


def target_weight(
    btb_hit: bool, is_indirect: bool, is_return: bool, has_alt_ind: bool
) -> float:
    """Table I, Target rows: weight for resolving a branch target."""
    if is_return:
        return 1
    if is_indirect:
        return 1 if has_alt_ind else INFINITE
    return INFINITE if not btb_hit else 0
