"""Dynamically discovered static code map.

The alternate-path walker needs to know what instruction lives at an
address it has *not* fetched on the current path: whether it is a branch,
and of which class.  Real hardware gets this from pre-decode bits / the BTB
/ the decoders; a trace-driven simulator gets it from the instructions the
pipeline has already seen.  :class:`CodeMap` records
``pc -> branch class`` as instructions are fetched, so the walker only ever
reasons about code the machine could legitimately know about — walking into
never-seen code stops the alternate path, which is exactly the paper's
BTB-miss stop condition (Table I: BTB miss → weight ∞).
"""

from __future__ import annotations

from repro.isa.instruction import BranchClass


class CodeMap:
    """pc -> :class:`BranchClass` for every instruction seen so far."""

    def __init__(self) -> None:
        self._classes: dict[int, int] = {}
        #: Bound ``dict.get`` for hot callers (the UCP walker queries one
        #: PC per walked instruction): returns the raw branch-class int, or
        #: None for never-seen code.  Stays valid for the map's lifetime —
        #: the dict is mutated in place, never replaced.
        self.get_class = self._classes.get

    def record(self, pc: int, branch_class: int) -> None:
        self._classes[pc] = branch_class

    def known(self, pc: int) -> bool:
        return pc in self._classes

    def branch_class(self, pc: int) -> BranchClass | None:
        value = self._classes.get(pc)
        if value is None:
            return None
        return BranchClass(value)

    def __len__(self) -> int:
        return len(self._classes)

    def __repr__(self) -> str:
        return f"CodeMap({len(self._classes)} instructions)"
