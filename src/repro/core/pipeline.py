"""The cycle-level simulator: BPU → FTQ → fetch → dispatch → backend.

One :class:`Simulator` owns all structures for a single run of one trace
under one :class:`~repro.core.configs.SimConfig`.  The per-cycle order is:

1. commit (backend retires completed µ-ops in order);
2. branch resolution (the single outstanding mispredicted branch — fetch
   stalls at mispredictions, so there is at most one — redirects the BPU
   and restarts fetch once its completion cycle is reached);
3. dispatch (µ-op queue → backend, bounded by width and ROB room);
4. fetch (stream/build modes, µ-op cache, L1I path);
5. L1I prefetch queue issue (one per cycle);
6. BPU address generation into the FTQ (decoupled fetch, FDP);
7. UCP alternate-path walking and prefetching (when enabled).

Statistics are collected over the post-warm-up window: counters are
snapshotted when the commit count first passes ``warmup_fraction`` of the
trace and the deltas reported in :class:`SimResult`.
"""

from __future__ import annotations

import os

from repro.branch.confidence import ConfidenceStats, tage_conf_is_h2p, ucp_conf_is_h2p
from repro.caches.hierarchy import MemoryHierarchy
from repro.caches.uopcache import UopCache
from repro.common.stats import StatBlock, per_kilo, percent
from repro.core.backend import Backend
from repro.core.codemap import CodeMap
from repro.core.configs import SimConfig
from repro.core.mrc import MRC
from repro.frontend.bpu import BPU, BranchEvent
from repro.frontend.fetch import NEVER, FetchEngine
from repro.frontend.ftq import FTQ
from repro.isa.trace import Trace
from repro.observe.metrics import NO_SAMPLE
from repro.prefetch.base import make_prefetcher
from repro.prefetch.djolt import DJoltPrefetcher


class SimResult:
    """Outcome of one simulation: IPC plus the measured-window counters."""

    #: Schema version of the :meth:`to_dict` export (the cache payload).
    SCHEMA = 1

    def __init__(
        self,
        name: str,
        config: SimConfig,
        instructions: int,
        cycles: int,
        window: dict[str, int],
        window_instructions: int,
        window_cycles: int,
        confidence: dict[str, ConfidenceStats],
        totals: StatBlock | None = None,
        intervals: list[dict] | None = None,
    ) -> None:
        self.name = name
        self.config = config
        self.instructions = instructions
        self.cycles = cycles
        self.window = window
        self.window_instructions = window_instructions
        self.window_cycles = window_cycles
        self.confidence = confidence
        #: Full-run counters (not warm-up-windowed); None for results built
        #: before the observability layer existed.
        self.totals = totals
        #: Interval-metrics time-series (see :mod:`repro.observe.metrics`).
        self.intervals = intervals if intervals is not None else []

    @property
    def ipc(self) -> float:
        if self.window_cycles == 0:
            return 0.0
        return self.window_instructions / self.window_cycles

    @property
    def uop_hit_rate(self) -> float:
        """Per-instruction µ-op cache hit rate (paper Fig. 3/13)."""
        stream = self.window.get("uops_uop", 0)
        build = self.window.get("uops_decode", 0)
        mrc = self.window.get("uops_mrc", 0)
        return percent(stream, stream + build + mrc)

    @property
    def switch_pki(self) -> float:
        return per_kilo(self.window.get("mode_switches", 0), self.window_instructions)

    @property
    def cond_mpki(self) -> float:
        return per_kilo(self.window.get("cond_mispredictions", 0), self.window_instructions)

    @property
    def prefetch_accuracy(self) -> float:
        """Timely UCP prefetches over issued (µ-op entry granularity)."""
        issued = self.window.get("ucp_entries_prefetched", 0)
        timely = self.window.get("ucp_entries_timely", 0)
        return percent(timely, issued)

    def to_dict(self) -> dict:
        """Stable export of everything except the config (which is a frozen
        dataclass and travels separately — e.g. pickled next to this dict
        in the result-cache envelope)."""
        return {
            "schema": self.SCHEMA,
            "name": self.name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "window": dict(self.window),
            "window_instructions": self.window_instructions,
            "window_cycles": self.window_cycles,
            "confidence": {
                name: stats.stats.to_dict() for name, stats in self.confidence.items()
            },
            "totals": self.totals.to_dict() if self.totals is not None else None,
            "intervals": list(self.intervals),
        }

    @classmethod
    def from_dict(cls, data: dict, config: SimConfig) -> "SimResult":
        """Rebuild a result from :meth:`to_dict`; raises on shape mismatch."""
        if not isinstance(data, dict) or data.get("schema") != cls.SCHEMA:
            raise ValueError(f"not a SimResult export (schema {cls.SCHEMA})")
        confidence: dict[str, ConfidenceStats] = {}
        for name, block in data["confidence"].items():
            stats = ConfidenceStats(name)
            stats.stats = StatBlock.from_dict(block)
            confidence[name] = stats
        totals = data.get("totals")
        return cls(
            name=data["name"],
            config=config,
            instructions=data["instructions"],
            cycles=data["cycles"],
            window=dict(data["window"]),
            window_instructions=data["window_instructions"],
            window_cycles=data["window_cycles"],
            confidence=confidence,
            totals=StatBlock.from_dict(totals) if totals is not None else None,
            intervals=list(data.get("intervals", [])),
        )

    def __repr__(self) -> str:
        return f"SimResult({self.name!r}, IPC={self.ipc:.3f})"


class Simulator:
    """Glue object wiring all components for one run."""

    #: Safety valve: a run may not exceed this many cycles per instruction.
    MAX_CPI = 400

    def __init__(
        self,
        trace: Trace,
        config: SimConfig,
        name: str | None = None,
        check: bool | None = None,
        idle_skip: bool | None = None,
        observe: bool | None = None,
        interval: int | None = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.name = name or trace.name
        self.stats = StatBlock(self.name)
        self.codemap = CodeMap()
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.uop_cache = UopCache(config.uop_cache) if config.uop_cache else None
        if self.uop_cache is not None:
            # Share the global counter block so µ-op cache events (incl.
            # prefetch provenance) land in the measured window.
            self.uop_cache.stats = self.stats
            if config.uop_cache.l1i_inclusive:
                line_size = self.hierarchy.config.l1i.line_size
                self.hierarchy.l1i.on_evict = lambda line: self.uop_cache.invalidate_line(
                    line * line_size, line_size
                )
        self.prefetcher = make_prefetcher(config.l1i_prefetcher)
        self.mrc = MRC(config.mrc_entries) if config.mrc_entries else None
        self.bpu = self._make_bpu()
        self.fetch = FetchEngine(
            config,
            trace,
            self.uop_cache,
            self.hierarchy,
            self.codemap,
            self.stats,
            prefetcher=self.prefetcher,
            mrc=self.mrc,
        )
        self.backend = self._make_backend()
        self.ftq = FTQ(config.frontend.ftq_capacity)
        self.confidence = {
            "tage": ConfidenceStats("tage"),
            "ucp": ConfidenceStats("ucp"),
        }
        self.ucp = None
        if config.ucp.enabled:
            from repro.core.ucp import UCPEngine

            self.ucp = UCPEngine(config, trace, self)
            self.bpu.uncond_hook = self.ucp.on_unconditional
            self.bpu.indirect_hook = self.ucp.on_indirect
        self.bpu.branch_hook = self._on_conditional
        if isinstance(self.prefetcher, DJoltPrefetcher):
            self.bpu.context_hook = self.prefetcher.update_context
        # Sim sanitizer (repro.verify): None unless REPRO_SIM_CHECK is set
        # or ``check=True`` — the run loop then pays only one pointer test
        # per cycle for the instrumentation.
        from repro.verify import make_checker

        self.checker = make_checker(self, enabled=check)
        # Observability (repro.observe): the event bus + stall taxonomy is
        # None unless REPRO_SIM_TRACE is set or ``observe=True`` — gated
        # exactly like the sanitizer, one pointer test per hook site.
        # Interval metrics are cheap enough to stay on by default (one
        # integer compare per cycle); ``interval=0`` or
        # REPRO_SIM_INTERVAL=0 disables them.  Neither knob lives in
        # SimConfig: both are purely observational and must not perturb
        # the result-cache key.
        from repro.observe import make_interval_recorder, make_observer

        self.observer = make_observer(self, enabled=observe)
        self.intervals = make_interval_recorder(self.stats, interval)
        # Event-driven idle-cycle skipping.  Deliberately *not* part of
        # SimConfig: results are bit-identical with and without it, and
        # ``repr(config)`` feeds the result-cache key, which must not
        # depend on a pure-performance knob.  ``idle_skip=None`` defers to
        # REPRO_SIM_SKIP (default on; "0" disables).
        if idle_skip is None:
            idle_skip = os.environ.get("REPRO_SIM_SKIP", "1") != "0"
        self.idle_skip = bool(idle_skip)
        #: Cycles jumped over / number of jumps (perf telemetry; kept out
        #: of the StatBlock so windowed stats stay identical either way).
        self.skipped_cycles = 0
        self.skip_events = 0
        self._fetch_block_size = config.frontend.fetch_block_size
        self._n_instructions = len(trace)

    # ------------------------------------------------------------------
    # Component factories
    # ------------------------------------------------------------------
    # The batched kernel (repro.core.kernel) swaps the two hot components
    # by overriding these; everything else — including run() itself — is
    # shared, which is what makes the kernel bit-identical by
    # construction.

    def _make_bpu(self) -> BPU:
        return BPU(
            self.config,
            self.trace,
            self.stats,
            hierarchy=self.hierarchy,
            prefetcher=self.prefetcher,
        )

    def _make_backend(self) -> Backend:
        return Backend(self.config.backend, self.trace, self.stats)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _on_conditional(self, event: BranchEvent, cycle: int) -> None:
        prediction = event.prediction
        self.confidence["tage"].record(tage_conf_is_h2p(prediction), event.mispredicted)
        self.confidence["ucp"].record(ucp_conf_is_h2p(prediction), event.mispredicted)
        if self.ucp is not None:
            self.ucp.on_conditional(event, cycle)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _idle_until(self, cycle: int) -> int | None:
        """Event-driven idle-cycle skipping: the earliest cycle at which any
        component may change state, or None when this cycle must execute.

        The invariant is that **clock jumps never cross a schedulable
        event**: a wake cycle is returned only when every component is
        provably blocked until a known-latency event (ROB-head completion,
        branch resolution, µ-op readiness, L1I fill, BPU bubble), and the
        jump lands exactly on the earliest of those events.  Anything this
        analysis does not fully understand — a pending L1I prefetch, an
        active UCP walk, a component able to act right now — answers None
        and the cycle executes normally, so skipping is bit-identical to
        not skipping.
        """
        backend = self.backend
        rob = backend._rob
        wake = NEVER

        if rob:
            head_ready = rob[0][1]
            if head_ready <= cycle:
                return None  # commit can retire now
            wake = head_ready

        bpu = self.bpu
        stalled = bpu.stalled_on
        if stalled is not None:
            completion = backend._completion.get(stalled)
            if completion is not None:
                if completion <= cycle:
                    return None  # resolution is due
                if completion < wake:
                    wake = completion
            # Not dispatched yet: resolution waits on dispatch progress,
            # which the µ-op queue / fetch horizons below cover.
        elif bpu.index < self._n_instructions and self.ftq.has_room(
            self._fetch_block_size
        ):
            resume = bpu.resume_cycle
            if resume <= cycle:
                return None  # the BPU can generate now
            if resume < wake:
                wake = resume
        # else: trace exhausted or FTQ full — the BPU waits on others.

        queue = self.fetch.uop_queue
        if queue and len(rob) < backend.config.rob_entries:
            ready = queue[0][1]
            if ready <= cycle:
                return None  # dispatch can move µ-ops now
            if ready < wake:
                wake = ready
        # A full ROB drains via commit, whose wake is set above.

        if self.hierarchy._prefetch_queue:
            return None  # one queued prefetch issues per cycle

        ucp = self.ucp
        if ucp is not None and not ucp.is_idle():
            return None

        fetch_wake = self.fetch.idle_until(cycle, self.ftq)
        if fetch_wake is None:
            return None
        if fetch_wake < wake:
            wake = fetch_wake

        if wake <= cycle or wake >= NEVER:
            return None
        return wake

    def run(self) -> SimResult:
        trace = self.trace
        config = self.config
        n = len(trace)
        warmup_count = int(n * config.warmup_fraction)
        warm_snapshot: dict[str, int] | None = None
        warm_cycle = 0
        cycle = 0
        dispatch_width = config.backend.dispatch_width
        max_cycles = self.MAX_CPI * max(1, n)

        backend = self.backend
        fetch = self.fetch
        bpu = self.bpu
        ftq = self.ftq
        ucp = self.ucp
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        line_size = hierarchy.config.l1i.line_size
        queue = fetch.uop_queue
        checker = self.checker
        observer = self.observer
        intervals = self.intervals
        # Hoisted interval boundary: one int compare per cycle when
        # sampling is on, and a never-true compare when it is off.
        next_sample = intervals.next_cycle if intervals is not None else NO_SAMPLE
        idle_skip = self.idle_skip
        stats_add = self.stats.add
        committed = backend.committed

        while committed < n:
            if idle_skip:
                wake = self._idle_until(cycle)
                if wake is not None:
                    if observer is not None:
                        observer.on_skip(cycle, wake)
                    self.skipped_cycles += wake - cycle
                    self.skip_events += 1
                    cycle = wake

            if cycle >= next_sample:
                # Sample at interval boundaries with pre-tick state: after
                # an idle-skip jump the counters are provably unchanged
                # since the skipped boundaries, so the series is identical
                # with skipping on or off.
                next_sample = intervals.catch_up(cycle, committed)

            if observer is not None:
                observer.begin_cycle(cycle)

            backend.commit(cycle)
            committed = backend.committed

            # Branch resolution: at most one outstanding misprediction.
            stalled = bpu.stalled_on
            if stalled is not None:
                completion = backend._completion.get(stalled)
                if completion is not None and completion <= cycle:
                    bpu.redirect(cycle)
                    fetch.on_redirect(cycle, stalled + 1)
                    if ucp is not None:
                        ucp.on_resolution(stalled, cycle)
                    if observer is not None:
                        observer.on_resolve(stalled)
                    stats_add("resolved_mispredictions")

            dispatched = 0
            while (
                dispatched < dispatch_width
                and queue
                and queue[0][1] <= cycle
                and backend.rob_has_room()
            ):
                index, _ready = queue.popleft()
                backend.dispatch(index, cycle)
                dispatched += 1

            fetch.tick(cycle, ftq)

            filled = hierarchy.tick_prefetch(cycle)
            if filled is not None:
                line = filled[0] // line_size
                if prefetcher is not None:
                    prefetcher.on_prefetch_fill(line, filled[1])
                if ucp is not None:
                    ucp.on_prefetch_fill(line, filled[1])

            bpu.generate(ftq, cycle)

            if ucp is not None:
                ucp.tick(cycle)

            if warm_snapshot is None and committed >= warmup_count:
                warm_snapshot = self.stats.as_dict()
                warm_cycle = cycle

            if checker is not None:
                checker.on_cycle(cycle)

            if observer is not None:
                observer.end_cycle(cycle)

            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError(
                    f"{self.name}: no forward progress "
                    f"(committed {committed}/{n} after {cycle} cycles)"
                )

        if checker is not None:
            checker.on_finish(cycle)
        if observer is not None:
            observer.on_finish(cycle)
        if intervals is not None:
            intervals.finish(cycle, committed)

        if warm_snapshot is None:  # degenerate warmup fractions
            warm_snapshot = {}
            warm_cycle = 0
            warmup_count = 0

        window = {
            key: value - warm_snapshot.get(key, 0)
            for key, value in self.stats.as_dict().items()
        }
        return SimResult(
            name=self.name,
            config=config,
            instructions=n,
            cycles=cycle,
            window=window,
            window_instructions=n - warmup_count,
            window_cycles=cycle - warm_cycle,
            confidence=self.confidence,
            totals=self.stats,
            intervals=self.intervals.samples if self.intervals is not None else [],
        )


def simulate(
    trace: Trace,
    config: SimConfig,
    name: str | None = None,
    check: bool | None = None,
    idle_skip: bool | None = None,
    observe: bool | None = None,
    interval: int | None = None,
    kernel: bool | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    ``check`` forces the runtime invariant checker on (True) or off
    (False); None defers to the ``REPRO_SIM_CHECK`` environment variable.
    ``idle_skip`` likewise forces event-driven idle-cycle skipping on or
    off (None defers to ``REPRO_SIM_SKIP``; results are bit-identical
    either way, only wall time changes).  ``observe`` forces the
    :mod:`repro.observe` event bus on or off (None defers to
    ``REPRO_SIM_TRACE``; results are bit-identical either way), and
    ``interval`` overrides the interval-metrics window in cycles (0
    disables sampling, None defers to ``REPRO_SIM_INTERVAL``).
    ``kernel`` selects the batched replay kernel
    (:mod:`repro.core.kernel`) or the scalar interpreter; None defers to
    ``REPRO_SIM_KERNEL`` (default on, ``"0"`` disables).  Results are
    bit-identical either way — the kernel falls back to the interpreter
    on its own whenever the checker or observer is active.  Like the
    other knobs, it is deliberately not part of ``SimConfig`` so the
    result-cache key cannot depend on it.
    """
    from repro.core.kernel import KernelSimulator, kernel_enabled

    if kernel_enabled(kernel):
        return KernelSimulator(
            trace,
            config,
            name=name,
            check=check,
            idle_skip=idle_skip,
            observe=observe,
            interval=interval,
        ).run()
    return Simulator(
        trace,
        config,
        name=name,
        check=check,
        idle_skip=idle_skip,
        observe=observe,
        interval=interval,
    ).run()
