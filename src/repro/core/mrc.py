"""Misprediction Recovery Cache (MRC) baseline — Nanda et al. [48].

A fully-associative, LRU cache of decoded-µ-op streams.  On a branch
misprediction, the MRC is probed with the corrected-path target: a hit
streams up to 64 µ-ops directly to the backend (bypassing fetch/decode),
a miss allocates an entry that records the next 64 correct-path µ-ops.

The paper implements MRC as a comparison point in the cost/benefit study
(Fig. 16): each entry stores a tag plus 64 µ-ops, so a 64-entry MRC costs
≈ 16.5KB and scales linearly.
"""

from __future__ import annotations


class MRC:
    """Fully associative, LRU, tagged by corrected-path target PC.

    Each entry remembers *which dynamic trace* it recorded (the trace index
    at allocation): on a later hit, the stream is only valid up to the
    point where the recorded path and the current path diverge — the
    paper's explanation of why MRC underperforms ("records a single trace
    among the many possible for each conditional branch").
    """

    UOPS_PER_ENTRY = 64
    #: Approximate bits per entry: 64 µ-ops x ~4B + tag + LRU ≈ 264B.
    BYTES_PER_ENTRY = 264

    def __init__(self, n_entries: int = 64) -> None:
        if n_entries < 1:
            raise ValueError("MRC needs at least one entry")
        self.n_entries = n_entries
        #: target pc -> trace index the entry's µ-ops were recorded at.
        self._entries: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    @property
    def uops_per_entry(self) -> int:
        return self.UOPS_PER_ENTRY

    @property
    def storage_kb(self) -> float:
        return self.n_entries * self.BYTES_PER_ENTRY / 1024

    def access(self, target_pc: int, recorded_index: int = 0) -> int | None:
        """Probe on a misprediction; allocates/records on miss.

        Returns the trace index the hit entry recorded from, or None on a
        miss (after recording ``recorded_index`` for next time).
        """
        previous = self._entries.get(target_pc)
        if previous is not None:
            self.hits += 1
            del self._entries[target_pc]
            self._entries[target_pc] = previous  # refresh LRU
            return previous
        self.misses += 1
        if len(self._entries) >= self.n_entries:
            del self._entries[next(iter(self._entries))]
        self._entries[target_pc] = recorded_index
        return None

    def __repr__(self) -> str:
        return f"MRC({self.n_entries} entries, ~{self.storage_kb:.1f}KB)"
