"""Abstract occupancy-limited backend.

The paper's phenomena live in the frontend; the backend's job here is to
(a) consume µ-ops at a realistic, dependency-limited rate, (b) resolve
branches after a realistic depth, and (c) fill/drain the ROB so that
frontend supply gaps show up as commit stalls.  Three mechanisms provide
that:

* per-instruction execution latency by class (simple / load-like / branch),
  with load-likeness decided by a PC hash;
* a synthetic dependency: each instruction depends on an instruction a
  hashed distance (1..dep_window) earlier in program order and cannot
  complete before it — this bounds sustainable ILP the way real dependency
  chains do, so a wider µ-op supply only helps when the pipeline is
  refilling (exactly the paper's observation in Section III-C);
* in-order commit with a bounded ROB.

Branches resolve at their completion time, which the simulator uses to
schedule misprediction redirects.
"""

from __future__ import annotations

from collections import deque

from repro.common.stats import StatBlock
from repro.core.configs import BackendConfig
from repro.isa.trace import Trace


def _pc_hash(pc: int) -> int:
    value = pc >> 2
    value ^= value >> 7
    value ^= value >> 13
    return value & 0xFFFF


class Backend:
    """Dispatch → (dependency-limited) execute → in-order commit."""

    def __init__(self, config: BackendConfig, trace: Trace, stats: StatBlock) -> None:
        self.config = config
        self.trace = trace
        self.stats = stats
        # Hot-path flattening: dispatch() runs once per µ-op, so the trace
        # columns are read as plain lists and the config scalars are bound
        # to the instance instead of being chased through two attribute
        # hops per dispatch.
        self._pcs, self._classes, _takens, _targets, _next_pcs = trace.list_columns()
        self._branch_latency = config.branch_latency
        self._load_hash_mod = config.load_hash_mod
        self._long_load_every = config.long_load_every
        self._long_load_latency = config.long_load_latency
        self._load_latency = config.load_latency
        self._simple_latency = config.simple_latency
        self._dep_window = config.dep_window
        self._issue_width = config.issue_width
        self._commit_width = config.commit_width
        #: Completion cycle per dispatched trace index.  Kept for the whole
        #: run: traces are tens of kilo-instructions, so this stays small,
        #: and it doubles as the dependency-lookup table.
        self._completion: dict[int, int] = {}
        #: ROB: (trace_index, completion_cycle), dispatch order.
        self._rob: deque[tuple[int, int]] = deque()
        self.committed = 0
        #: Completions scheduled per cycle (virtual execution ports).
        self._exec_busy: dict[int, int] = {}
        #: Optional callback invoked with each retired trace index, in
        #: commit order — the differential harness's commit-stream tap.
        self.commit_hook = None
        #: repro.observe event bus; the observer reads ROB state through
        #: the public accessors below and emits rob_full/rob_drain
        #: transition events on the backend timeline lane.
        self.observer = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def rob_has_room(self) -> bool:
        return len(self._rob) < self.config.rob_entries

    @property
    def rob_full(self) -> bool:
        """The frontend-visible backpressure condition (stall taxonomy)."""
        return len(self._rob) >= self.config.rob_entries

    def dispatch(self, index: int, cycle: int) -> int:
        """Dispatch one µ-op; returns its completion cycle."""
        if self._classes[index]:  # any class other than NOT_BRANCH (0)
            # Branches resolve a fixed depth after dispatch, independent of
            # the synthetic dependency chain: real OOO cores prioritise
            # branch resolution (the compare feeding a branch is almost
            # always ready), so the misprediction penalty must not grow
            # with the distance to the previous misprediction.
            # Branches also bypass the issue-width booking: they execute on
            # a dedicated branch port, so resolution is not queued behind
            # the ALU backlog.
            completion = cycle + 1 + self._branch_latency
            self._completion[index] = completion
            self._rob.append((index, completion))
            return completion

        # _pc_hash, inlined.
        value = self._pcs[index] >> 2
        value ^= value >> 7
        value ^= value >> 13
        h = value & 0xFFFF

        if h % self._load_hash_mod == 0:
            if (h >> 8) % self._long_load_every == 0:
                latency = self._long_load_latency  # data-cache miss
            else:
                latency = self._load_latency
        else:
            latency = self._simple_latency
        distance = 1 + (h >> 4) % self._dep_window
        dep_done = self._completion.get(index - distance, 0)
        earliest = cycle + 1
        if dep_done > earliest:
            earliest = dep_done
        completion = self._schedule(earliest + latency)
        self._completion[index] = completion
        self._rob.append((index, completion))
        return completion

    def _schedule(self, earliest: int) -> int:
        """Book an execution-completion slot at or after ``earliest``."""
        busy = self._exec_busy
        width = self._issue_width
        cycle = earliest
        while busy.get(cycle, 0) >= width:
            cycle += 1
        busy[cycle] = busy.get(cycle, 0) + 1
        return cycle

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self, cycle: int) -> int:
        """Retire up to ``commit_width`` completed µ-ops in order."""
        retired = 0
        hook = self.commit_hook
        rob = self._rob
        while retired < self._commit_width and rob and rob[0][1] <= cycle:
            entry = rob.popleft()
            if hook is not None:
                hook(entry[0])
            retired += 1
        self.committed += retired
        return retired

    @property
    def rob_occupancy(self) -> int:
        return len(self._rob)

    @property
    def dispatched(self) -> int:
        """Total µ-ops dispatched so far (each trace index exactly once)."""
        return len(self._completion)

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: ROB bounds and committed-µ-op conservation.

        There is no wrong-path execution and the ROB is never flushed, so
        every dispatched µ-op is eventually committed and the ROB always
        holds exactly the dispatched-but-uncommitted window, in trace
        order.  Losing, duplicating or reordering a µ-op anywhere in the
        dispatch→commit path breaks one of these equalities.
        """
        rob = self._rob
        assert len(rob) <= self.config.rob_entries, (
            f"ROB holds {len(rob)} > {self.config.rob_entries} entries"
        )
        dispatched = len(self._completion)
        assert self.committed + len(rob) == dispatched, (
            f"µ-op conservation broken: committed {self.committed} + "
            f"ROB {len(rob)} != dispatched {dispatched}"
        )
        if rob:
            assert rob[0][0] == self.committed, (
                f"ROB head index {rob[0][0]} != commit cursor "
                f"{self.committed} — commit stream skipped or duplicated"
            )
            assert rob[-1][0] - rob[0][0] == len(rob) - 1, (
                f"ROB index range [{rob[0][0]}, {rob[-1][0]}] does not "
                f"match its {len(rob)} entries — dispatch out of order"
            )

    def completion_of(self, index: int) -> int | None:
        """Completion cycle of a dispatched (not yet retired) instruction."""
        return self._completion.get(index)
