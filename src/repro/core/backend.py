"""Abstract occupancy-limited backend.

The paper's phenomena live in the frontend; the backend's job here is to
(a) consume µ-ops at a realistic, dependency-limited rate, (b) resolve
branches after a realistic depth, and (c) fill/drain the ROB so that
frontend supply gaps show up as commit stalls.  Three mechanisms provide
that:

* per-instruction execution latency by class (simple / load-like / branch),
  with load-likeness decided by a PC hash;
* a synthetic dependency: each instruction depends on an instruction a
  hashed distance (1..dep_window) earlier in program order and cannot
  complete before it — this bounds sustainable ILP the way real dependency
  chains do, so a wider µ-op supply only helps when the pipeline is
  refilling (exactly the paper's observation in Section III-C);
* in-order commit with a bounded ROB.

Branches resolve at their completion time, which the simulator uses to
schedule misprediction redirects.
"""

from __future__ import annotations

from collections import deque

from repro.common.stats import StatBlock
from repro.core.configs import BackendConfig
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace


def _pc_hash(pc: int) -> int:
    value = pc >> 2
    value ^= value >> 7
    value ^= value >> 13
    return value & 0xFFFF


class Backend:
    """Dispatch → (dependency-limited) execute → in-order commit."""

    def __init__(self, config: BackendConfig, trace: Trace, stats: StatBlock) -> None:
        self.config = config
        self.trace = trace
        self.stats = stats
        #: Completion cycle per dispatched trace index.  Kept for the whole
        #: run: traces are tens of kilo-instructions, so this stays small,
        #: and it doubles as the dependency-lookup table.
        self._completion: dict[int, int] = {}
        #: ROB: (trace_index, completion_cycle), dispatch order.
        self._rob: deque[tuple[int, int]] = deque()
        self.committed = 0
        #: Completions scheduled per cycle (virtual execution ports).
        self._exec_busy: dict[int, int] = {}
        #: Optional callback invoked with each retired trace index, in
        #: commit order — the differential harness's commit-stream tap.
        self.commit_hook = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def rob_has_room(self) -> bool:
        return len(self._rob) < self.config.rob_entries

    def dispatch(self, index: int, cycle: int) -> int:
        """Dispatch one µ-op; returns its completion cycle."""
        pc = int(self.trace.pcs[index])
        branch_class = self.trace.branch_classes[index]
        h = _pc_hash(pc)

        if branch_class != BranchClass.NOT_BRANCH:
            # Branches resolve a fixed depth after dispatch, independent of
            # the synthetic dependency chain: real OOO cores prioritise
            # branch resolution (the compare feeding a branch is almost
            # always ready), so the misprediction penalty must not grow
            # with the distance to the previous misprediction.
            # Branches also bypass the issue-width booking: they execute on
            # a dedicated branch port, so resolution is not queued behind
            # the ALU backlog.
            completion = cycle + 1 + self.config.branch_latency
            self._completion[index] = completion
            self._rob.append((index, completion))
            return completion

        if h % self.config.load_hash_mod == 0:
            if (h >> 8) % self.config.long_load_every == 0:
                latency = self.config.long_load_latency  # data-cache miss
            else:
                latency = self.config.load_latency
        else:
            latency = self.config.simple_latency
        distance = 1 + (h >> 4) % self.config.dep_window
        dep_done = self._completion.get(index - distance, 0)
        completion = self._schedule(max(cycle + 1, dep_done) + latency)
        self._completion[index] = completion
        self._rob.append((index, completion))
        return completion

    def _schedule(self, earliest: int) -> int:
        """Book an execution-completion slot at or after ``earliest``."""
        busy = self._exec_busy
        width = self.config.issue_width
        cycle = earliest
        while busy.get(cycle, 0) >= width:
            cycle += 1
        busy[cycle] = busy.get(cycle, 0) + 1
        return cycle

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(self, cycle: int) -> int:
        """Retire up to ``commit_width`` completed µ-ops in order."""
        retired = 0
        hook = self.commit_hook
        while (
            retired < self.config.commit_width
            and self._rob
            and self._rob[0][1] <= cycle
        ):
            entry = self._rob.popleft()
            if hook is not None:
                hook(entry[0])
            retired += 1
        self.committed += retired
        return retired

    @property
    def rob_occupancy(self) -> int:
        return len(self._rob)

    @property
    def dispatched(self) -> int:
        """Total µ-ops dispatched so far (each trace index exactly once)."""
        return len(self._completion)

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: ROB bounds and committed-µ-op conservation.

        There is no wrong-path execution and the ROB is never flushed, so
        every dispatched µ-op is eventually committed and the ROB always
        holds exactly the dispatched-but-uncommitted window, in trace
        order.  Losing, duplicating or reordering a µ-op anywhere in the
        dispatch→commit path breaks one of these equalities.
        """
        rob = self._rob
        assert len(rob) <= self.config.rob_entries, (
            f"ROB holds {len(rob)} > {self.config.rob_entries} entries"
        )
        dispatched = len(self._completion)
        assert self.committed + len(rob) == dispatched, (
            f"µ-op conservation broken: committed {self.committed} + "
            f"ROB {len(rob)} != dispatched {dispatched}"
        )
        if rob:
            assert rob[0][0] == self.committed, (
                f"ROB head index {rob[0][0]} != commit cursor "
                f"{self.committed} — commit stream skipped or duplicated"
            )
            assert rob[-1][0] - rob[0][0] == len(rob) - 1, (
                f"ROB index range [{rob[0][0]}, {rob[-1][0]}] does not "
                f"match its {len(rob)} entries — dispatch out of order"
            )

    def completion_of(self, index: int) -> int | None:
        """Completion cycle of a dispatched (not yet retired) instruction."""
        return self._completion.get(index)
