"""UCP — Alternate Path µ-op Cache Prefetching (paper Section IV).

The engine is triggered when the BPU predicts a hard-to-predict (H2P)
conditional branch (classified by UCP-Conf or TAGE-Conf, Section IV-A/B).
It then *walks the alternate path* — the path opposite to the prediction —
using its own small predictors:

* **Alt-BP** — an 8KB-class TAGE-SC-L whose tables are trained alongside
  the main predictor on the predicted path, but which keeps a second,
  divergent history (GHR) for the alternate path, resynchronised by copy
  when a new alternate path starts (Section IV-C);
* **Alt-Ind** — an optional 4KB-class ITTAGE for indirect targets;
* **Alt-RAS** — a 16-entry return stack copied from the main RAS;
* the shared, double-banked **BTB** for taken targets, arbitrating bank
  conflicts with the demand path via a 3-bit delay counter.

Walked instructions are grouped into µ-op cache entries with the same
termination rules as the demand path; each pending entry flows through the
Alt-FTQ (µ-op tag check, arbitrated against demand lookups), the µ-op
cache MSHR + shared L1I prefetch queue, and the alternate decode queue /
decoders, before being inserted into the µ-op cache (Section IV-D).

The walk stops per Section IV-E: a 6-bit-weighted saturating counter
(Table I weights, threshold ≈ 500), infinite-weight events (BTB miss,
indirect without Alt-Ind, unknown code), a no-branch instruction guard,
or a new H2P trigger (which flushes the Alt-FTQ and restarts).
"""

from __future__ import annotations

from collections import deque

from repro.branch.confidence import tage_conf_is_h2p, ucp_conf_is_h2p
from repro.branch.ittage import ITTAGE, ITTAGEConfig
from repro.branch.perceptron import HashedPerceptron, perceptron_is_h2p
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage_sc_l import TageScL, TageScLConfig
from repro.caches.uopcache import REGION_BYTES, UopCacheEntry
from repro.core.configs import SimConfig
from repro.core.weights import condition_weight
from repro.frontend.bpu import BranchEvent
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

# Raw branch-class ints for the walk loop (one comparison per walked
# instruction; IntEnum member access is slow at that rate).
_NOT_BRANCH = int(BranchClass.NOT_BRANCH)
_COND_DIRECT = int(BranchClass.COND_DIRECT)
_CALL_DIRECT = int(BranchClass.CALL_DIRECT)
_CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
_INDIRECT = int(BranchClass.INDIRECT)
_RETURN = int(BranchClass.RETURN)


class PendingEntry:
    """A walked µ-op cache entry moving through the prefetch pipeline."""

    __slots__ = ("entry", "trigger_index", "line", "ready_cycle", "uops_left", "delay")

    def __init__(self, entry: UopCacheEntry, trigger_index: int, line: int) -> None:
        self.entry = entry
        self.trigger_index = trigger_index
        self.line = line
        #: Cycle the instruction bytes are available (set at fill time).
        self.ready_cycle: int | None = None
        #: µ-ops still to pass through the alternate decoders.
        self.uops_left = entry.n_uops
        #: Tag-check bank-conflict delay counter (3-bit).
        self.delay = 0


class UCPEngine:
    """Alternate-path walker and µ-op cache prefetcher."""

    def __init__(self, config: SimConfig, trace: Trace, simulator) -> None:
        self.config = config
        self.ucp = config.ucp
        self.trace = trace
        self.sim = simulator
        self.stats = simulator.stats

        self.alt_bp = TageScL(TageScLConfig.small())
        #: The Alt-BP default histories track the predicted path; this
        #: second bundle diverges along the alternate path.
        self.alt_histories = self.alt_bp.make_histories()
        self.alt_ind = ITTAGE(ITTAGEConfig.small()) if self.ucp.use_indirect else None
        self.alt_ind_histories = self.alt_ind.make_histories() if self.alt_ind else None
        self.alt_ras = ReturnAddressStack(self.ucp.alt_ras_entries)

        # Walk state.
        self.active = False
        self.trigger_index = -1
        self.trigger_alt_taken = False  # direction the alternate path took
        self._walk_pc = 0
        self._stop_counter = 0.0
        self._threshold = float(self.ucp.stop_threshold)
        self._no_branch_run = 0
        self._walk_block_len = 0  # mirror of the BPU fetch-block grouping
        self._open: list[tuple[int, bool, bool, int]] = []  # building entry
        self._open_branches = 0  # branches in the open entry (hot counter)
        self._btb_delay = 0  # 3-bit BTB bank-conflict counter
        # Hot-path constants for the walk loop.
        self._clasp = bool(config.uop_cache and config.uop_cache.clasp)
        self._fetch_block_size = config.frontend.fetch_block_size

        # Prefetch pipeline.
        self.alt_ftq: deque[PendingEntry] = deque()
        self.mshr: list[PendingEntry] = []  # awaiting line fill
        self.decode_queue: deque[PendingEntry] = deque()
        self._line_waiters: dict[int, list[PendingEntry]] = {}

        #: repro.observe event bus; None keeps every emit a pointer test.
        self.observer = None

        if self.ucp.confidence == "ucp":
            self._is_h2p = ucp_conf_is_h2p
        elif self.ucp.confidence == "tage":
            self._is_h2p = tage_conf_is_h2p
        elif self.ucp.confidence == "perceptron":
            # Perceptron-output-magnitude confidence (Akkary et al. [6],
            # paper Section VII-D): a small side predictor trained on the
            # predicted path supplies the H2P flags.
            self._conf_perceptron = HashedPerceptron()
            self._is_h2p = self._perceptron_h2p
        else:
            raise ValueError(f"unknown confidence source {self.ucp.confidence!r}")

    # ------------------------------------------------------------------
    # BPU hooks: keep Alt predictors trained on the predicted path
    # ------------------------------------------------------------------

    def _perceptron_h2p(self, _prediction) -> bool:
        return self._last_perceptron_h2p

    def on_conditional(self, event: BranchEvent, cycle: int) -> None:
        """Train Alt-BP and, on an H2P prediction, start a new walk."""
        if self.ucp.confidence == "perceptron":
            conf_pred = self._conf_perceptron.predict(event.pc)
            self._last_perceptron_h2p = perceptron_is_h2p(conf_pred)
            self._conf_perceptron.update(conf_pred, event.actual_taken)
        alt_pred = self.alt_bp.predict(event.pc)
        self.alt_bp.update(alt_pred, event.actual_taken)
        if self.alt_ind is not None:
            self.alt_ind.push_history(event.pc, event.actual_taken)

        if not self._is_h2p(event.prediction):
            return
        self.stats.add("ucp_h2p_triggers")
        alt_start = self._alternate_start(event)
        if alt_start is None:
            self.stats.add("ucp_triggers_without_target")
            return
        self._start_walk(event, alt_start)

    def on_unconditional(self, pc: int) -> None:
        if self.ucp.confidence == "perceptron":
            self._conf_perceptron.push_unconditional(pc)
        self.alt_bp.push_unconditional(pc)
        if self.alt_ind is not None:
            self.alt_ind.push_history(pc, True)

    def on_indirect(self, pc: int, target: int) -> None:
        if self.alt_ind is None:
            return
        pred = self.alt_ind.predict(pc)
        self.alt_ind.update(pred, target)

    def on_resolution(self, index: int, cycle: int) -> None:
        """A mispredicted branch resolved (the pipeline now refills)."""
        if index == self.trigger_index:
            self.stats.add("ucp_trigger_mispredicted")

    # ------------------------------------------------------------------
    # Walk management
    # ------------------------------------------------------------------

    def _alternate_start(self, event: BranchEvent) -> int | None:
        """PC where the alternate path begins (opposite the prediction)."""
        if event.prediction.taken:
            return event.pc + 4  # alternate = fall-through
        return event.taken_target  # alternate = taken target (from BTB)

    def _start_walk(self, event: BranchEvent, alt_start: int) -> None:
        # A new H2P trigger flushes the Alt-FTQ (Section IV-E) but lets
        # in-flight prefetches (MSHR/decode) complete.
        self._flush_pending_entry()
        self.alt_ftq.clear()
        self.active = True
        self.trigger_index = event.index
        self.trigger_alt_taken = not event.prediction.taken
        self._walk_pc = alt_start
        self._stop_counter = 0.0
        self._threshold = float(self.ucp.stop_threshold)
        self._no_branch_run = 0
        self._walk_block_len = 0
        self._btb_delay = 0
        self.stats.add("ucp_walks_started")
        if self.observer is not None:
            self.observer.emit(
                "ucp_trigger",
                pc=event.pc,
                index=event.index,
                alt_taken=self.trigger_alt_taken,
            )

        # Resynchronise the alternate history: predicted-path history plus
        # the H2P branch taken in the *opposite* direction.
        self.alt_histories.copy_from(self.alt_bp.histories)
        self.alt_histories.push(event.pc, not event.prediction.taken)
        if self.alt_ind is not None:
            self.alt_ind_histories.copy_from(self.alt_ind.histories)
            self.alt_ind_histories.push(event.pc, not event.prediction.taken)
        self.alt_ras.copy_from(self.sim.bpu.ras)

    def _stop_walk(self, reason: str) -> None:
        if not self.active:
            return
        self.active = False
        self._flush_pending_entry()
        self.stats.add(f"ucp_stop_{reason}")

    def _flush_pending_entry(self) -> None:
        """Queue whatever µ-ops are open as a final (short) entry."""
        if self._open:
            self._close_entry(next_pc=0)

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        self._tick_decode(cycle)
        self._tick_tag_check(cycle)
        if self.active:
            self._tick_walk(cycle)

    def is_idle(self) -> bool:
        """True when a tick provably cannot change any UCP state — no walk
        in progress and every queue of the prefetch pipeline is empty.
        Used by the simulator's idle-cycle skipping; kept conservative (any
        in-flight entry anywhere keeps the engine "busy" even if it could
        not advance this very cycle)."""
        return not (
            self.active
            or self.alt_ftq
            or self.decode_queue
            or self.mshr
            or self._line_waiters
        )

    # --- stage 3: alternate decoders → µ-op cache ----------------------

    def _tick_decode(self, cycle: int) -> None:
        if not self.decode_queue:
            return
        if self.ucp.shared_decoders and self.sim.fetch.decoders_busy_this_cycle:
            return  # demand path owns the decoders this cycle
        budget = self.ucp.alt_decode_width
        if self.config.isa_stateful_decode:
            # x86-like stateful decode: lines must decode in program order,
            # so a late line blocks younger ready ones (Section IV-G-1).
            while budget > 0 and self.decode_queue:
                pending = self.decode_queue[0]
                if pending.ready_cycle is None or cycle < pending.ready_cycle:
                    break
                decoded = min(budget, pending.uops_left)
                pending.uops_left -= decoded
                budget -= decoded
                self.stats.add("ucp_uops_decoded", decoded)
                if pending.uops_left == 0:
                    self.decode_queue.popleft()
                    self._insert_entry(pending, cycle)
            return
        # ARMv8-like stateless decode: any ready line may decode as it
        # returns from the hierarchy, out of order.
        finished = []
        for pending in self.decode_queue:
            if budget <= 0:
                break
            if pending.ready_cycle is None or cycle < pending.ready_cycle:
                continue
            decoded = min(budget, pending.uops_left)
            pending.uops_left -= decoded
            budget -= decoded
            self.stats.add("ucp_uops_decoded", decoded)
            if pending.uops_left == 0:
                finished.append(pending)
        for pending in finished:
            self.decode_queue.remove(pending)
            self._insert_entry(pending, cycle)

    def _insert_entry(self, pending: PendingEntry, cycle: int) -> None:
        self.sim.uop_cache.insert(pending.entry)
        self.stats.add("ucp_entries_prefetched")
        completion = self.sim.backend.completion_of(pending.trigger_index)
        timely = completion is None or completion >= cycle
        if timely:
            # Inserted before the triggering H2P instance resolved.
            self.stats.add("ucp_entries_timely")
        if self.observer is not None:
            self.observer.emit(
                "ucp_alt_fill",
                pc=pending.entry.start_pc,
                n_uops=pending.entry.n_uops,
                trigger_index=pending.trigger_index,
                timely=timely,
            )

    # --- stage 2: tag check, MSHR, L1I prefetch ------------------------

    def _tick_tag_check(self, cycle: int) -> None:
        if not self.alt_ftq:
            return
        pending = self.alt_ftq[0]
        # One µ-op tag check per cycle, arbitrated against demand lookups
        # (set-interleaved banks; demand wins, alt wins after 8 delays).
        bank = self.sim.uop_cache.bank_of(pending.entry.start_pc)
        if bank in self.sim.fetch.uop_banks_used and pending.delay < 7:
            pending.delay += 1
            self.stats.add("ucp_tagcheck_conflicts")
            return
        self.alt_ftq.popleft()
        if self.sim.uop_cache.probe(pending.entry.start_pc):
            self.stats.add("ucp_filtered_present")
            return
        if len(self.mshr) >= self.ucp.mshr_entries:
            self.stats.add("ucp_mshr_full")
            self.alt_ftq.appendleft(pending)
            return

        hierarchy = self.sim.hierarchy
        line_size = hierarchy.config.l1i.line_size
        addr = pending.entry.start_pc
        pending.line = addr // line_size
        if self.ucp.till_l1i_only:
            # UCP-TillL1I: warm the L1I only; no decode, no µ-op insert.
            hierarchy.enqueue_prefetch(addr)
            self.stats.add("ucp_l1i_prefetches")
            return
        self.mshr.append(pending)
        if hierarchy.l1i.probe(addr):
            pending.ready_cycle = cycle + hierarchy.config.l1i.hit_latency
            self._to_decode(pending)
        else:
            queued = hierarchy.enqueue_prefetch(addr)
            self.stats.add("ucp_l1i_prefetches")
            self._line_waiters.setdefault(pending.line, []).append(pending)
            if not queued:
                # Already queued/in flight elsewhere, or the PQ is full:
                # fall back to a conservative ready estimate.
                pending.ready_cycle = cycle + hierarchy.config.l2.hit_latency * 2
                self._to_decode(pending)
                self._line_waiters[pending.line].remove(pending)
                if not self._line_waiters[pending.line]:
                    del self._line_waiters[pending.line]

    def on_prefetch_fill(self, line: int, ready_cycle: int) -> None:
        """The shared L1I prefetch queue issued a line fill."""
        waiters = self._line_waiters.pop(line, None)
        if not waiters:
            return
        for pending in waiters:
            pending.ready_cycle = ready_cycle
            self._to_decode(pending)

    def _to_decode(self, pending: PendingEntry) -> None:
        if len(self.decode_queue) >= self.ucp.alt_decode_entries:
            # Decode queue full: drop (rare; counted for visibility).
            self.stats.add("ucp_decode_queue_drops")
            if pending in self.mshr:
                self.mshr.remove(pending)
            return
        if pending in self.mshr:
            self.mshr.remove(pending)
        self.decode_queue.append(pending)

    # --- stage 1: the walk ---------------------------------------------

    def _tick_walk(self, cycle: int) -> None:
        get_class = self.sim.codemap.get_class
        alt_ftq = self.alt_ftq
        ftq_limit = self.ucp.alt_ftq_entries
        for _step in range(self.ucp.walk_instructions_per_cycle):
            if not self.active:
                return
            if len(alt_ftq) + 2 > ftq_limit:
                # Back-pressure: wait for tag checks to drain.  One walk
                # step can close up to two entries (a discontinuity closes
                # the open entry and the new µ-op may immediately close its
                # own), so stall while fewer than two slots are free — the
                # Alt-FTQ can never exceed its configured capacity.
                return
            pc = self._walk_pc
            branch_class = get_class(pc)
            if branch_class is None:
                # Unknown code == nothing in the BTB / no predecode info:
                # the infinite-weight stop of Table I.
                self._stop_walk("unknown_code")
                return
            if branch_class == _NOT_BRANCH:
                self._walk_straight(pc)
                continue
            if not self._walk_branch(pc, branch_class, cycle):
                return

    def _walk_straight(self, pc: int) -> None:
        self._no_branch_run += 1
        self._append_uop(pc, is_branch=False, taken=False, next_pc=pc + 4)
        self._walk_pc = pc + 4
        if self._no_branch_run >= self.ucp.max_instructions_without_branch:
            self._stop_walk("no_branch_guard")

    def _walk_branch(self, pc: int, branch_class: int, cycle: int) -> bool:
        """Handle one branch on the alternate path; False ends this cycle."""
        self._no_branch_run = 0

        if branch_class == _COND_DIRECT:
            prediction = self.alt_bp.predict(pc, histories=self.alt_histories)
            weight = condition_weight(prediction)
            self._stop_counter += weight
            if not ucp_conf_is_h2p(prediction):
                # High-confidence branches extend the walk (Section IV-E).
                self._threshold += self.ucp.high_confidence_bonus
            taken = prediction.taken
            target = None
            if taken:
                target = self._btb_target(pc, cycle)
                if target is Ellipsis:
                    return False  # bank conflict: retry next cycle
                if target is None:
                    self._append_uop(pc, True, False, pc + 4)
                    self._stop_walk("btb_miss")
                    return False
            self.alt_histories.push(pc, taken)
            if self.alt_ind is not None:
                self.alt_ind_histories.push(pc, taken)
            self._append_uop(pc, True, taken, target if taken else pc + 4)
            self._walk_pc = target if taken else pc + 4
            if self._stop_counter >= self._threshold:
                self._stop_walk("threshold")
                return False
            return True

        # Unconditional branches.
        if branch_class == _RETURN:
            target = self.alt_ras.pop()
            self._stop_counter += 1
            if target is None:
                self._append_uop(pc, True, False, pc + 4)
                self._stop_walk("ras_empty")
                return False
        elif branch_class == _CALL_INDIRECT or branch_class == _INDIRECT:
            if self.alt_ind is None:
                self._append_uop(pc, True, False, pc + 4)
                self._stop_walk("indirect_no_predictor")
                return False
            ind_pred = self.alt_ind.predict(pc, histories=self.alt_ind_histories)
            target = ind_pred.target
            self._stop_counter += 1
            if target is None:
                self._append_uop(pc, True, False, pc + 4)
                self._stop_walk("indirect_unknown")
                return False
        else:  # direct jump or call
            target = self._btb_target(pc, cycle)
            if target is Ellipsis:
                return False
            if target is None:
                self._append_uop(pc, True, False, pc + 4)
                self._stop_walk("btb_miss")
                return False
        if branch_class == _CALL_DIRECT or branch_class == _CALL_INDIRECT:
            self.alt_ras.push(pc + 4)

        self.alt_histories.push(pc, True)
        if self.alt_ind is not None:
            self.alt_ind_histories.push(pc, True)
        self._append_uop(pc, True, True, target)
        self._walk_pc = target
        if self._stop_counter >= self._threshold:
            self._stop_walk("threshold")
            return False
        return True

    def _btb_target(self, pc: int, cycle: int):
        """Shared-BTB lookup with double-banked conflict arbitration.

        Returns the target PC, None on a BTB miss, or ``Ellipsis`` when a
        bank conflict defers the access to the next cycle.
        """
        btb = self.sim.bpu.btb
        if not self.ucp.ideal_btb_banking:
            bank = btb.bank_of(pc, n_banks=2 * btb.config.n_banks)
            if bank in self.sim.bpu.btb_banks_used:
                if self._btb_delay < 7:
                    self._btb_delay += 1
                    self.stats.add("ucp_btb_conflicts")
                    return Ellipsis
                # Counter saturated: the alternate path wins the bank and
                # the demand path retries next cycle.
                self.sim.bpu.resume_cycle = max(self.sim.bpu.resume_cycle, cycle + 1)
        self._btb_delay = 0
        entry = btb.peek(pc)
        return entry.target if entry is not None else None

    # ------------------------------------------------------------------
    # Entry building along the walk
    # ------------------------------------------------------------------

    def _append_uop(self, pc: int, is_branch: bool, taken: bool, next_pc: int) -> None:
        """Group walked µ-ops exactly like the demand path's entries."""
        clasp = self._clasp
        open_uops = self._open
        if open_uops:
            start_pc = open_uops[0][0]
            expected = start_pc + 4 * len(open_uops)
            region_end = (start_pc // REGION_BYTES + 1) * REGION_BYTES
            if (
                pc != expected
                or self._walk_block_len == 0  # new fetch-block boundary
                or (not clasp and pc >= region_end)
                or (is_branch and self._open_branches >= 2)
            ):
                self._close_entry(next_pc=pc)
                open_uops = self._open
        open_uops.append((pc, is_branch, taken, next_pc))
        if is_branch:
            self._open_branches += 1
        self._walk_block_len += 1

        closes = (is_branch and taken) or len(open_uops) >= 8
        if not clasp:
            closes = closes or (
                pc + 4 >= (open_uops[0][0] // REGION_BYTES + 1) * REGION_BYTES
            )
        if (is_branch and taken) or self._walk_block_len >= self._fetch_block_size:
            self._walk_block_len = 0
        if closes:
            self._close_entry(next_pc=next_pc)

    def _close_entry(self, next_pc: int) -> None:
        if not self._open:
            return
        start_pc = self._open[0][0]
        entry = UopCacheEntry(
            start_pc, len(self._open), next_pc, from_prefetch=True
        )
        self._open = []
        self._open_branches = 0
        pending = PendingEntry(entry, self.trigger_index, start_pc // 64)
        self.alt_ftq.append(pending)
        self.stats.add("ucp_entries_generated")
