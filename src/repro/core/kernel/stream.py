"""Record-once/replay-many prediction streams.

The expensive half of the interpreter's per-cycle cost is the baseline
predictor stack (TAGE-SC-L + ITTAGE + folded global histories).  Its
output is *timing-independent*: the BPU stalls at every misprediction
(no wrong-path fetch), so it processes each branch exactly once, in
trace order, and every predictor consult/update sequence is a pure
function of (trace, predictor configs) — block boundaries, FTQ pressure
and stall cycles only change *when* a branch is processed, never *what*
the predictors see.

This module runs that sequence once per (trace, predictor-config) pair
— mirroring ``BPU._build_block``'s call order exactly — and records

* the :class:`~repro.branch.tage_sc_l.TageScLPrediction` object for
  every conditional branch, and
* the mispredict outcome for every indirect/indirect-call branch,

which :class:`repro.core.kernel.engine.ReplayBPU` then consumes by
cursor.  Everything *not* recorded here (BTB contents, RAS, bank sets,
``taken_target``) stays live in the replay BPU: those structures are
cheap, and UCP reads them mid-run.

Streams are cached per live trace object in a weak-key map (the
workload suite caches traces per (name, length), so repeated
simulations — perf repeats, experiment matrices, differential tests —
record once and replay many times).
"""

from __future__ import annotations

import weakref

from repro.branch.ittage import ITTAGE
from repro.branch.tage_sc_l import TageScL, TageScLPrediction
from repro.core.configs import SimConfig
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

_COND_DIRECT = int(BranchClass.COND_DIRECT)
_CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
_INDIRECT = int(BranchClass.INDIRECT)

#: Cache key: the two predictor configs (frozen dataclasses).  BTB and
#: RAS configuration is deliberately absent — neither feeds the TAGE or
#: ITTAGE consult/update sequence.
StreamKey = tuple[object, object]


class PredictionStream:
    """The recorded predictor outcomes for one (trace, config) pair."""

    __slots__ = ("cond_predictions", "indirect_mispredicts")

    def __init__(
        self,
        cond_predictions: list[TageScLPrediction],
        indirect_mispredicts: list[bool],
    ) -> None:
        #: One prediction per conditional branch, in trace order.
        self.cond_predictions = cond_predictions
        #: One mispredict flag per indirect/indirect-call, in trace order.
        self.indirect_mispredicts = indirect_mispredicts


def stream_key(config: SimConfig) -> StreamKey:
    return (config.branch_predictor, config.indirect_predictor)


def record_stream(trace: Trace, config: SimConfig) -> PredictionStream:
    """One pre-pass over the trace's branches (no caching).

    The call order per branch class mirrors ``BPU._build_block`` /
    ``BPU._handle_conditional`` / ``BPU._handle_indirect`` exactly —
    predictor state is path-dependent, so any reordering would change
    later predictions:

    * conditional: ``cond.predict``, ``cond.update``,
      ``indirect.push_history(pc, taken)``;
    * any unconditional: ``cond.push_unconditional``,
      ``indirect.push_history(pc, True)``;
    * indirect / indirect call (additionally): ``indirect.predict``,
      ``indirect.update``.

    Returns and direct jumps/calls consult no predictor (the RAS stays
    live in the replay BPU), so only their history pushes appear here.
    """
    cond = TageScL(config.branch_predictor)
    indirect = ITTAGE(config.indirect_predictor)
    pcs, classes, takens, targets, _next_pcs = trace.list_columns()

    cond_predictions: list[TageScLPrediction] = []
    indirect_mispredicts: list[bool] = []

    branch_indices = trace.branch_classes.nonzero()[0].tolist()
    for i in branch_indices:
        branch_class = classes[i]
        pc = pcs[i]
        if branch_class == _COND_DIRECT:
            taken = takens[i]
            prediction = cond.predict(pc)
            cond_predictions.append(prediction)
            cond.update(prediction, taken)
            indirect.push_history(pc, taken)
            continue
        cond.push_unconditional(pc)
        indirect.push_history(pc, True)
        if branch_class == _CALL_INDIRECT or branch_class == _INDIRECT:
            target = targets[i]
            ipred = indirect.predict(pc)
            indirect_mispredicts.append(ipred.target != target)
            indirect.update(ipred, target)

    return PredictionStream(cond_predictions, indirect_mispredicts)


_CACHE: weakref.WeakKeyDictionary[Trace, dict[StreamKey, PredictionStream]] = (
    weakref.WeakKeyDictionary()
)


def get_stream(trace: Trace, config: SimConfig) -> PredictionStream:
    """Cached :func:`record_stream` (weakly keyed by the trace object)."""
    per_trace = _CACHE.get(trace)
    if per_trace is None:
        per_trace = {}
        _CACHE[trace] = per_trace
    key = stream_key(config)
    stream = per_trace.get(key)
    built = stream is None
    if stream is None:
        stream = per_trace[key] = record_stream(trace, config)
    from repro.observe import telemetry

    tel = telemetry.maybe()
    if tel is not None:
        tel.counter(
            "repro_kernel_stream_total",
            "Prediction-stream lookups: recorded fresh vs replayed from "
            "the per-trace cache.",
            labels=("outcome",),
        ).inc(outcome="recorded" if built else "reused")
    return stream
