"""Batched tick kernel: record-once/replay-many simulation fast path.

``repro.core.kernel`` holds the strictly-typed kernel that batches the
per-cycle hot path over :class:`~repro.isa.trace.Trace`'s numpy columns:

* :mod:`~repro.core.kernel.columns` — per-trace precomputed columns
  (backend latency/dependency hashes, branch spans, µ-op line ids);
* :mod:`~repro.core.kernel.stream` — the recorded TAGE-SC-L/ITTAGE
  prediction stream (one pre-pass per trace × predictor config);
* :mod:`~repro.core.kernel.engine` — :class:`KernelSimulator`, the
  drop-in :class:`~repro.core.pipeline.Simulator` subclass that replays
  the stream and jumps branch spans, bit-identical by construction.

``REPRO_SIM_KERNEL`` selects the path (default on; ``"0"`` disables —
same convention as ``REPRO_SIM_SKIP``).  The flag deliberately does not
live in :class:`~repro.core.configs.SimConfig`: kernel and interpreter
produce identical results, so the result-cache key must not depend on
it.  Bit-identity is enforced by :mod:`repro.verify.kernel_diff`.
"""

from __future__ import annotations

import os

from repro.core.kernel.columns import KernelColumns, build_columns, columns_key, get_columns
from repro.core.kernel.engine import (
    KernelBackend,
    KernelSimulator,
    ReplayBPU,
    kernel_applicability,
    kernel_applicable,
)
from repro.core.kernel.stream import PredictionStream, get_stream, record_stream, stream_key

__all__ = [
    "KernelBackend",
    "KernelColumns",
    "KernelSimulator",
    "PredictionStream",
    "ReplayBPU",
    "build_columns",
    "columns_key",
    "get_columns",
    "get_stream",
    "kernel_applicability",
    "kernel_applicable",
    "kernel_enabled",
    "record_stream",
    "stream_key",
]


def kernel_enabled(override: bool | None = None) -> bool:
    """Resolve the kernel on/off decision for one simulation.

    ``override`` forces the choice; None defers to ``REPRO_SIM_KERNEL``
    (default on, ``"0"`` disables).  Read at call time, never at import
    time, so tests and the differential oracle can flip the variable
    per run.
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_SIM_KERNEL", "1") != "0"
