"""Per-trace precomputed kernel columns.

The batched kernel trades per-instruction recomputation for one numpy
pass per (trace, config-scalars) pair:

* the backend's PC-hash latency and dependency-distance columns (the
  exact integer formulas of :meth:`repro.core.backend.Backend.dispatch`,
  vectorized);
* the branch-span column ``next_branch`` (for every index, the first
  index at or after it whose branch class is not ``NOT_BRANCH``, with
  ``len(trace)`` as the no-more-branches sentinel) — this is what lets
  the replay BPU jump over non-branch runs in one step instead of
  walking them instruction by instruction;
* the µ-op line column ``lines`` (``pc // l1i_line_size``), consumed by
  the replay BPU's fetch-directed-prefetch pass.

Columns are materialised as plain Python lists (per-element numpy
indexing is slower than list indexing at simulator scale, see
``Trace.list_columns``) and cached per live trace object in a weak-key
map, so repeated simulations of the same trace — the perf harness, the
experiment matrix, differential tests — pay the precompute once.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.configs import SimConfig
from repro.isa.trace import Trace

#: Cache key: every config scalar the column formulas consume.
ColumnsKey = tuple[int, int, int, int, int, int, int]


class KernelColumns:
    """Precomputed per-instruction columns for one (trace, config) pair."""

    __slots__ = ("n", "latency", "distance", "next_branch", "lines")

    def __init__(
        self,
        n: int,
        latency: list[int],
        distance: list[int],
        next_branch: list[int],
        lines: list[int],
    ) -> None:
        self.n = n
        #: Execution latency per non-branch instruction (PC-hash formula).
        self.latency = latency
        #: Synthetic dependency distance per non-branch instruction.
        self.distance = distance
        #: First branch index at or after each index (``n`` = none left).
        self.next_branch = next_branch
        #: L1I line id per instruction (``pc // line_size``).
        self.lines = lines


def columns_key(config: SimConfig) -> ColumnsKey:
    """The config scalars the column formulas depend on."""
    backend = config.backend
    return (
        backend.load_hash_mod,
        backend.long_load_every,
        backend.long_load_latency,
        backend.load_latency,
        backend.simple_latency,
        backend.dep_window,
        config.hierarchy.l1i.line_size,
    )


def build_columns(trace: Trace, config: SimConfig) -> KernelColumns:
    """One vectorized pass over the trace columns (no caching)."""
    backend = config.backend
    n = len(trace)
    pcs = trace.pcs
    classes = trace.branch_classes

    # Backend PC hash, vectorized — must match Backend.dispatch bit for bit.
    h = pcs >> 2
    h = h ^ (h >> 7)
    h = h ^ (h >> 13)
    h = h & 0xFFFF
    is_load = (h % backend.load_hash_mod) == 0
    is_long = ((h >> 8) % backend.long_load_every) == 0
    latency = np.where(
        is_load,
        np.where(is_long, backend.long_load_latency, backend.load_latency),
        backend.simple_latency,
    )
    distance = 1 + ((h >> 4) % backend.dep_window)

    # next_branch: reverse running minimum over branch positions.
    index = np.arange(n, dtype=np.int64)
    marks = np.where(classes != 0, index, np.int64(n))
    next_branch = np.minimum.accumulate(marks[::-1])[::-1]

    lines = pcs // config.hierarchy.l1i.line_size

    return KernelColumns(
        n=n,
        latency=latency.tolist(),
        distance=distance.tolist(),
        next_branch=next_branch.tolist(),
        lines=lines.tolist(),
    )


_CACHE: weakref.WeakKeyDictionary[Trace, dict[ColumnsKey, KernelColumns]] = (
    weakref.WeakKeyDictionary()
)


def get_columns(trace: Trace, config: SimConfig) -> KernelColumns:
    """Cached :func:`build_columns` (weakly keyed by the trace object)."""
    per_trace = _CACHE.get(trace)
    if per_trace is None:
        per_trace = {}
        _CACHE[trace] = per_trace
    key = columns_key(config)
    columns = per_trace.get(key)
    built = columns is None
    if columns is None:
        columns = per_trace[key] = build_columns(trace, config)
    from repro.observe import telemetry

    tel = telemetry.maybe()
    if tel is not None:
        tel.counter(
            "repro_kernel_columns_total",
            "Kernel column lookups: built fresh vs reused from the "
            "per-trace cache.",
            labels=("outcome",),
        ).inc(outcome="built" if built else "reused")
    return columns
