"""The batched tick kernel: replay BPU + columnar backend.

:class:`KernelSimulator` is a drop-in :class:`~repro.core.pipeline.
Simulator` whose hot components are swapped for batched equivalents:

* :class:`ReplayBPU` consumes the recorded prediction stream of
  :mod:`repro.core.kernel.stream` instead of running TAGE-SC-L/ITTAGE
  live, and jumps over non-branch runs using the precomputed
  ``next_branch`` span column instead of walking them one instruction at
  a time.  The BTB and RAS stay live (they are cheap, and UCP reads
  ``sim.bpu.btb`` / copies ``sim.bpu.ras`` mid-run), so every stat,
  hook, stall and resume cycle is produced exactly as the interpreter
  produces it.
* :class:`KernelBackend` replaces the per-dispatch PC-hash recomputation
  with the vectorized latency/dependency-distance columns of
  :mod:`repro.core.kernel.columns`.

The per-cycle loop itself is inherited unchanged from ``Simulator.run``
— commit, branch resolution, dispatch, fetch, prefetch issue, UCP and
every event boundary (mispredict resolution, mode switches, interval
samples, warm-up snapshot, idle-skip wake points) execute the identical
cycle stream, which is what makes the kernel provably bit-identical
(see ``repro.verify.kernel_diff``).

**Fallback contract:** when the invariant checker or the observe event
bus is active the kernel disables itself and behaves exactly like the
interpreter (the sanitizer's shadow models and the taxonomy hook the
live predictor structures).  :func:`kernel_applicable` mirrors the
``make_checker`` / ``make_observer`` gating so the decision is made
before any component is built.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.common.stats import StatBlock
from repro.core.backend import Backend
from repro.core.configs import BackendConfig, SimConfig
from repro.core.kernel.columns import KernelColumns, get_columns
from repro.core.kernel.stream import PredictionStream, get_stream
from repro.core.pipeline import SimResult, Simulator
from repro.frontend.bpu import BPU, BranchEvent
from repro.frontend.ftq import FetchBlock
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

_NOT_BRANCH = int(BranchClass.NOT_BRANCH)
_COND_DIRECT = int(BranchClass.COND_DIRECT)
_UNCOND_DIRECT = int(BranchClass.UNCOND_DIRECT)
_CALL_DIRECT = int(BranchClass.CALL_DIRECT)
_CALL_INDIRECT = int(BranchClass.CALL_INDIRECT)
_INDIRECT = int(BranchClass.INDIRECT)
_RETURN = int(BranchClass.RETURN)


def kernel_applicability(
    check: bool | None, observe: bool | None
) -> tuple[bool, str | None]:
    """Kernel go/no-go plus the no-go reason for these checker/observer args.

    Mirrors ``repro.verify.make_checker`` and ``repro.observe.
    make_observer``: a checker exists iff ``check is True`` or (``check
    is None`` and ``REPRO_SIM_CHECK`` is set); same for the observer and
    ``REPRO_SIM_TRACE``.  Either one active forces the interpreter.

    Returns ``(True, None)`` when the replay kernel may run, else
    ``(False, reason)`` with reason in ``{"checker-armed",
    "observer-armed"}`` — the label recorded on the
    ``repro_kernel_fallback_total`` counter and in the one-time warning.
    """
    if check is True:
        return False, "checker-armed"
    if observe is True:
        return False, "observer-armed"
    from repro.observe import trace_level
    from repro.verify import check_level

    if check is None and check_level() > 0:
        return False, "checker-armed"
    if observe is None and trace_level() > 0:
        return False, "observer-armed"
    return True, None


def kernel_applicable(check: bool | None, observe: bool | None) -> bool:
    """True when the replay kernel may run (see :func:`kernel_applicability`)."""
    applicable, _reason = kernel_applicability(check, observe)
    return applicable


_log = logging.getLogger(__name__)

#: Fallback reasons already warned about in this process (one warning
#: per reason, not one per simulation — a suite of thousands of checked
#: runs should say "interpreter because checker" exactly once).
_WARNED_REASONS: set[str] = set()


def _note_kernel_fallback(reason: str) -> None:
    """Record a silent-fallback event: labeled counter + one-time warning."""
    from repro.observe import telemetry

    tel = telemetry.maybe()
    if tel is not None:
        tel.counter(
            "repro_kernel_fallback_total",
            "Replay-kernel runs that fell back to the interpreter, by reason.",
            labels=("reason",),
        ).inc(reason=reason)
    if reason not in _WARNED_REASONS:
        _WARNED_REASONS.add(reason)
        _log.warning(
            "replay kernel inactive (%s): simulating with the interpreter; "
            "this is the bit-identical slow path, not an error",
            reason,
        )


class ReplayBPU(BPU):
    """A BPU that replays the recorded predictor stream by cursor.

    Overrides only the three methods that consult or train TAGE-SC-L /
    ITTAGE; ``generate``, ``_direct_target``, ``redirect`` and the
    stall/resume machinery are inherited untouched.  The overridden
    bodies are line-for-line copies of the interpreter's with the
    predictor calls replaced by cursor reads — every stats counter, BTB
    access, RAS operation and hook fires in the identical order.
    """

    def __init__(
        self,
        config: SimConfig,
        trace: Trace,
        stats: StatBlock,
        stream: PredictionStream,
        columns: KernelColumns,
        hierarchy: Any = None,
        prefetcher: Any = None,
    ) -> None:
        super().__init__(
            config, trace, stats, hierarchy=hierarchy, prefetcher=prefetcher
        )
        self._stream = stream
        self._cond_predictions = stream.cond_predictions
        self._indirect_mispredicts = stream.indirect_mispredicts
        #: Replay cursors: next conditional / next indirect outcome.
        self._cond_cursor = 0
        self._indirect_cursor = 0
        self._next_branch = columns.next_branch
        self._lines = columns.lines

    # ------------------------------------------------------------------
    # Span-batched block building
    # ------------------------------------------------------------------

    def _build_block(self, cycle: int) -> FetchBlock:
        classes = self._classes
        block_size = self._fetch_block_size
        n_instructions = self._n_instructions
        next_branch = self._next_branch
        start = self.index
        count = 0
        ends_taken = False
        mispredicted = False

        while count < block_size and self.index < n_instructions:
            i = self.index
            nb = next_branch[i]
            if nb > i:
                # Non-branch span: consume it in one jump.  ``nb`` is at
                # most ``n_instructions`` (the sentinel), so the cursor
                # never overshoots the trace; the loop condition re-checks
                # both the block budget and the trace end.
                run = nb - i
                room = block_size - count
                if run > room:
                    run = room
                self.index = i + run
                count += run
                continue
            branch_class = classes[i]
            self.index = i + 1
            count += 1
            if branch_class == _NOT_BRANCH:  # defensive; spans cover these
                continue

            pc = self._pcs[i]
            taken = self._takens[i]
            target = self._targets[i]

            if branch_class == _COND_DIRECT:
                mispredicted, block_taken = self._handle_conditional(
                    i, pc, taken, target, cycle
                )
                if mispredicted or block_taken:
                    ends_taken = block_taken and not mispredicted
                    break
                continue

            # Unconditional branches: always end the fetch block.  The
            # interpreter's cond.push_unconditional / indirect.push_history
            # happened in the recording pre-pass.
            if self.uncond_hook is not None:
                self.uncond_hook(pc)
            if branch_class == _UNCOND_DIRECT:
                self._direct_target(pc, BranchClass.UNCOND_DIRECT, target, cycle)
            elif branch_class == _CALL_DIRECT:
                self._direct_target(pc, BranchClass.CALL_DIRECT, target, cycle)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _CALL_INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
                self.ras.push(pc + 4)
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            elif branch_class == _INDIRECT:
                mispredicted = self._handle_indirect(i, pc, target)
            elif branch_class == _RETURN:
                predicted = self.ras.pop()
                if predicted != target:
                    self.stats.add("ras_mispredictions")
                    mispredicted = True
                    self.stalled_on = i
                    if self.observer is not None:
                        self.observer.on_mispredict(i, pc, "return")
                if self.context_hook is not None:
                    self.context_hook(pc, target)
            ends_taken = not mispredicted
            break

        return FetchBlock(start, count, ends_taken=ends_taken, mispredicted=mispredicted)

    # ------------------------------------------------------------------
    # Replayed branch-class handlers
    # ------------------------------------------------------------------

    def _handle_conditional(
        self, index: int, pc: int, taken: bool, target: int, cycle: int
    ) -> tuple[bool, bool]:
        prediction = self._cond_predictions[self._cond_cursor]
        self._cond_cursor += 1
        self.stats.add("cond_branches")
        direction_wrong = prediction.taken != taken

        btb_entry = self.btb.lookup(pc)
        self.btb_banks_used.add(self.btb.bank_of(pc, n_banks=2 * self.btb.config.n_banks))
        taken_target: int | None = btb_entry.target if btb_entry else None
        if taken:
            self.btb.update(pc, BranchClass.COND_DIRECT, target)
            taken_target = target if prediction.taken else taken_target

        mispredicted = direction_wrong
        ends_block = False
        if direction_wrong:
            self.stats.add("cond_mispredictions")
            self.stalled_on = index
            if self.observer is not None:
                self.observer.on_mispredict(index, pc, "cond")
        elif taken:
            if btb_entry is None:
                self.stats.add("btb_misses_taken")
                self.resume_cycle = cycle + self.config.frontend.btb_miss_penalty
            ends_block = True

        # cond.update / indirect.push_history ran in the pre-pass.
        if self.branch_hook is not None:
            self.branch_hook(
                BranchEvent(index, pc, prediction, taken, taken_target, mispredicted),
                cycle,
            )
        return mispredicted, ends_block

    def _handle_indirect(self, index: int, pc: int, target: int) -> bool:
        mispredicted = self._indirect_mispredicts[self._indirect_cursor]
        self._indirect_cursor += 1
        self.stats.add("indirect_branches")
        if mispredicted:
            self.stats.add("indirect_mispredictions")
            self.stalled_on = index
            if self.observer is not None:
                self.observer.on_mispredict(index, pc, "indirect")
        # indirect.update ran in the pre-pass.
        if self.indirect_hook is not None:
            self.indirect_hook(pc, target)
        branch_class = BranchClass(self._classes[index])
        self.btb.update(pc, branch_class, target)
        return mispredicted

    # ------------------------------------------------------------------
    # FDP with the precomputed line column
    # ------------------------------------------------------------------

    def _fdp_access(self, block: FetchBlock, cycle: int) -> None:
        if self.hierarchy is None:
            return
        lines = self._lines
        pcs = self._pcs
        line_ready = block.line_ready
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        stats_add = self.stats.add
        for index in range(block.start_index, block.end_index):
            line = lines[index]
            if line in line_ready:
                continue
            hit, ready = hierarchy.fetch_line(pcs[index], cycle)
            stats_add("l1i_demand_accesses")
            if not hit:
                stats_add("l1i_demand_misses")
            if prefetcher is not None:
                prefetcher.on_demand_access(line, hit, cycle, hierarchy)
            line_ready[line] = ready


class KernelBackend(Backend):
    """Backend with the PC-hash columns precomputed (bit-identical)."""

    def __init__(
        self,
        config: BackendConfig,
        trace: Trace,
        stats: StatBlock,
        columns: KernelColumns,
    ) -> None:
        super().__init__(config, trace, stats)
        self._latency_column = columns.latency
        self._distance_column = columns.distance

    def dispatch(self, index: int, cycle: int) -> int:
        if self._classes[index]:
            completion = cycle + 1 + self._branch_latency
            self._completion[index] = completion
            self._rob.append((index, completion))
            return completion

        dep_done = self._completion.get(index - self._distance_column[index], 0)
        earliest = cycle + 1
        if dep_done > earliest:
            earliest = dep_done
        completion = self._schedule(earliest + self._latency_column[index])
        self._completion[index] = completion
        self._rob.append((index, completion))
        return completion


class KernelSimulator(Simulator):
    """Simulator wired with the replay BPU and columnar backend.

    When :func:`kernel_applicable` says no (checker or observer active),
    every factory defers to the base class and this is *exactly* the
    interpreter — one object serves both modes so callers never branch.
    """

    def __init__(
        self,
        trace: Trace,
        config: SimConfig,
        name: str | None = None,
        check: bool | None = None,
        idle_skip: bool | None = None,
        observe: bool | None = None,
        interval: int | None = None,
    ) -> None:
        self._kernel_active, self._fallback_reason = kernel_applicability(
            check, observe
        )
        if self._fallback_reason is not None:
            _note_kernel_fallback(self._fallback_reason)
        self._kernel_columns: KernelColumns | None = None
        super().__init__(
            trace,
            config,
            name=name,
            check=check,
            idle_skip=idle_skip,
            observe=observe,
            interval=interval,
        )
        if self._kernel_active and (
            self.checker is not None or self.observer is not None
        ):  # pragma: no cover - kernel_applicable mirrors the factories
            raise RuntimeError(
                "kernel replay active with a checker/observer attached — "
                "kernel_applicable drifted from make_checker/make_observer"
            )

    @property
    def kernel_active(self) -> bool:
        """True when this run uses the replay kernel (else interpreter)."""
        return self._kernel_active

    @property
    def kernel_fallback_reason(self) -> str | None:
        """Why the kernel is inactive (None when :attr:`kernel_active`)."""
        return self._fallback_reason

    def run(self) -> SimResult:
        result = super().run()
        from repro.observe import telemetry

        tel = telemetry.maybe()
        if tel is not None and self._kernel_active:
            tel.counter(
                "repro_kernel_runs_total",
                "Simulations completed on the replay kernel.",
            ).inc()
            # Span-jump savings: every non-branch instruction is consumed
            # by a precomputed-span jump instead of a per-instruction step.
            classes = self.trace.branch_classes
            tel.counter(
                "repro_kernel_span_jumped_instructions_total",
                "Instructions consumed via next_branch span jumps instead "
                "of per-instruction walking.",
            ).inc(int((classes == 0).sum()))
        return result

    def _make_bpu(self) -> BPU:
        if not self._kernel_active:
            return super()._make_bpu()
        columns = get_columns(self.trace, self.config)
        self._kernel_columns = columns
        stream = get_stream(self.trace, self.config)
        return ReplayBPU(
            self.config,
            self.trace,
            self.stats,
            stream,
            columns,
            hierarchy=self.hierarchy,
            prefetcher=self.prefetcher,
        )

    def _make_backend(self) -> Backend:
        if not self._kernel_active:
            return super()._make_backend()
        columns = self._kernel_columns
        assert columns is not None  # _make_bpu runs first in Simulator.__init__
        return KernelBackend(self.config.backend, self.trace, self.stats, columns)
