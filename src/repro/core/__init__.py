"""The paper's core: the pipeline model and UCP itself.

* :mod:`repro.core.configs` — simulation configuration (paper Table II
  baseline plus UCP and experiment knobs).
* :mod:`repro.core.codemap` — dynamically discovered static code map used
  by the alternate-path walker.
* :mod:`repro.core.backend` — the abstract occupancy-limited backend.
* :mod:`repro.core.pipeline` — the cycle-level simulator tying BPU, FTQ,
  fetch engine, µ-op cache, memory hierarchy, backend and UCP together.
* :mod:`repro.core.ucp` — alternate-path µ-op cache prefetching (UCP),
  the paper's contribution, with all its variants.
* :mod:`repro.core.weights` — the stop-heuristic weights of paper Table I.
* :mod:`repro.core.mrc` — the Misprediction Recovery Cache baseline.
"""

from repro.core.configs import BackendConfig, FrontendConfig, SimConfig, UCPConfig
from repro.core.pipeline import SimResult, Simulator, simulate

__all__ = [
    "SimConfig",
    "FrontendConfig",
    "BackendConfig",
    "UCPConfig",
    "Simulator",
    "SimResult",
    "simulate",
]
