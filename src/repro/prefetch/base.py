"""L1I prefetcher interface and the next-line reference prefetcher.

Prefetchers observe demand accesses to the L1I at cache-line granularity
and enqueue prefetches into the shared L1I prefetch queue (one issue per
cycle, paper Section IV-D).  ``storage_kb`` feeds the cost/benefit study
of Fig. 16 (values follow the IPC1 write-ups).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.caches.hierarchy import MemoryHierarchy


class L1IPrefetcher(ABC):
    """Base class: observe demand accesses, enqueue prefetches."""

    name = "base"
    storage_kb = 0.0

    @abstractmethod
    def on_demand_access(
        self, line: int, hit: bool, cycle: int, hierarchy: MemoryHierarchy
    ) -> None:
        """Called for every demand L1I access (line number, hit/miss)."""

    def on_prefetch_fill(self, line: int, cycle: int) -> None:
        """Called when a prefetched line arrives (optional hook)."""

    def _prefetch(self, hierarchy: MemoryHierarchy, line: int) -> bool:
        if line < 0:
            return False
        return hierarchy.enqueue_prefetch(line * hierarchy.config.l1i.line_size)


class NextLinePrefetcher(L1IPrefetcher):
    """Prefetch the next ``degree`` sequential lines on every access."""

    name = "next_line"
    storage_kb = 0.0

    def __init__(self, degree: int = 2) -> None:
        self.degree = degree

    def on_demand_access(self, line, hit, cycle, hierarchy) -> None:
        for step in range(1, self.degree + 1):
            self._prefetch(hierarchy, line + step)


def make_prefetcher(name: str | None) -> L1IPrefetcher | None:
    """Factory for the prefetchers evaluated in paper Fig. 5/16."""
    if name is None:
        return None
    from repro.prefetch.djolt import DJoltPrefetcher
    from repro.prefetch.entangling import EntanglingPrefetcher
    from repro.prefetch.fnl_mma import FnlMmaPrefetcher

    factories = {
        "next_line": NextLinePrefetcher,
        "fnl_mma": FnlMmaPrefetcher,
        "fnl_mma++": lambda: FnlMmaPrefetcher(plus_plus=True),
        "djolt": DJoltPrefetcher,
        "ep": EntanglingPrefetcher,
        "ep++": lambda: EntanglingPrefetcher(plus_plus=True),
    }
    if name not in factories:
        raise KeyError(f"unknown L1I prefetcher {name!r}; choose from {sorted(factories)}")
    return factories[name]()
