"""Entangling Prefetcher (EP / EP++) — Ros & Jimborean, IPC1 / ISCA'21.

The entangling idea: when line ``D`` misses, find the line ``S`` that was
fetched just early enough that prefetching ``D`` when ``S`` is fetched
would have hidden the whole miss latency, and *entangle* ``S → D``.  On
every access to ``S``, its entangled destinations are prefetched.

We re-implement the core mechanism: a circular history of recently
fetched lines with their fetch cycles, an entangling table (source →
up to ``k`` destinations), and latency-aware source selection.  The
``plus_plus`` flavour models the further-optimised version [60] with more
destinations per source and a larger table.
"""

from __future__ import annotations

from collections import deque

from repro.prefetch.base import L1IPrefetcher


class EntanglingPrefetcher(L1IPrefetcher):
    def __init__(self, plus_plus: bool = False) -> None:
        self.plus_plus = plus_plus
        self.name = "ep++" if plus_plus else "ep"
        # Cost-effective EP ≈ 40KB; EP++ somewhat larger.
        self.storage_kb = 60.0 if plus_plus else 40.0

        self._table_size = 4096 if plus_plus else 2048
        self._dst_slots = 4 if plus_plus else 2
        #: source line -> entangled destination lines.
        self._entangled: dict[int, list[int]] = {}
        #: recent fetches: (line, cycle), newest right.
        self._history: deque[tuple[int, int]] = deque(maxlen=128)
        #: latency to hide when choosing the entangling source.
        self._target_latency = 40

    def on_demand_access(self, line, hit, cycle, hierarchy) -> None:
        # Issue: accesses trigger their entangled destinations.
        for destination in self._entangled.get(line, ()):
            self._prefetch(hierarchy, destination)

        if not hit:
            self._entangle(line, cycle)
        self._history.append((line, cycle))

    def _entangle(self, missed_line: int, cycle: int) -> None:
        """Pick the youngest source old enough to hide the miss latency."""
        source = None
        for past_line, past_cycle in reversed(self._history):
            if cycle - past_cycle >= self._target_latency:
                source = past_line
                break
        if source is None:
            if not self._history:
                return
            source = self._history[0][0]  # oldest available
        if source == missed_line:
            return
        slots = self._entangled.setdefault(source, [])
        if missed_line not in slots:
            slots.insert(0, missed_line)
            del slots[self._dst_slots:]
        if len(self._entangled) > self._table_size:
            self._entangled.pop(next(iter(self._entangled)))
