"""D-JOLT — "Distant Jolt Prefetcher" (Nakamura et al., IPC1).

D-JOLT's insight: instruction misses recur under the same *calling
context*, and can be prefetched far ahead by remembering which misses
followed a context signature at a given distance.  We re-implement the
essential structure: a signature of recent call/return history, a
long-range table (signature → miss lines observed a long distance later)
and a short-range table, both probed on every signature change.

The championship version spends ~125KB of state (paper Section VII-A);
that cost is what places D-JOLT to the far right of Fig. 16.
"""

from __future__ import annotations

from collections import deque

from repro.prefetch.base import L1IPrefetcher


class _RangeTable:
    """signature -> recent miss lines observed ``distance`` accesses later."""

    def __init__(self, size: int, slots: int) -> None:
        self.size = size
        self.slots = slots
        self._table: dict[int, list[int]] = {}

    def record(self, signature: int, line: int) -> None:
        slots = self._table.setdefault(signature, [])
        if line not in slots:
            slots.insert(0, line)
            del slots[self.slots:]
        if len(self._table) > self.size:
            self._table.pop(next(iter(self._table)))

    def lookup(self, signature: int) -> list[int]:
        return self._table.get(signature, [])


class DJoltPrefetcher(L1IPrefetcher):
    name = "djolt"
    storage_kb = 125.0  # championship configuration

    #: Distances (in demand accesses) at which the two tables associate
    #: a signature with future misses.
    LONG_DISTANCE = 24
    SHORT_DISTANCE = 6

    def __init__(self) -> None:
        self._long = _RangeTable(size=8192, slots=4)
        self._short = _RangeTable(size=2048, slots=2)
        #: Rolling call/return-context signature.
        self._signature = 0
        #: Recent (signature, access counter) history for distant training.
        self._sig_history: deque[tuple[int, int]] = deque(maxlen=64)
        self._access_counter = 0
        self._last_signature = None

    def update_context(self, branch_pc: int, target: int) -> None:
        """Fold a taken call/return into the context signature.

        The pipeline calls this for call/return branches, mirroring
        D-JOLT's call-stack-derived signature.
        """
        self._signature = ((self._signature << 5) ^ (target >> 2) ^ (branch_pc >> 2)) & 0xFFFFF

    def on_demand_access(self, line, hit, cycle, hierarchy) -> None:
        self._access_counter += 1
        if self._last_signature != self._signature:
            self._last_signature = self._signature
            self._sig_history.append((self._signature, self._access_counter))
            # New context: prefetch what historically missed after it.
            for target in self._long.lookup(self._signature):
                self._prefetch(hierarchy, target)
            for target in self._short.lookup(self._signature):
                self._prefetch(hierarchy, target)

        if hit:
            return
        # Train: attribute this miss to the signatures active LONG/SHORT
        # accesses ago, so the next occurrence prefetches it early enough.
        for signature, when in self._sig_history:
            age = self._access_counter - when
            if age >= self.LONG_DISTANCE:
                self._long.record(signature, line)
            elif age >= self.SHORT_DISTANCE:
                self._short.record(signature, line)
