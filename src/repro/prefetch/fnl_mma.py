"""FNL+MMA — "The FNL+MMA instruction cache prefetcher" (Seznec, IPC1).

Two cooperating components, re-implemented from the championship write-up:

* **FNL (Footprint Next Line)** — a worthiness table of saturating
  counters tracks, per line, whether the *next* sequential lines were
  actually used shortly after; sequential prefetch is issued only for
  lines with a history of being worth it.
* **MMA (Multiple Miss Ahead)** — a miss-successor table chains demand
  misses: on a miss, the misses that historically followed it are
  prefetched several misses ahead, covering non-sequential jumps.

The ``plus_plus`` flavour (FNL-MMA++ in paper Fig. 5/16) doubles table
sizes and prefetch degrees, matching the author's updated version.
"""

from __future__ import annotations

from repro.prefetch.base import L1IPrefetcher


class FnlMmaPrefetcher(L1IPrefetcher):
    def __init__(self, plus_plus: bool = False) -> None:
        self.plus_plus = plus_plus
        self.name = "fnl_mma++" if plus_plus else "fnl_mma"
        # Championship storage: ~13KB base; ++ roughly doubles it.
        self.storage_kb = 26.0 if plus_plus else 13.0

        size = 4096 if plus_plus else 2048
        self._worth_size = size
        #: FNL worthiness: 2-bit counters, indexed by line hash.
        self._worth = [1] * size
        self._next_degree = 3 if plus_plus else 2

        mma_size = 2048 if plus_plus else 1024
        self._mma_size = mma_size
        #: MMA: miss line -> up to ``_succ_slots`` successor miss lines.
        self._succ: dict[int, list[int]] = {}
        self._succ_slots = 3 if plus_plus else 2
        self._last_misses: list[int] = []
        self._last_line: int | None = None

    def _worth_index(self, line: int) -> int:
        return (line ^ (line >> 7)) % self._worth_size

    def on_demand_access(self, line, hit, cycle, hierarchy) -> None:
        # --- FNL training: a sequential access pattern strengthens the
        # worthiness of the previous line's next-line footprint.
        if self._last_line is not None:
            index = self._worth_index(self._last_line)
            if line == self._last_line + 1:
                self._worth[index] = min(3, self._worth[index] + 1)
            elif line != self._last_line:
                self._worth[index] = max(0, self._worth[index] - 1)
        self._last_line = line

        # --- FNL issue: prefetch the next lines when deemed worthwhile.
        if self._worth[self._worth_index(line)] >= 2:
            for step in range(1, self._next_degree + 1):
                self._prefetch(hierarchy, line + step)

        if not hit:
            self._on_miss(line, hierarchy)

    def _on_miss(self, line: int, hierarchy) -> None:
        # --- MMA training: record this miss as successor of recent misses.
        for distance, previous in enumerate(reversed(self._last_misses)):
            slots = self._succ.setdefault(previous, [])
            if line not in slots:
                slots.insert(0, line)
                del slots[self._succ_slots:]
            if len(self._succ) > self._mma_size:
                self._succ.pop(next(iter(self._succ)))
        self._last_misses.append(line)
        del self._last_misses[:-2]

        # --- MMA issue: prefetch the misses that historically follow.
        frontier = [line]
        for _ in range(2):  # look two miss-steps ahead
            next_frontier = []
            for miss in frontier:
                for successor in self._succ.get(miss, ()):
                    if self._prefetch(hierarchy, successor):
                        next_frontier.append(successor)
            frontier = next_frontier
            if not frontier:
                break
