"""Standalone L1I prefetchers — the IPC1 baselines of paper Section III-C.

* :mod:`repro.prefetch.base` — the prefetcher interface and a next-line
  reference implementation.
* :mod:`repro.prefetch.fnl_mma` — FNL+MMA (footprint next-line + multiple
  miss ahead), Seznec's IPC1 winner, plus its improved "++" tuning.
* :mod:`repro.prefetch.djolt` — D-JOLT (distant jolt) prefetcher.
* :mod:`repro.prefetch.entangling` — the Entangling prefetcher (EP) and
  its optimised EP++ flavour.

All prefetchers see demand accesses at line granularity and issue
prefetches through the shared L1I prefetch queue.
"""

from repro.prefetch.base import L1IPrefetcher, NextLinePrefetcher, make_prefetcher
from repro.prefetch.djolt import DJoltPrefetcher
from repro.prefetch.entangling import EntanglingPrefetcher
from repro.prefetch.fnl_mma import FnlMmaPrefetcher

__all__ = [
    "L1IPrefetcher",
    "NextLinePrefetcher",
    "FnlMmaPrefetcher",
    "DJoltPrefetcher",
    "EntanglingPrefetcher",
    "make_prefetcher",
]
