"""Cache substrate: instruction-side memory hierarchy and the µ-op cache.

* :mod:`repro.caches.cache` — generic set-associative cache level with LRU
  replacement and MSHR-based miss tracking/merging.
* :mod:`repro.caches.hierarchy` — the L1I → L2 → LLC → DRAM latency chain
  of the baseline (paper Table II), with a prefetch queue.
* :mod:`repro.caches.uopcache` — the µ-op cache: 4Kops, 64 sets × 8 ways ×
  8 µ-ops, with the entry builder enforcing the termination rules of paper
  Section II and prefetch-provenance tracking for Fig. 14.
"""

from repro.caches.cache import CacheConfig, SetAssocCache
from repro.caches.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.caches.uopcache import UopCache, UopCacheConfig, UopCacheEntry, UopEntryBuilder

__all__ = [
    "CacheConfig",
    "SetAssocCache",
    "HierarchyConfig",
    "MemoryHierarchy",
    "UopCache",
    "UopCacheConfig",
    "UopCacheEntry",
    "UopEntryBuilder",
]
