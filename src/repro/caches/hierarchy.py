"""Instruction-side memory hierarchy: L1I → L2 → LLC → DRAM.

Latencies follow the baseline of paper Table II (L1I 4 cycles, L2 10,
LLC 40, DRAM tRP+tRCD+tCAS = 37.5ns ≈ 150 cycles at 4GHz).  Only the
instruction path is modelled in detail; data-side behaviour is folded into
the abstract backend's load latency.

The hierarchy serves two request classes the paper distinguishes:

* **demand** fetches from the FTQ head (FDP turns these into effective
  prefetches by running ahead);
* **prefetch** requests from a standalone L1I prefetcher or from UCP,
  issued through a bounded prefetch queue (one dequeue per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.cache import CacheConfig, SetAssocCache


@dataclass(frozen=True)
class HierarchyConfig:
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L1I", size_bytes=32 * 1024, ways=8, hit_latency=4, mshr_entries=16
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "L2", size_bytes=1280 * 1024, ways=20, hit_latency=10, mshr_entries=32
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "LLC", size_bytes=30 * 1024 * 1024, ways=12, hit_latency=40, mshr_entries=64
        )
    )
    dram_latency: int = 150
    prefetch_queue_entries: int = 32
    l1i_banks: int = 2


class MemoryHierarchy:
    """Timing model of the instruction fetch path."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = SetAssocCache(self.config.l1i)
        self.l2 = SetAssocCache(self.config.l2)
        self.llc = SetAssocCache(self.config.llc)
        # Pending prefetch requests: list of line addresses (FIFO).
        self._prefetch_queue: list[int] = []
        self.demand_fetches = 0
        self.prefetches_issued = 0
        self.prefetches_dropped = 0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def fetch_line(self, addr: int, cycle: int) -> tuple[bool, int]:
        """Demand-fetch the line containing ``addr``.

        Returns ``(l1i_hit, ready_cycle)`` — the cycle the instruction
        bytes are available to decode.
        """
        self.demand_fetches += 1
        fill = 0 if self.l1i.probe(addr) else self._fill_latency_below_l1i(addr, cycle)
        hit, ready = self.l1i.access(addr, cycle, fill)
        return hit, ready

    def _fill_latency_below_l1i(self, addr: int, cycle: int) -> int:
        """Latency beyond the L1I for a line the L1I is about to miss on."""
        llc_fill = self.config.dram_latency if not self.llc.probe(addr) else 0
        l2_fill = 0
        if not self.l2.probe(addr):
            _, llc_ready = self.llc.access(addr, cycle, llc_fill)
            l2_fill = llc_ready - cycle
        _, l2_ready = self.l2.access(addr, cycle, l2_fill)
        return l2_ready - cycle

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def enqueue_prefetch(self, addr: int) -> bool:
        """Queue a prefetch for the line containing ``addr``.

        Returns False (dropped) when the queue is full or the line is
        already present/queued.
        """
        line = self.l1i.line_of(addr)
        if self.l1i.probe(addr):
            return False
        if line in self._prefetch_queue:
            return False
        if len(self._prefetch_queue) >= self.config.prefetch_queue_entries:
            self.prefetches_dropped += 1
            return False
        self._prefetch_queue.append(line)
        return True

    def tick_prefetch(self, cycle: int) -> tuple[int, int] | None:
        """Issue at most one queued prefetch this cycle.

        Returns ``(line_addr, ready_cycle)`` for the issued prefetch, or
        None when the queue is empty.
        """
        if not self._prefetch_queue:
            return None
        line = self._prefetch_queue.pop(0)
        addr = line * self.config.l1i.line_size
        if self.l1i.probe(addr):
            return addr, cycle  # arrived in the meantime
        self.prefetches_issued += 1
        fill = self._fill_latency_below_l1i(addr, cycle)
        _, ready = self.l1i.access(addr, cycle, fill)
        # Do not let the prefetch inflate demand-miss statistics.
        self.l1i.misses -= 1
        return addr, ready

    @property
    def prefetch_queue_occupancy(self) -> int:
        return len(self._prefetch_queue)

    def __repr__(self) -> str:
        return "MemoryHierarchy(L1I→L2→LLC→DRAM)"
