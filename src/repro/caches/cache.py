"""Generic set-associative cache level with MSHR miss tracking.

The timing interface is *ready-cycle* based: an access at cycle ``c``
returns the cycle at which the data is available.  Misses to the same line
merge into one in-flight MSHR entry (secondary misses inherit the primary's
ready cycle), and a full MSHR back-pressures new misses until a slot frees —
the behaviour the paper's µ-op-cache MSHR and L1I MSHR exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    hit_latency: int = 1
    mshr_entries: int = 16

    @property
    def n_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_size)
        if sets < 1:
            raise ValueError(f"{self.name}: geometry yields no sets")
        return sets


class SetAssocCache:
    """Tag store with true LRU (dict insertion order) and an MSHR.

    Addresses are *byte* addresses; lines are tracked at ``line_size``
    granularity.  The data payload is irrelevant for timing, so only tags
    are stored.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._sets: list[dict[int, None]] = [dict() for _ in range(self._n_sets)]
        # line -> fill-ready cycle for in-flight misses.
        self._mshr: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.mshr_merges = 0
        self.mshr_stalls = 0
        #: Optional callback invoked with the evicted line number — used to
        #: maintain inclusivity of structures shadowing this cache (the
        #: L1I-inclusive µ-op cache of paper Section IV-G-2).
        self.on_evict = None
        #: Optional golden reference model
        #: (repro.verify.oracles.RefSetAssocCache) kept in lockstep when
        #: the sim sanitizer is enabled; must stay content-identical.
        self.shadow = None
        #: Hit/miss classification disagreements with the shadow oracle.
        self.shadow_mismatches = 0

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_size

    def _set_index(self, line: int) -> int:
        return line % self._n_sets

    def probe(self, addr: int) -> bool:
        """Tag check without any state change."""
        line = self.line_of(addr)
        return line in self._sets[self._set_index(line)]

    def touch(self, addr: int) -> bool:
        """Tag check that refreshes LRU on hit (no fill on miss)."""
        line = self.line_of(addr)
        entries = self._sets[self._set_index(line)]
        if line in entries:
            del entries[line]
            entries[line] = None
            return True
        return False

    def allocate(self, addr: int) -> None:
        """Install a line (evicting LRU if the set is full)."""
        line = self.line_of(addr)
        entries = self._sets[self._set_index(line)]
        if line in entries:
            del entries[line]
        elif len(entries) >= self.config.ways:
            victim = next(iter(entries))
            del entries[victim]
            if self.on_evict is not None:
                self.on_evict(victim)
        entries[line] = None

    def invalidate(self, addr: int) -> bool:
        line = self.line_of(addr)
        if self.shadow is not None:
            self.shadow.invalidate(line)
        entries = self._sets[self._set_index(line)]
        if line in entries:
            del entries[line]
            return True
        return False

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def access(self, addr: int, cycle: int, fill_latency: int) -> tuple[bool, int]:
        """One demand access at ``cycle``.

        On a hit the data is ready ``hit_latency`` later.  On a miss the
        line is fetched with ``fill_latency`` (supplied by the next level),
        merged with any in-flight miss for the same line, and allocated.
        Returns ``(hit, ready_cycle)``.
        """
        line = self.line_of(addr)
        self._drain_mshr(cycle)
        entries = self._sets[self._set_index(line)]
        # A line still in the MSHR was allocated but its fill has not
        # arrived: secondary misses merge and wait for the primary.
        if line in self._mshr:
            self.misses += 1
            self.mshr_merges += 1
            if self.shadow is not None:
                self.shadow.touch(line)  # merge = recency refresh only
            if line in entries:  # refresh LRU
                del entries[line]
                entries[line] = None
            return False, self._mshr[line]

        if line in entries:
            self.hits += 1
            if self.shadow is not None and not self.shadow.access(line):
                self.shadow_mismatches += 1
            del entries[line]
            entries[line] = None
            return True, cycle + self.config.hit_latency

        self.misses += 1
        if self.shadow is not None and self.shadow.access(line):
            self.shadow_mismatches += 1
        start = cycle
        if len(self._mshr) >= self.config.mshr_entries:
            # Back-pressure: the miss cannot start until a slot frees.
            self.mshr_stalls += 1
            start = max(start, min(self._mshr.values()))
        ready = start + self.config.hit_latency + fill_latency
        self._mshr[line] = ready
        self.allocate(addr)
        return False, ready

    def _drain_mshr(self, cycle: int) -> None:
        if not self._mshr:
            return
        done = [line for line, ready in self._mshr.items() if ready <= cycle]
        for line in done:
            del self._mshr[line]

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: geometry bounds and oracle agreement."""
        name = self.config.name
        for index, entries in enumerate(self._sets):
            assert len(entries) <= self.config.ways, (
                f"{name} set {index} holds {len(entries)} lines "
                f"> {self.config.ways} ways"
            )
            for line in entries:
                assert line % self._n_sets == index, (
                    f"{name} line {line} stored in set {index}, "
                    f"belongs in {line % self._n_sets}"
                )
        if self.shadow is not None:
            assert self.shadow_mismatches == 0, (
                f"{name}: {self.shadow_mismatches} hit/miss disagreements "
                f"with the reference cache oracle"
            )
            assert self._sets == self.shadow.sets, (
                f"{name}: contents diverged from the reference cache oracle"
            )

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def __repr__(self) -> str:
        kb = self.config.size_bytes / 1024
        return f"SetAssocCache({self.config.name}, {kb:.0f}KB, {self.config.ways}-way)"
