"""The µ-op cache: storage, entry building, and prefetch provenance.

Geometry follows the paper's baseline (Table II): 4Kops as 64 sets × 8 ways
× 8 µ-ops per entry, one entry covering (part of) a 32B region, 1-cycle
hit, LRU, 2 ports with even/odd set-interleaved tag banks.

Entries are built by :class:`UopEntryBuilder` as instructions decode,
terminating on the rules of Section II: (1) a predicted-taken branch,
(2) crossing the 32B region boundary, (3) reaching 8 µ-ops, and (4) a
third branch (two branch-target fields per entry).  An entry is keyed by
its *start PC*: the frontend looks up the µ-op cache with the next fetch
address, and streaming continues entry-to-entry while starts line up.

For UCP, entries remember whether a prefetch inserted them and whether
they have been used since — the raw data of the paper's prefetch-accuracy
and late-usefulness numbers (Section VI-D, Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import StatBlock

#: Bytes of code one µ-op cache entry may span.
REGION_BYTES = 32


@dataclass(frozen=True)
class UopCacheConfig:
    n_sets: int = 64
    ways: int = 8
    uops_per_entry: int = 8
    max_branches_per_entry: int = 2
    hit_latency: int = 1
    n_banks: int = 2
    #: CLASP-style relaxation (Kotra & Kalamatianos, MICRO'20 — paper
    #: Section VII-E): entries are no longer terminated at 32B region
    #: boundaries, reducing fragmentation at the cost of wider entries.
    clasp: bool = False
    #: Keep the µ-op cache included in the L1I: evicting an L1I line
    #: invalidates the entries it covers.  The paper argues against this
    #: for a physically tagged µ-op cache (it caps the cached code at the
    #: L1I size) and uses a non-inclusive design to maximise reach
    #: (Section IV-G-2); the knob exists for the ablation.
    l1i_inclusive: bool = False

    @property
    def capacity_uops(self) -> int:
        return self.n_sets * self.ways * self.uops_per_entry

    @property
    def storage_kb(self) -> float:
        # One ARMv8-class µ-op ≈ 4B payload + entry overhead ≈ 1B/µ-op.
        return self.capacity_uops * 5 / 1024


class UopCacheEntry:
    """One µ-op cache entry: a run of µ-ops starting at ``start_pc``."""

    __slots__ = ("start_pc", "n_uops", "end_pc", "next_pc", "from_prefetch", "used")

    def __init__(self, start_pc: int, n_uops: int, next_pc: int, from_prefetch: bool = False) -> None:
        self.start_pc = start_pc
        self.n_uops = n_uops
        self.end_pc = start_pc + 4 * (n_uops - 1)  # pc of the last µ-op
        #: PC the stream continues at after this entry (fall-through or the
        #: terminating taken-branch target at build time).
        self.next_pc = next_pc
        self.from_prefetch = from_prefetch
        self.used = False

    def __repr__(self) -> str:
        return f"UopCacheEntry({self.start_pc:#x}, {self.n_uops} uops)"


class UopCache:
    """Set-associative µ-op cache keyed by entry start PC."""

    def __init__(self, config: UopCacheConfig | None = None) -> None:
        self.config = config or UopCacheConfig()
        self._n_sets = self.config.n_sets
        self._sets: list[dict[int, UopCacheEntry]] = [dict() for _ in range(self._n_sets)]
        self.stats = StatBlock("uopcache")
        #: repro.observe event bus; None keeps every emit a pointer test.
        self.observer = None

    def _set_index(self, pc: int) -> int:
        return (pc // REGION_BYTES) % self._n_sets

    def bank_of(self, pc: int) -> int:
        """Tag bank (even/odd set interleaving) for port-conflict modelling."""
        return (pc // REGION_BYTES) % self.config.n_banks

    def lookup(self, pc: int) -> UopCacheEntry | None:
        """Demand lookup: refreshes LRU and marks the entry used."""
        entries = self._sets[self._set_index(pc)]
        entry = entries.get(pc)
        if entry is None:
            self.stats.add("lookup_misses")
            return None
        self.stats.add("lookup_hits")
        observer = self.observer
        if entry.from_prefetch and not entry.used:
            self.stats.add("prefetched_entries_used")
            if observer is not None:
                observer.emit("ucp_useful_fill", pc=pc, n_uops=entry.n_uops)
        if observer is not None:
            observer.emit("uop_hit", pc=pc, n_uops=entry.n_uops)
        entry.used = True
        del entries[pc]
        entries[pc] = entry
        return entry

    def probe(self, pc: int) -> bool:
        """Tag check with no side effects (UCP's pre-prefetch filter)."""
        return pc in self._sets[self._set_index(pc)]

    def insert(self, entry: UopCacheEntry) -> UopCacheEntry | None:
        """Install ``entry``; returns the evicted entry, if any."""
        entries = self._sets[self._set_index(entry.start_pc)]
        victim = None
        if entry.start_pc in entries:
            # Rebuild of an existing entry: replace in place (keep use bit).
            victim = entries.pop(entry.start_pc)
            entry.used = victim.used and not entry.from_prefetch
        elif len(entries) >= self.config.ways:
            oldest_key = next(iter(entries))
            victim = entries.pop(oldest_key)
            self.stats.add("evictions")
            if victim.from_prefetch and not victim.used:
                self.stats.add("prefetched_entries_evicted_unused")
            if self.observer is not None:
                self.observer.emit(
                    "uop_evict",
                    pc=victim.start_pc,
                    from_prefetch=victim.from_prefetch,
                    used=victim.used,
                )
        entries[entry.start_pc] = entry
        self.stats.add("insertions")
        if entry.from_prefetch:
            self.stats.add("prefetch_insertions")
        if self.observer is not None:
            self.observer.emit(
                "uop_fill",
                pc=entry.start_pc,
                n_uops=entry.n_uops,
                from_prefetch=entry.from_prefetch,
            )
        return victim

    def invalidate_line(self, line_addr: int, line_size: int = 64) -> int:
        """Invalidate every entry starting inside an evicted L1I line.

        Maintains L1I inclusivity (Section IV-G-2).  Entries are keyed by
        start PC, and a 64B line spans ``line_size / REGION_BYTES``
        consecutive region-indexed sets, so only those sets are searched.
        Returns the number of entries invalidated.
        """
        start = line_addr - line_addr % line_size
        end = start + line_size
        removed = 0
        for region_start in range(start, end, REGION_BYTES):
            entries = self._sets[self._set_index(region_start)]
            victims = [pc for pc in entries if start <= pc < end]
            for pc in victims:
                del entries[pc]
                removed += 1
        if removed:
            self.stats.add("inclusive_invalidations", removed)
        return removed

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def check_invariants(self) -> None:
        """Sim-sanitizer hook: geometry, set mapping and entry shape."""
        config = self.config
        occupancy = 0
        for index, entries in enumerate(self._sets):
            assert len(entries) <= config.ways, (
                f"uop cache set {index} holds {len(entries)} entries "
                f"> {config.ways} ways"
            )
            occupancy += len(entries)
            for pc, entry in entries.items():
                assert pc == entry.start_pc, (
                    f"uop cache entry keyed by {pc:#x} claims start "
                    f"{entry.start_pc:#x}"
                )
                assert self._set_index(pc) == index, (
                    f"uop cache entry {pc:#x} stored in set {index}, "
                    f"belongs in {self._set_index(pc)}"
                )
                assert 1 <= entry.n_uops <= config.uops_per_entry, (
                    f"uop cache entry {pc:#x} has {entry.n_uops} uops "
                    f"outside [1, {config.uops_per_entry}]"
                )
                if not config.clasp:
                    region_end = (pc // REGION_BYTES + 1) * REGION_BYTES
                    assert entry.end_pc < region_end, (
                        f"non-CLASP entry {pc:#x}..{entry.end_pc:#x} "
                        f"crosses the 32B region ending at {region_end:#x}"
                    )
        capacity = config.n_sets * config.ways
        assert occupancy <= capacity, (
            f"uop cache occupancy {occupancy} > capacity {capacity} entries"
        )

    @property
    def hit_rate(self) -> float:
        total = self.stats["lookup_hits"] + self.stats["lookup_misses"]
        if total == 0:
            return 0.0
        return self.stats["lookup_hits"] / total

    def __repr__(self) -> str:
        return (
            f"UopCache({self.config.n_sets}x{self.config.ways}, "
            f"{self.config.capacity_uops} uops)"
        )


class UopEntryBuilder:
    """Accumulates decoded µ-ops into µ-op cache entries.

    Feed it one decoded instruction at a time via :meth:`add`; it returns a
    finished :class:`UopCacheEntry` whenever a termination rule fires.  The
    builder is used both by the decode stage in build mode and by UCP's
    alternate decoders.
    """

    def __init__(self, config: UopCacheConfig | None = None, from_prefetch: bool = False) -> None:
        self.config = config or UopCacheConfig()
        self.from_prefetch = from_prefetch
        self._start_pc: int | None = None
        self._count = 0
        self._branches = 0

    @property
    def open_entry_start(self) -> int | None:
        return self._start_pc

    def add(self, pc: int, is_branch: bool, taken: bool, next_pc: int) -> list[UopCacheEntry]:
        """Append one decoded µ-op; returns any entries that completed.

        ``taken`` reflects the *predicted* direction at build time (the
        paper terminates entries on predicted-taken branches).  Up to two
        entries can close on one call (a discontinuity closes the old entry
        and the new µ-op may immediately close its own).
        """
        completed: list[UopCacheEntry] = []

        if self._start_pc is not None and pc != self._start_pc + 4 * self._count:
            # Discontinuity (redirect): close what we have at the break.
            entry = self.flush(next_pc=pc)
            if entry is not None:
                completed.append(entry)

        if is_branch and self._start_pc is not None and (
            self._branches >= self.config.max_branches_per_entry
        ):
            # Rule 4: a third branch starts a new entry in another way of
            # the same set (it covers the same 32B region).
            entry = self.flush(next_pc=pc)
            if entry is not None:
                completed.append(entry)

        if self._start_pc is None:
            self._start_pc = pc
        if is_branch:
            self._branches += 1
        self._count += 1

        closes = (
            (is_branch and taken)  # rule 1: predicted-taken branch
            or self._count >= self.config.uops_per_entry  # rule 3: 8 µ-ops
        )
        if not self.config.clasp:
            # Rule 2: the next µ-op would cross the 32B region boundary.
            region_end = (self._start_pc // REGION_BYTES + 1) * REGION_BYTES
            closes = closes or pc + 4 >= region_end
        if closes:
            entry = self.flush(next_pc=next_pc)
            if entry is not None:
                completed.append(entry)
        return completed

    def flush(self, next_pc: int = 0) -> UopCacheEntry | None:
        """Close the open entry (on redirects/flushes); None if empty."""
        if self._start_pc is None or self._count == 0:
            self._start_pc = None
            return None
        entry = UopCacheEntry(
            self._start_pc, self._count, next_pc, from_prefetch=self.from_prefetch
        )
        self._start_pc = None
        self._count = 0
        self._branches = 0
        return entry
