"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``workloads``
    List the built-in workload suite with footprint statistics.
``simulate WORKLOAD``
    Run one simulation and print a result report.  Flags select the
    configuration: ``--ucp`` (and its variants), ``--no-uop-cache``,
    ``--ideal-uop-cache``, ``--prefetcher``, ``--mrc``.
``profile WORKLOAD``
    Simulate once with component-level wall-time profiling
    (:mod:`repro.analysis.profile`): per-component seconds summing to
    the run's wall time, simulation throughput, idle-skip telemetry.
    Accepts the same configuration flags as ``simulate``, plus
    ``--json FILE`` to dump the report and ``--no-skip`` to profile
    with idle-cycle skipping disabled.
``trace WORKLOAD``
    Simulate once with the :mod:`repro.observe` event bus on and write
    the pipeline trace to disk — ``--format perfetto`` (default; open in
    https://ui.perfetto.dev) or ``--format jsonl``.  Prints the
    stall-cycle taxonomy afterwards.  Bare output filenames land in
    ``$REPRO_BENCH_OUT`` when it is set.
``metrics WORKLOAD``
    Simulate once with interval metrics sampling (``--interval N``
    cycles) and print the IPC / hit-rate / MPKI time-series plus the
    stall-cycle taxonomy; ``--json FILE`` dumps both.
``experiment NAME``
    Run one paper experiment (``fig02`` … ``fig16``, ``taba``) and print
    its table; ``--full`` uses the whole suite, ``--jobs N`` sets the
    parallel engine's worker count, ``--stats`` prints engine throughput.
``verify``
    Run the differential-oracle and invariant-sanitizer suite
    (:mod:`repro.verify`): clean-model sweep against the commit-stream
    oracle, or ``--inject FAULT`` to prove a deliberate bug is caught
    (``--inject all`` for the whole registry, ``--list-faults`` to see it).
``cache stats|clear|verify|prune|snapshot``
    Inspect, wipe, integrity-check, LRU-evict, or snapshot-index the
    simulation result cache (``.simcache/`` or ``REPRO_SIM_CACHE_DIR``).
    ``stats`` also reports process-lifetime hit/miss/eviction rates when
    ``REPRO_SIM_TELEMETRY`` is on, and takes ``--json``; ``verify``
    exits non-zero whenever corrupt entries are found; ``prune``
    enforces ``--max-bytes``/``--max-entries`` bounds.
``serve``
    Run the asyncio experiment server (:mod:`repro.serve`): NDJSON
    requests over a local TCP socket, single-flight deduplication across
    clients, sharded worker pools, streamed progress events.
    ``--metrics-port N`` additionally serves the telemetry registry as
    Prometheus text on ``http://HOST:N/metrics`` (and JSON on
    ``/metrics.json``) when ``REPRO_SIM_TELEMETRY=1``.
``top``
    Live terminal dashboard over a running server's ``status`` verb:
    scheduler counters, queue/shard health, cache state, and the
    telemetry metric families (``--once`` prints a single frame,
    ``--json`` dumps the raw status).
``ingest inspect|convert|characterize``
    The real-trace frontend (:mod:`repro.isa.ingest`).  ``inspect FILE``
    detects the container format (ChampSim / CVP-1 / RISC-V / text /
    npz, optionally gz/xz-wrapped), reads it, and prints the
    normalization report plus footprint statistics without writing
    anything.  ``convert FILE --name NAME`` normalises the trace and
    registers it in the trace store (``.simtraces/`` or
    ``REPRO_TRACE_DIR``), after which NAME works everywhere a suite
    workload does — ``simulate``, ``metrics``, experiments, the server —
    with result-cache keys tied to the trace's content digest.
    ``characterize [WORKLOAD...]`` prints the Section III-A table
    (footprint, branch mix, baseline IPC/hit-rate/MPKI) for suite and
    ingested workloads; ``--json FILE`` dumps the rows.
``export WORKLOAD FILE``
    Materialise a workload trace to ``.npz`` (binary), ``.txt`` (text),
    ``.champsim``/``.bin`` (ChampSim), ``.cvp`` (CVP-1) or ``.rv``
    (RISC-V stream); ``.gz``/``.xz`` wrapping inferred from the name.
``lint [PATHS...]``
    Run the simulator-aware static-analysis pass (:mod:`repro.lint`)
    over ``src/`` (or the given paths): determinism, hook-gating, and
    cache-contract rules SIM001–SIM007.  ``--json`` emits the
    machine-readable report, ``--explain SIMxxx`` prints a rule's
    rationale with bad/good examples, ``--list-rules`` shows the
    catalogue, and ``--write-schema`` refreshes the cache-schema
    snapshot after a reviewed payload change.  Exit codes: 0 clean,
    1 findings, 2 internal error.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import SimConfig
from repro.core.configs import config_from_spec
from repro.workloads import SUITE, load_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Alternate Path u-op Cache Prefetching (ISCA 2024) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the built-in workload suite")

    sim = commands.add_parser("simulate", help="simulate one workload")
    _add_config_flags(sim)
    sim.add_argument(
        "--check",
        action="store_true",
        help="run with per-cycle invariant checks (as REPRO_SIM_CHECK=1)",
    )
    sim.add_argument(
        "--trace",
        action="store_true",
        help="run with the observe event bus on (as REPRO_SIM_TRACE=1) "
        "and print the stall-cycle taxonomy after the report",
    )

    trace = commands.add_parser(
        "trace", help="simulate once and write a pipeline event trace"
    )
    _add_config_flags(trace)
    trace.add_argument(
        "--format",
        choices=["perfetto", "jsonl"],
        default="perfetto",
        help="trace file format (default: perfetto, for ui.perfetto.dev)",
    )
    trace.add_argument(
        "--output",
        metavar="FILE",
        help="output path (default: <workload>.trace.json / .jsonl; bare "
        "names land in $REPRO_BENCH_OUT when set)",
    )
    trace.add_argument(
        "--interval",
        type=int,
        metavar="N",
        help="interval-metrics window in cycles (0 disables counter tracks)",
    )
    trace.add_argument(
        "--check",
        action="store_true",
        help="also arm the sim sanitizer (enforces the taxonomy partition)",
    )

    metrics = commands.add_parser(
        "metrics", help="simulate once and print interval metrics + taxonomy"
    )
    _add_config_flags(metrics)
    metrics.add_argument(
        "--interval",
        type=int,
        metavar="N",
        help="sampling window in cycles (default: REPRO_SIM_INTERVAL or 1024)",
    )
    metrics.add_argument(
        "--json", metavar="FILE", help="also write samples + taxonomy as JSON"
    )

    profile = commands.add_parser(
        "profile", help="simulate once with component-level wall-time profiling"
    )
    _add_config_flags(profile)
    profile.add_argument(
        "--json", metavar="FILE", help="also write the report as JSON to FILE"
    )
    profile.add_argument(
        "--no-skip",
        action="store_true",
        help="profile with idle-cycle skipping disabled",
    )

    verify = commands.add_parser(
        "verify", help="run the differential oracle / sim-sanitizer suite"
    )
    verify.add_argument(
        "--inject",
        metavar="FAULT",
        help="inject a deliberate bug and prove the sanitizer catches it "
        "('all' runs the whole fault registry)",
    )
    verify.add_argument(
        "--list-faults", action="store_true", help="list injectable faults"
    )
    verify.add_argument(
        "--instructions",
        type=int,
        default=4_000,
        help="trace length for the clean-model sweep",
    )

    experiment = commands.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name")
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="parallel simulation workers (default: REPRO_SIM_JOBS or CPU count)",
    )
    experiment.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="run on a custom workload set (suite or ingested names) "
        "instead of the quick/full scale",
    )
    experiment.add_argument(
        "--instructions",
        type=int,
        metavar="N",
        help="trace length for a custom scale (default: the scale's own)",
    )

    cache = commands.add_parser("cache", help="manage the simulation result cache")
    cache_actions = cache.add_subparsers(dest="cache_action", required=True)
    cache_stats_cmd = cache_actions.add_parser(
        "stats", help="show cache size, location, and lifetime hit rates"
    )
    cache_stats_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as JSON (includes the telemetry section)",
    )
    cache_actions.add_parser("clear", help="delete all cached results")
    cache_verify = cache_actions.add_parser(
        "verify", help="integrity-check every cached entry"
    )
    cache_verify.add_argument(
        "--fix", action="store_true", help="delete corrupt entries"
    )
    cache_prune = cache_actions.add_parser(
        "prune", help="evict LRU entries until the cache fits a bound"
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="byte bound (default: REPRO_SIM_CACHE_MAX_BYTES)",
    )
    cache_prune.add_argument(
        "--max-entries",
        type=int,
        metavar="N",
        help="entry bound (default: REPRO_SIM_CACHE_MAX_ENTRIES)",
    )
    cache_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    cache_actions.add_parser(
        "snapshot", help="write the warm-start index snapshot"
    )

    serve = commands.add_parser(
        "serve", help="run the asyncio experiment server (NDJSON over TCP)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = pick a free port and print it)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="worker shards (default: REPRO_SERVE_SHARDS or a core heuristic)",
    )
    serve.add_argument(
        "--mode",
        choices=["process", "thread"],
        default="process",
        help="worker isolation (thread mode is for tests: fast, uncontained)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        metavar="SECONDS",
        help="per-job timeout (default: REPRO_SIM_JOB_TIMEOUT or none)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        metavar="N",
        help="refuse new requests past this queue depth "
        "(default: REPRO_SERVE_MAX_PENDING or 1024)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        metavar="N",
        help="also expose the telemetry registry over HTTP on this port "
        "(/metrics Prometheus text, /metrics.json; 0 picks a free port)",
    )

    top = commands.add_parser(
        "top", help="live dashboard over a running experiment server"
    )
    top.add_argument(
        "--host", default="127.0.0.1", help="server address (default: 127.0.0.1)"
    )
    top.add_argument("--port", type=int, required=True, help="server port")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="dump the raw status message instead of rendering",
    )

    export = commands.add_parser("export", help="export a workload trace")
    export.add_argument("workload", metavar="WORKLOAD")
    export.add_argument("path")
    export.add_argument("--instructions", type=int, default=20_000)

    ingest = commands.add_parser(
        "ingest", help="inspect, convert, or characterize real traces"
    )
    ingest_actions = ingest.add_subparsers(dest="ingest_action", required=True)

    inspect = ingest_actions.add_parser(
        "inspect", help="detect and read a trace file, print its shape"
    )
    inspect.add_argument("file")
    inspect.add_argument(
        "--format",
        choices=["champsim", "cvp", "riscv", "text", "npz"],
        help="container format (default: infer from the file name)",
    )
    inspect.add_argument(
        "--instructions",
        type=int,
        metavar="N",
        help="read at most N instructions",
    )

    convert = ingest_actions.add_parser(
        "convert", help="normalise a trace file and register it as a workload"
    )
    convert.add_argument("file")
    convert.add_argument(
        "--name",
        required=True,
        help="workload name to register (letters, digits, '_', '-')",
    )
    convert.add_argument(
        "--format",
        choices=["champsim", "cvp", "riscv", "text", "npz"],
        help="container format (default: infer from the file name)",
    )
    convert.add_argument(
        "--instructions",
        type=int,
        metavar="N",
        help="ingest at most N instructions",
    )

    characterize = ingest_actions.add_parser(
        "characterize",
        help="print footprint / branch-mix / baseline-MPKI rows",
    )
    characterize.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="workload names, suite or ingested (default: every ingested "
        "trace, or the quick scale when none are registered)",
    )
    characterize.add_argument("--instructions", type=int, default=20_000)
    characterize.add_argument(
        "--no-simulate",
        action="store_true",
        help="skip the baseline simulation columns (trace-only statistics)",
    )
    characterize.add_argument(
        "--json", metavar="FILE", help="also write the rows as JSON"
    )

    lint = commands.add_parser(
        "lint", help="run the simulator-aware static-analysis pass"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the machine-readable JSON report"
    )
    lint.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's rationale and examples (e.g. SIM004) and exit",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue and exit"
    )
    lint.add_argument(
        "--write-schema",
        action="store_true",
        help="refresh the committed cache-schema snapshot from the sources",
    )
    lint.add_argument(
        "--callgraph-out",
        metavar="FILE",
        help="write the interprocedural call-graph/effects artifact (JSON)",
    )
    return parser


def _add_config_flags(sub: argparse.ArgumentParser) -> None:
    """Workload + configuration flags shared by ``simulate`` and ``profile``."""
    # No argparse choices: names resolve against the suite *and* the
    # ingested-trace store at run time (see repro.workloads.suite).
    sub.add_argument("workload", metavar="WORKLOAD")
    sub.add_argument("--instructions", type=int, default=20_000)
    group = sub.add_mutually_exclusive_group()
    group.add_argument("--no-uop-cache", action="store_true")
    group.add_argument("--ideal-uop-cache", action="store_true")
    sub.add_argument("--ucp", action="store_true", help="enable UCP")
    sub.add_argument(
        "--ucp-variant",
        choices=["noind", "till-l1i", "shared-decoders", "ideal-btb", "tage-conf"],
        help="UCP flavour (implies --ucp)",
    )
    sub.add_argument("--stop-threshold", type=int, default=500)
    sub.add_argument(
        "--prefetcher",
        choices=["next_line", "fnl_mma", "fnl_mma++", "djolt", "ep", "ep++"],
    )
    sub.add_argument("--mrc", type=int, metavar="ENTRIES")
    sub.add_argument("--uop-kops", type=int, choices=[4, 8, 16, 32, 64])


def _config_from_args(args: argparse.Namespace) -> SimConfig:
    """Build the :class:`SimConfig` selected by the shared flags.

    Routed through :func:`repro.core.configs.config_from_spec` — the same
    normalizer the experiment server uses — so a CLI invocation and a
    served request spelling the same options share one cache key.
    """
    spec: dict[str, object] = {
        "no_uop_cache": bool(args.no_uop_cache),
        "ideal_uop_cache": bool(args.ideal_uop_cache),
        "ucp": bool(args.ucp),
        "stop_threshold": args.stop_threshold,
    }
    if args.uop_kops:
        spec["uop_kops"] = args.uop_kops
    if args.prefetcher:
        spec["prefetcher"] = args.prefetcher
    if args.mrc:
        spec["mrc"] = args.mrc
    if args.ucp_variant:
        spec["ucp_variant"] = args.ucp_variant
    return config_from_spec(spec)


def _simulate(args: argparse.Namespace) -> int:
    from repro.core.kernel import KernelSimulator, kernel_enabled
    from repro.core.pipeline import Simulator

    config = _config_from_args(args)
    trace = load_workload(args.workload, args.instructions).trace
    # The kernel degrades to the interpreter on its own when --check or
    # --trace activates the sanitizer/observer; REPRO_SIM_KERNEL=0 forces
    # the interpreter outright.
    sim_cls = KernelSimulator if kernel_enabled() else Simulator
    sim = sim_cls(
        trace,
        config,
        check=True if args.check else None,
        observe=True if args.trace else None,
    )
    result = sim.run()
    print(f"workload            {args.workload} ({args.instructions} instructions)")
    print(f"IPC                 {result.ipc:.4f}")
    print(f"cycles              {result.cycles}")
    print(f"u-op cache hit rate {result.uop_hit_rate:.1f}%")
    print(f"mode switches PKI   {result.switch_pki:.2f}")
    print(f"conditional MPKI    {result.cond_mpki:.2f}")
    if config.ucp.enabled:
        window = result.window
        print(f"UCP walks           {window.get('ucp_walks_started', 0)}")
        print(f"UCP entries         {window.get('ucp_entries_prefetched', 0)}")
        print(f"prefetch accuracy   {result.prefetch_accuracy:.1f}%")
    if sim.observer is not None:
        print()
        print(sim.observer.taxonomy.render())
    return 0


def _trace(args: argparse.Namespace) -> int:
    from repro.common.output import resolve_output_path
    from repro.core.pipeline import Simulator
    from repro.observe import JsonlSink, PerfettoSink

    config = _config_from_args(args)
    trace = load_workload(args.workload, args.instructions).trace
    sim = Simulator(
        trace,
        config,
        check=True if args.check else None,
        observe=True,
        interval=args.interval,
    )
    result = sim.run()
    observer = sim.observer

    suffix = ".trace.json" if args.format == "perfetto" else ".jsonl"
    path = resolve_output_path(args.output or f"{args.workload}{suffix}")
    if args.format == "perfetto":
        written = PerfettoSink(path).write(observer, intervals=result.intervals)
        print(f"wrote {written} trace events to {path} (open in ui.perfetto.dev)")
    else:
        written = JsonlSink(path).write(observer, result=result)
        print(f"wrote {written} trace events to {path}")
    print()
    print(observer.taxonomy.render())
    return 0


def _metrics(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.common.output import resolve_output_path
    from repro.core.kernel import KernelSimulator, kernel_enabled
    from repro.core.pipeline import Simulator
    from repro.observe.metrics import DEFAULT_INTERVAL

    config = _config_from_args(args)
    trace = load_workload(args.workload, args.instructions).trace
    interval = args.interval if args.interval is not None else None
    # Kernel-aware on purpose: interval metrics arm the observer, which
    # forces the interpreter — surface that fallback instead of hiding it.
    sim_cls = KernelSimulator if kernel_enabled() else Simulator
    sim = sim_cls(trace, config, observe=True, interval=interval)
    result = sim.run()
    if isinstance(sim, KernelSimulator) and not sim.kernel_active:
        kernel_state = f"interpreter ({sim.kernel_fallback_reason})"
    elif isinstance(sim, KernelSimulator):
        kernel_state = "replay kernel"
    else:
        kernel_state = "interpreter (REPRO_SIM_KERNEL=0)"
    print(f"engine: {kernel_state}")
    print()

    samples = result.intervals
    window = args.interval if args.interval else DEFAULT_INTERVAL
    rows = [
        (
            sample["cycle"],
            sample["instructions"],
            f"{sample['ipc']:.3f}",
            f"{sample['uop_hit_rate']:.1f}%",
            f"{sample['cond_mpki']:.2f}",
            f"{sample['ucp_accuracy']:.1f}%",
        )
        for sample in samples
    ]
    print(
        format_table(
            f"{args.workload}: interval metrics (every {window} cycles)",
            ["cycle", "insts", "IPC", "uop hit", "MPKI", "UCP acc"],
            rows,
        )
    )
    print()
    print(sim.observer.taxonomy.render())
    if args.json:
        import json

        path = resolve_output_path(args.json)
        from repro.analysis.characterize import trace_profile

        payload = {
            "workload": args.workload,
            "instructions": args.instructions,
            "engine": kernel_state,
            "intervals": samples,
            "taxonomy": sim.observer.taxonomy.as_dict(),
            "characterization": trace_profile(trace),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {path}")
    return 0


def _profile(args: argparse.Namespace) -> int:
    from repro.analysis.profile import profile_run

    config = _config_from_args(args)
    trace = load_workload(args.workload, args.instructions).trace
    report = profile_run(  # lint-ok: SIM002 invoking the profiler is this command's purpose
        trace, config, idle_skip=False if args.no_skip else None
    )
    print(report.render())
    if args.json:
        from repro.common.output import resolve_output_path

        path = resolve_output_path(args.json)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"\nwrote {path}")
    return 0


def _workloads() -> int:
    from repro.analysis.tables import format_table

    rows = []
    for name in SUITE:
        spec = load_workload(name, 10_000)
        stats = spec.trace.stats()
        rows.append(
            (
                name,
                f"{stats.static_code_bytes / 1024:.0f}KB",
                stats.conditional_branches,
                f"{stats.conditional_taken_rate:.2f}",
            )
        )
    print(
        format_table(
            "Workload suite (10K-instruction sample)",
            ["name", "touched code", "cond branches", "taken rate"],
            rows,
        )
    )
    return 0


def _experiment(args: argparse.Namespace) -> int:
    from repro.experiments import FULL, QUICK
    from repro.experiments.common import Scale
    from repro.experiments.registry import run_experiment

    scale = FULL if args.full else QUICK
    if args.workloads or args.instructions:
        scale = Scale(
            "custom",
            tuple(args.workloads) if args.workloads else scale.workloads,
            args.instructions if args.instructions else scale.n_instructions,
        )
    try:
        _, rendered = run_experiment(args.name, scale, jobs=args.jobs)
    except KeyError as error:
        print(error.args[0])
        return 2
    print(rendered)
    return 0


def _verify(args: argparse.Namespace) -> int:
    from repro.verify.differential import run_verification
    from repro.verify.faults import FAULTS, run_all_faults, run_fault
    from repro.verify.invariants import SimCheckError
    from repro.verify.kernel_faults import (
        KERNEL_FAULTS,
        run_all_kernel_faults,
        run_kernel_fault,
    )
    from repro.verify.service_faults import (
        SERVICE_FAULTS,
        run_all_service_faults,
        run_service_fault,
    )

    if args.list_faults:
        for fault in FAULTS.values():
            print(f"{fault.name:20s} {fault.description}")
            print(f"{'':20s} expected: {', '.join(fault.expected_invariants)}")
        for service_fault in SERVICE_FAULTS.values():
            print(f"{service_fault.name:20s} {service_fault.description}")
            print(f"{'':20s} expected: error code {service_fault.expected_code}")
        for kernel_fault in KERNEL_FAULTS.values():
            print(f"{kernel_fault.name:20s} {kernel_fault.description}")
            print(
                f"{'':20s} expected: "
                f"{', '.join(kernel_fault.expected_invariants)}"
            )
        return 0

    if args.inject:
        results: list = []
        if args.inject == "all":
            results = (
                list(run_all_faults())
                + list(run_all_service_faults())
                + list(run_all_kernel_faults())
            )
        elif args.inject in FAULTS:
            results = [run_fault(args.inject)]
        elif args.inject in SERVICE_FAULTS:
            results = [run_service_fault(args.inject)]
        elif args.inject in KERNEL_FAULTS:
            results = [run_kernel_fault(args.inject)]
        else:
            print(
                f"unknown fault {args.inject!r} — see `repro verify --list-faults`"
            )
            return 2
        for outcome in results:
            print(outcome.render())
        missed = [outcome for outcome in results if not outcome.caught]
        print(
            f"{len(results) - len(missed)}/{len(results)} fault(s) caught"
        )
        return 1 if missed else 0

    try:
        report = run_verification(n_instructions=args.instructions)
    except SimCheckError as error:
        print(f"VERIFICATION FAILED: {error}")
        return 1
    print(report.render())
    return 0


def _cache(args: argparse.Namespace) -> int:
    from repro.analysis.runner import cache_stats, clear_disk_cache, verify_disk_cache

    if args.cache_action == "stats":
        stats = cache_stats()
        if args.json:
            import json

            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        bound = lambda v: "unbounded" if v is None else str(v)  # noqa: E731
        print(f"directory      {stats['directory']}")
        print(f"disk cache     {'enabled' if stats['disk_enabled'] else 'disabled'}")
        print(f"cache version  {stats['cache_version']}")
        print(f"disk entries   {stats['disk_entries']} (max {bound(stats['max_entries'])})")
        print(f"disk bytes     {stats['disk_bytes']} (max {bound(stats['max_bytes'])})")
        print(f"temp files     {stats['temp_files']}")
        print(f"memory entries {stats['memory_entries']}")
        snapshot = stats["snapshot_entries"]
        print(
            "snapshot       "
            + ("none" if snapshot is None else f"{snapshot} entries indexed")
        )
        lifetime = stats.get("telemetry")
        if lifetime is None:
            print("lifetime       (off — set REPRO_SIM_TELEMETRY=1 to track rates)")
        else:
            rate = lifetime["hit_rate"]
            print(
                "lifetime       "
                f"hit rate {'n/a' if rate is None else f'{rate * 100:.1f}%'} "
                f"(memory {lifetime['hits_memory']} + disk {lifetime['hits_disk']} "
                f"hits, {lifetime['misses']} misses), "
                f"{lifetime['stores']} stores, {lifetime['evictions']} evictions, "
                f"{lifetime['corrupt_dropped']} corrupt dropped"
            )
        return 0
    if args.cache_action == "clear":
        print(f"removed {clear_disk_cache()} cached result(s)")
        return 0
    if args.cache_action == "verify":
        report = verify_disk_cache(fix=args.fix)
        print(f"ok      {report['ok']}")
        print(f"corrupt {len(report['corrupt'])}")
        for name in report["corrupt"]:
            print(f"  {name}{'  (deleted)' if args.fix else ''}")
        # Any corrupt entry is a non-zero exit, --fix or not: scripts and
        # CI gate on "the cache was (found) bad", not "is bad now".
        return 1 if report["corrupt"] else 0
    if args.cache_action == "prune":
        from repro.serve.eviction import prune, resolve_max_bytes, resolve_max_entries

        max_bytes = resolve_max_bytes(args.max_bytes)
        max_entries = resolve_max_entries(args.max_entries)
        if max_bytes is None and max_entries is None:
            print(
                "cache prune: no bound given (use --max-bytes/--max-entries "
                "or REPRO_SIM_CACHE_MAX_BYTES/REPRO_SIM_CACHE_MAX_ENTRIES)",
                file=sys.stderr,
            )
            return 2
        report = prune(max_bytes, max_entries, dry_run=args.dry_run)
        print(report.render())
        return 0
    if args.cache_action == "snapshot":
        from repro.serve.snapshot import read_snapshot, write_snapshot

        path = write_snapshot()
        index = read_snapshot() or {}
        print(f"wrote {path} ({len(index)} entries indexed)")
        return 0
    raise AssertionError(f"unhandled cache action {args.cache_action}")


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ExperimentServer

    server = ExperimentServer(
        args.host,
        args.port,
        shards=args.shards,
        mode=args.mode,
        job_timeout=args.job_timeout,
        max_pending=args.max_pending,
        metrics_port=args.metrics_port,
    )

    async def _run() -> None:
        await server.start()
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nserver stopped")
    return 0


def _top(args: argparse.Namespace) -> int:
    from repro.observe.telemetry.top import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        once=args.once,
        as_json=args.json,
    )


def _export(args: argparse.Namespace) -> int:
    from repro.isa.ingest import detect_format
    from repro.isa.errors import TraceFormatError

    trace = load_workload(args.workload, args.instructions).trace
    try:
        fmt = detect_format(args.path)
    except TraceFormatError:
        fmt = "npz"
    if fmt == "text":
        from repro.isa.textio import dump_text

        dump_text(trace, args.path)
    elif fmt == "champsim":
        from repro.isa.champsim import dump_champsim

        dump_champsim(trace, args.path)
    elif fmt == "cvp":
        from repro.isa.cvp import dump_cvp

        dump_cvp(trace, args.path)
    elif fmt == "riscv":
        from repro.isa.riscv import dump_riscv

        dump_riscv(trace, args.path)
    else:
        trace.save(args.path)
    print(f"wrote {len(trace)} instructions to {args.path} ({fmt})")
    return 0


def _ingest(args: argparse.Namespace) -> int:
    from repro.isa.errors import TraceFormatError

    if args.ingest_action == "inspect":
        from repro.analysis.characterize import trace_profile
        from repro.isa.ingest import load_any

        try:
            result = load_any(
                args.file, fmt=args.format, max_instructions=args.instructions
            )
        except TraceFormatError as error:
            print(f"ingest: {error}", file=sys.stderr)
            return 1
        print(f"file           {args.file}")
        print(f"format         {result.format}")
        print(f"normalization  {result.report.render()}")
        for key, value in trace_profile(result.trace).items():
            print(f"{key:22s} {value}")
        return 0

    if args.ingest_action == "convert":
        from repro.isa.ingest import load_any
        from repro.workloads.store import ingest_trace, store_dir

        try:
            result = load_any(
                args.file,
                fmt=args.format,
                max_instructions=args.instructions,
                name=args.name,
            )
            meta = ingest_trace(
                result.trace, args.name, result.format, source_path=str(args.file)
            )
        except (TraceFormatError, ValueError) as error:
            print(f"ingest: {error}", file=sys.stderr)
            return 1
        print(f"registered     {meta.name} ({meta.instructions} instructions)")
        print(f"source         {args.file} ({result.format})")
        print(f"normalization  {result.report.render()}")
        print(f"digest         {meta.digest}")
        print(f"store          {store_dir()}")
        print(f"\nrun it with: repro simulate {meta.name}")
        return 0

    if args.ingest_action == "characterize":
        from repro.analysis.characterize import (
            characterize_many,
            format_characterization,
        )
        from repro.workloads.store import ingested_names

        names = args.workloads or ingested_names()
        if not names:
            from repro.experiments import QUICK

            names = list(QUICK.workloads)
        try:
            rows = characterize_many(
                names, args.instructions, simulate=not args.no_simulate
            )
        except (KeyError, TraceFormatError) as error:
            print(f"ingest: {error.args[0]}", file=sys.stderr)
            return 1
        print(format_characterization(rows))
        if args.json:
            import json

            from repro.common.output import resolve_output_path

            path = resolve_output_path(args.json)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump([row.as_dict() for row in rows], handle, indent=2)
                handle.write("\n")
            print(f"\nwrote {path}")
        return 0
    raise AssertionError(f"unhandled ingest action {args.ingest_action}")


def _lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (
        RULES,
        LintEngine,
        LintInternalError,
        render_json,
        render_text,
    )

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code].title}")
        return 0
    if args.explain:
        rule = RULES.get(args.explain.upper())
        if rule is None:
            print(
                f"unknown rule {args.explain!r}; known: {', '.join(sorted(RULES))}",
                file=sys.stderr,
            )
            return 2
        print(rule.explain())
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    engine = LintEngine()
    try:
        if args.write_schema:
            snapshot = engine.write_schema_snapshot(paths)
            print(
                f"wrote {engine.schema_path} "
                f"(cache_version {snapshot['cache_version']})"
            )
            return 0
        report = engine.lint_paths(paths)
    except LintInternalError as error:
        print(f"lint: internal error: {error}", file=sys.stderr)
        return 2
    if args.callgraph_out:
        import json as _json

        assert engine.analysis is not None  # built by lint_paths
        Path(args.callgraph_out).write_text(
            _json.dumps(engine.analysis.to_payload(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
    output = render_json(report) if args.json else render_text(report) + "\n"
    sys.stdout.write(output)
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "workloads":
            return _workloads()
        if args.command == "simulate":
            return _simulate(args)
        if args.command == "profile":
            return _profile(args)
        if args.command == "trace":
            return _trace(args)
        if args.command == "metrics":
            return _metrics(args)
        if args.command == "experiment":
            return _experiment(args)
        if args.command == "verify":
            return _verify(args)
        if args.command == "cache":
            return _cache(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "top":
            return _top(args)
        if args.command == "export":
            return _export(args)
        if args.command == "ingest":
            return _ingest(args)
        if args.command == "lint":
            return _lint(args)
    except KeyError as error:
        # Workload names resolve at run time (suite + ingested store);
        # an unknown name lands here with a choose-from message.
        print(error.args[0], file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
