"""ChampSim trace import.

The paper's artifact evaluates on CVP-1 traces converted to ChampSim
format.  This module reads that binary format — the ``input_instr``
record of ChampSim's tracereader — so real traces can be run through this
simulator when available:

.. code-block:: c

    typedef struct {
        unsigned long long ip;
        unsigned char is_branch;
        unsigned char branch_taken;
        unsigned char destination_registers[2];
        unsigned char source_registers[4];
        unsigned long long destination_memory[2];
        unsigned long long source_memory[4];
    } input_instr;   // 64 bytes

Branch *class* is not stored explicitly; like ChampSim's tracereader we
infer it from register usage on branch instructions (the writer encodes
the branch kind through which of IP/SP/flags registers are read/written)
and fall back to target-based inference.  Because this simulator is
4-byte-fixed-length, imported instruction streams are usable as long as
they come from a fixed-length ISA (e.g. the ARMv8 CVP-1 conversions);
variable-length streams import, but fall-through PCs are approximated as
``ip + 4``.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.isa.binio import TraceReader, open_for_write
from repro.isa.errors import TraceFormatError
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

#: struct layout of ChampSim's input_instr (little-endian, packed).
_RECORD = struct.Struct("<Q B B 2B 4B 2Q 4Q")
RECORD_BYTES = _RECORD.size  # 64

# Register identifiers used by the ChampSim tracer for branch inference.
REG_STACK_POINTER = 6
REG_FLAGS = 25
REG_INSTRUCTION_POINTER = 26

#: Addresses must fit the signed-int64 trace columns.
MAX_ADDRESS = (1 << 63) - 1


def _classify(
    reads_ip: bool,
    reads_sp: bool,
    writes_sp: bool,
    reads_flags: bool,
    reads_other: bool,
) -> BranchClass:
    """ChampSim tracereader's branch taxonomy from register usage
    (records reaching here are branches, i.e. they write the IP)."""
    if writes_sp and reads_sp and reads_ip:
        # Pushes a return address: a call.
        return BranchClass.CALL_INDIRECT if reads_other else BranchClass.CALL_DIRECT
    if reads_sp and writes_sp:
        return BranchClass.RETURN
    if reads_flags:
        return BranchClass.COND_DIRECT
    if reads_other:
        return BranchClass.INDIRECT
    return BranchClass.UNCOND_DIRECT


def load_champsim(
    path: str | Path,
    max_instructions: int | None = None,
    name: str | None = None,
    instruction_size: int = 4,
) -> Trace:
    """Read a ChampSim binary trace into a :class:`Trace`.

    ``instruction_size`` is used to synthesise not-taken fall-through
    targets and to align PCs (the fixed-length model requires 4-byte
    alignment, so PCs are truncated to the alignment grid).

    Raises :class:`~repro.isa.errors.TraceFormatError` on any malformed
    input: a trailing partial record, or a corrupt/truncated gzip or
    lzma envelope.
    """
    path = Path(path)
    pcs: list[int] = []
    classes: list[int] = []
    takens: list[bool] = []
    targets: list[int] = []

    with TraceReader(path) as reader:
        raw_next: bytes | None = None
        while max_instructions is None or len(pcs) < max_instructions:
            if raw_next is not None:
                raw, raw_next = raw_next, None
            else:
                maybe = reader.read_record(RECORD_BYTES, "input_instr record")
                if maybe is None:
                    break
                raw = maybe
            fields = _RECORD.unpack(raw)
            ip = fields[0] & ~(instruction_size - 1)
            if ip > MAX_ADDRESS:
                raise TraceFormatError(
                    f"ip {ip:#x} out of range",
                    path=str(path),
                    offset=reader.offset - RECORD_BYTES,
                )
            is_branch = bool(fields[1])
            taken = bool(fields[2])
            dst = fields[3:5]
            src = fields[5:9]

            if not is_branch:
                pcs.append(ip)
                classes.append(int(BranchClass.NOT_BRANCH))
                takens.append(False)
                targets.append(0)
                continue

            branch_class = _classify(
                reads_ip=REG_INSTRUCTION_POINTER in src,
                reads_sp=REG_STACK_POINTER in src,
                writes_sp=REG_STACK_POINTER in dst,
                reads_flags=REG_FLAGS in src,
                reads_other=any(
                    r not in (0, REG_STACK_POINTER, REG_FLAGS, REG_INSTRUCTION_POINTER)
                    for r in src
                ),
            )
            # The target is the next record's ip (ChampSim traces don't
            # store targets); peek ahead.
            raw_next = reader.read_record(RECORD_BYTES, "input_instr record")
            if raw_next is not None:
                next_ip = struct.unpack_from("<Q", raw_next)[0] & ~(instruction_size - 1)
                if next_ip > MAX_ADDRESS:
                    raise TraceFormatError(
                        f"ip {next_ip:#x} out of range",
                        path=str(path),
                        offset=reader.offset - RECORD_BYTES,
                    )
            else:
                next_ip = ip + instruction_size
                taken = False  # final record: force a consistent fall-through

            if branch_class is BranchClass.COND_DIRECT:
                effective_taken = taken and next_ip != ip + instruction_size
                pcs.append(ip)
                classes.append(int(branch_class))
                takens.append(effective_taken)
                targets.append(next_ip if effective_taken else 0)
            else:
                # Unconditional classes must be taken; their target is
                # wherever control actually went.
                pcs.append(ip)
                classes.append(int(branch_class))
                takens.append(True)
                targets.append(next_ip)

    import numpy as np

    return Trace(
        name or path.stem,
        np.array(pcs, dtype=np.int64),
        np.array(classes, dtype=np.uint8),
        np.array(takens, dtype=bool),
        np.array(targets, dtype=np.int64),
    )


def dump_champsim(trace: Trace, path: str | Path) -> None:
    """Write a :class:`Trace` in ChampSim binary format (for round-trips
    and for feeding this suite's synthetic workloads to ChampSim itself)."""
    path = Path(path)
    with open_for_write(path) as handle:
        for i in range(len(trace)):
            branch_class = BranchClass(int(trace.branch_classes[i]))
            dst = [0, 0]
            src = [0, 0, 0, 0]
            if branch_class.is_branch:
                dst[0] = REG_INSTRUCTION_POINTER
                if branch_class is BranchClass.COND_DIRECT:
                    src[0] = REG_FLAGS
                elif branch_class.is_call:
                    src[0] = REG_INSTRUCTION_POINTER
                    src[1] = REG_STACK_POINTER
                    dst[1] = REG_STACK_POINTER
                    if branch_class is BranchClass.CALL_INDIRECT:
                        src[2] = 1  # an "other" register
                elif branch_class.is_return:
                    src[0] = REG_STACK_POINTER
                    dst[1] = REG_STACK_POINTER
                elif branch_class is BranchClass.INDIRECT:
                    src[0] = 1
            record = _RECORD.pack(
                int(trace.pcs[i]),
                int(branch_class.is_branch),
                int(bool(trace.takens[i])),
                *dst,
                *src,
                0,
                0,
                0,
                0,
                0,
                0,
            )
            handle.write(record)
