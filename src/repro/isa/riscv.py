"""RISC-V instruction-stream import: predecode rv32/rv64 into a trace.

Real front-end studies often start from raw committed-instruction
streams — (pc, instruction-word) pairs from a core's trace port or an
ISA simulator — rather than from a pre-classified branch trace.  This
module predecodes such a stream: branch *class* and direct-branch
*targets* come from the instruction encoding, takenness comes from the
recorded dynamic path (the next record's PC).

Container format (``.rv``, optionally ``.gz``/``.xz`` wrapped)::

    magic   : 4 bytes  b"RVT1"
    xlen    : uint8    (32 or 64)
    flags   : uint8    (reserved, 0)
    reserved: uint16   (0)
    count   : uint64   (number of records)
    records : count x { pc: uint64 LE, insn: uint32 LE }

The header's ``count`` is validated against the actual payload — a
header claiming multi-GB record counts over a small file raises
:class:`~repro.isa.errors.TraceFormatError` instead of allocating, and a
zero-length or magic-less file is rejected up front.

Predecode covers the RV32I/RV64I control-transfer encodings:

* ``BRANCH`` (BEQ/BNE/BLT/...) → ``COND_DIRECT``, target = pc + B-imm;
* ``JAL``  → ``CALL_DIRECT`` when rd is a link register (x1/x5), else
  ``UNCOND_DIRECT``; target = pc + J-imm;
* ``JALR`` → ``CALL_INDIRECT`` when rd is a link register; ``RETURN``
  when rd=x0 and rs1 is a link register (the standard ``ret`` idiom);
  otherwise ``INDIRECT``.  Targets come from the dynamic stream.

Compressed (RVC, 16-bit) encodings are rejected: the simulator models a
fixed 4-byte ISA (paper Section III-A), so streams must be compiled
without the C extension.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.isa.binio import TraceReader, open_for_write
from repro.isa.errors import TraceFormatError
from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass
from repro.isa.trace import Trace

__all__ = [
    "MAGIC",
    "RECORD_BYTES",
    "decode_branch",
    "load_riscv",
    "dump_riscv",
]

MAGIC = b"RVT1"
HEADER = struct.Struct("<4s B B H Q")
HEADER_BYTES = HEADER.size  # 16
_RECORD = struct.Struct("<Q I")
RECORD_BYTES = _RECORD.size  # 12

#: RISC-V link registers: x1 (ra) and x5 (t0, the alternate link reg).
LINK_REGISTERS = (1, 5)

_OPCODE_BRANCH = 0b1100011
_OPCODE_JAL = 0b1101111
_OPCODE_JALR = 0b1100111

#: Addresses must fit the signed-int64 trace columns.
MAX_ADDRESS = (1 << 63) - 1


def _sign_extend(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def _b_immediate(insn: int) -> int:
    """B-type immediate: imm[12|10:5] in bits 31:25, imm[4:1|11] in 11:7."""
    imm = (
        (((insn >> 31) & 0x1) << 12)
        | (((insn >> 7) & 0x1) << 11)
        | (((insn >> 25) & 0x3F) << 5)
        | (((insn >> 8) & 0xF) << 1)
    )
    return _sign_extend(imm, 13)


def _j_immediate(insn: int) -> int:
    """J-type immediate: imm[20|10:1|11|19:12] packed in bits 31:12."""
    imm = (
        (((insn >> 31) & 0x1) << 20)
        | (((insn >> 12) & 0xFF) << 12)
        | (((insn >> 20) & 0x1) << 11)
        | (((insn >> 21) & 0x3FF) << 1)
    )
    return _sign_extend(imm, 21)


def _encode_b_immediate(offset: int) -> int:
    imm = offset & 0x1FFF
    return (
        (((imm >> 12) & 0x1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 0x1) << 7)
    )


def _encode_j_immediate(offset: int) -> int:
    imm = offset & 0x1FFFFF
    return (
        (((imm >> 20) & 0x1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
    )


def decode_branch(pc: int, insn: int) -> tuple[BranchClass, int]:
    """Predecode one 32-bit instruction word.

    Returns ``(branch_class, static_target)``; the target is 0 for
    non-branches and for indirect transfers (whose targets only the
    dynamic stream knows).
    """
    opcode = insn & 0x7F
    if opcode == _OPCODE_BRANCH:
        return BranchClass.COND_DIRECT, pc + _b_immediate(insn)
    if opcode == _OPCODE_JAL:
        rd = (insn >> 7) & 0x1F
        target = pc + _j_immediate(insn)
        if rd in LINK_REGISTERS:
            return BranchClass.CALL_DIRECT, target
        return BranchClass.UNCOND_DIRECT, target
    if opcode == _OPCODE_JALR:
        rd = (insn >> 7) & 0x1F
        rs1 = (insn >> 15) & 0x1F
        if rd in LINK_REGISTERS:
            return BranchClass.CALL_INDIRECT, 0
        if rd == 0 and rs1 in LINK_REGISTERS:
            return BranchClass.RETURN, 0
        return BranchClass.INDIRECT, 0
    return BranchClass.NOT_BRANCH, 0


def load_riscv(
    path: str | Path,
    max_instructions: int | None = None,
    name: str | None = None,
) -> Trace:
    """Predecode an rv32/rv64 instruction stream into a raw :class:`Trace`.

    Branch takenness and indirect targets are recovered from the dynamic
    path: a control-transfer's actual destination is the next record's
    PC.  The result is *raw* — run it through
    :func:`repro.isa.normalize.normalize_trace` (or
    :func:`repro.isa.ingest.load_any`) before simulation.
    """
    path = Path(path)
    with TraceReader(path) as reader:
        header = reader.read_exact(HEADER_BYTES, "header")
        magic, xlen, flags, reserved, count = HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(
                f"bad magic {magic!r} (expected {MAGIC!r})", path=str(path), offset=0
            )
        if xlen not in (32, 64):
            raise TraceFormatError(f"unsupported xlen {xlen}", path=str(path), offset=4)
        if flags != 0 or reserved != 0:
            raise TraceFormatError(
                "reserved header fields are non-zero", path=str(path), offset=5
            )
        # Sanity-check the claimed record count before touching payload:
        # for an uncompressed file the container size is known exactly,
        # so a multi-GB-claiming header on a small file dies here.
        if path.suffix not in (".gz", ".xz"):
            payload = path.stat().st_size - HEADER_BYTES
            if payload != count * RECORD_BYTES:
                raise TraceFormatError(
                    f"header claims {count} records ({count * RECORD_BYTES} "
                    f"bytes) but the file carries {payload} payload bytes",
                    path=str(path),
                    offset=8,
                )

        limit = count if max_instructions is None else min(count, max_instructions)
        pcs: list[int] = []
        classes: list[int] = []
        takens: list[bool] = []
        targets: list[int] = []
        raw_pcs: list[int] = []
        raw_insns: list[int] = []

        while len(raw_pcs) < limit:
            record = reader.read_record(RECORD_BYTES, "instruction record")
            if record is None:
                raise TraceFormatError(
                    f"header claims {count} records but the stream ends "
                    f"after {len(raw_pcs)}",
                    path=str(path),
                    offset=reader.offset,
                )
            pc, insn = _RECORD.unpack(record)
            if pc > MAX_ADDRESS:
                raise TraceFormatError(
                    f"pc {pc:#x} out of range",
                    path=str(path),
                    offset=reader.offset - RECORD_BYTES,
                )
            if insn & 0x3 != 0x3:
                raise TraceFormatError(
                    f"compressed (RVC) encoding {insn:#010x} at pc {pc:#x}: "
                    "the fixed-4-byte model requires streams without the "
                    "C extension",
                    path=str(path),
                    offset=reader.offset - RECORD_BYTES,
                )
            raw_pcs.append(pc)
            raw_insns.append(insn)

    for index, (pc, insn) in enumerate(zip(raw_pcs, raw_insns)):
        branch_class, static_target = decode_branch(pc, insn)
        next_pc = raw_pcs[index + 1] if index + 1 < len(raw_pcs) else None
        taken = False
        target = 0
        if branch_class is BranchClass.COND_DIRECT:
            if next_pc is not None and next_pc != pc + INSTRUCTION_SIZE:
                taken = True
                target = static_target
        elif branch_class.is_branch:
            taken = True
            if branch_class in (BranchClass.UNCOND_DIRECT, BranchClass.CALL_DIRECT):
                target = static_target
            elif next_pc is not None:
                target = next_pc  # indirect: only the stream knows
            else:
                target = pc + INSTRUCTION_SIZE  # trailing indirect; normalize
        pcs.append(pc)
        classes.append(int(branch_class))
        takens.append(taken)
        targets.append(target)

    return Trace(
        name or path.stem,
        np.array(pcs, dtype=np.int64),
        np.array(classes, dtype=np.uint8),
        np.array(takens, dtype=bool),
        np.array(targets, dtype=np.int64),
    )


def _encode_entry(pc: int, branch_class: BranchClass, taken: bool, target: int) -> int:
    """Synthesise one rv instruction word for :func:`dump_riscv`."""
    if branch_class is BranchClass.NOT_BRANCH:
        return 0x00000013  # addi x0, x0, 0
    if branch_class is BranchClass.COND_DIRECT:
        # Not-taken conditionals have no recorded target; any in-range
        # even offset other than +4 round-trips as not-taken.
        offset = (target - pc) if taken else 8
        if not (-4096 <= offset < 4096) or offset % 2:
            raise TraceFormatError(
                f"conditional offset {offset} at pc {pc:#x} does not fit "
                "a B-type immediate"
            )
        # beq x5, x6, offset
        return _encode_b_immediate(offset) | (6 << 20) | (5 << 15) | _OPCODE_BRANCH
    if branch_class in (BranchClass.UNCOND_DIRECT, BranchClass.CALL_DIRECT):
        offset = target - pc
        if not (-(1 << 20) <= offset < (1 << 20)) or offset % 2:
            raise TraceFormatError(
                f"jump offset {offset} at pc {pc:#x} does not fit a "
                "J-type immediate"
            )
        rd = 1 if branch_class is BranchClass.CALL_DIRECT else 0
        return _encode_j_immediate(offset) | (rd << 7) | _OPCODE_JAL
    if branch_class is BranchClass.CALL_INDIRECT:
        return (6 << 15) | (1 << 7) | _OPCODE_JALR  # jalr x1, x6, 0
    if branch_class is BranchClass.RETURN:
        return (1 << 15) | (0 << 7) | _OPCODE_JALR  # jalr x0, x1, 0 (ret)
    return (6 << 15) | (0 << 7) | _OPCODE_JALR  # jalr x0, x6, 0


def dump_riscv(trace: Trace, path: str | Path, xlen: int = 64) -> None:
    """Write a :class:`Trace` as an rv instruction stream.

    Every entry is re-encoded as a real RV32I/RV64I instruction word
    (non-branches become NOPs); loading the result back and normalising
    reproduces the canonical trace.  Raises
    :class:`~repro.isa.errors.TraceFormatError` when a direct branch's
    offset does not fit its encoding's immediate range.
    """
    if xlen not in (32, 64):
        raise ValueError(f"xlen must be 32 or 64, not {xlen}")
    path = Path(path)
    with open_for_write(path) as handle:
        handle.write(HEADER.pack(MAGIC, xlen, 0, 0, len(trace)))
        for i in range(len(trace)):
            insn = _encode_entry(
                int(trace.pcs[i]),
                BranchClass(int(trace.branch_classes[i])),
                bool(trace.takens[i]),
                int(trace.targets[i]),
            )
            handle.write(_RECORD.pack(int(trace.pcs[i]), insn))
