"""Typed errors for trace import.

Every binary/text trace reader in :mod:`repro.isa` maps *any* malformed
input — truncated records, corrupt gzip/lzma envelopes, implausible
headers, undecodable instruction words — to one exception type,
:class:`TraceFormatError`.  Callers (the ``repro ingest`` CLI, the
workload store, tests) catch exactly that; ``struct.error``,
``IndexError``, ``EOFError`` or codec-specific exceptions escaping a
reader are bugs, and the fuzz suite (``tests/test_ingest_fuzz.py``)
enforces it.

``TraceFormatError`` subclasses :class:`ValueError` so pre-existing
callers that caught ``ValueError`` keep working.
"""

from __future__ import annotations

__all__ = ["TraceFormatError"]


class TraceFormatError(ValueError):
    """A trace file could not be decoded.

    Carries optional context so CLI errors point at the byte, not just
    the file: ``path`` (source file), ``offset`` (byte offset of the
    record that failed, when known), and ``detail`` (what went wrong).
    """

    def __init__(
        self,
        detail: str,
        *,
        path: str | None = None,
        offset: int | None = None,
    ) -> None:
        self.detail = detail
        self.path = path
        self.offset = offset
        where = ""
        if path is not None:
            where = f"{path}: "
        if offset is not None:
            where += f"at byte {offset}: "
        super().__init__(f"{where}{detail}")
