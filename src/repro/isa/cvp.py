"""CVP-1 trace import/export.

The paper evaluates on the CVP-1 championship trace set (ARMv8 datacenter
traces collected by Qualcomm) converted to ChampSim format.  This module
reads the CVP-1 side of that pipeline directly: the variable-length
binary records of the CVP-1 simulation kit, one per retired instruction::

    pc          : uint64 LE
    insn_class  : uint8            (InstClass below)
    [ea, size]  : uint64, uint8    (loadInstClass / storeInstClass only)
    [taken]     : uint8            (branch classes only)
    [target]    : uint64           (branches, when taken)
    n_in        : uint8
    in_regs     : n_in x uint8
    n_out       : uint8
    out_regs    : n_out x uint8
    out_values  : n_out x uint64

CVP-1 does not carry an explicit call/return taxonomy — the kit only
distinguishes conditional, unconditional-direct and unconditional-
indirect branches.  Like the CVP-1→ChampSim converters we recover the
finer classes from the *register map*: ARMv8 calls (``BL``/``BLR``)
write the link register X30, and returns (``RET``) read it.  That is the
branch-class inference half of the normalisation contract; fall-through
and target repair happen in :mod:`repro.isa.normalize`.

All malformed input raises :class:`~repro.isa.errors.TraceFormatError`:
truncated records, implausible register counts, unknown instruction
classes, corrupt compression envelopes.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from pathlib import Path

import numpy as np

from repro.isa.binio import TraceReader, open_for_write
from repro.isa.errors import TraceFormatError
from repro.isa.instruction import BranchClass
from repro.isa.trace import Trace

__all__ = ["InstClass", "LINK_REGISTER", "load_cvp", "dump_cvp"]


class InstClass(IntEnum):
    """CVP-1 instruction classes (the simulation kit's ``InstClass``)."""

    ALU = 0
    LOAD = 1
    STORE = 2
    COND_BRANCH = 3
    UNCOND_DIRECT_BRANCH = 4
    UNCOND_INDIRECT_BRANCH = 5
    FP = 6
    SLOW_ALU = 7

    @property
    def is_branch(self) -> bool:
        return self in (
            InstClass.COND_BRANCH,
            InstClass.UNCOND_DIRECT_BRANCH,
            InstClass.UNCOND_INDIRECT_BRANCH,
        )

    @property
    def is_memory(self) -> bool:
        return self in (InstClass.LOAD, InstClass.STORE)


#: ARMv8 link register: written by calls, read by returns.
LINK_REGISTER = 30

#: Register lists past this length mean a corrupt record, not a real
#: ARMv8 instruction (the kit's own cap is far lower).
MAX_REGS = 16

_U64 = struct.Struct("<Q")
_U8 = struct.Struct("<B")


def _classify(
    insn_class: InstClass, in_regs: tuple[int, ...], out_regs: tuple[int, ...]
) -> BranchClass:
    """Branch taxonomy from the CVP class plus the ARMv8 register map."""
    if insn_class is InstClass.COND_BRANCH:
        return BranchClass.COND_DIRECT
    if insn_class is InstClass.UNCOND_DIRECT_BRANCH:
        if LINK_REGISTER in out_regs:
            return BranchClass.CALL_DIRECT
        return BranchClass.UNCOND_DIRECT
    if LINK_REGISTER in out_regs:
        return BranchClass.CALL_INDIRECT
    if LINK_REGISTER in in_regs:
        return BranchClass.RETURN
    return BranchClass.INDIRECT


#: Addresses must fit the signed-int64 trace columns; real ARMv8 user
#: PCs are far below this.
MAX_ADDRESS = (1 << 63) - 1


def _check_address(value: int, what: str, reader: TraceReader) -> int:
    if value > MAX_ADDRESS:
        raise TraceFormatError(
            f"{what} {value:#x} out of range",
            path=str(reader.path),
            offset=reader.offset - 8,
        )
    return value


def _read_u8(reader: TraceReader, what: str) -> int:
    value: int = _U8.unpack(reader.read_exact(1, what))[0]
    return value


def _read_u64(reader: TraceReader, what: str) -> int:
    value: int = _U64.unpack(reader.read_exact(8, what))[0]
    return value


def _read_regs(reader: TraceReader, what: str) -> tuple[int, ...]:
    count = _read_u8(reader, f"{what} count")
    if count > MAX_REGS:
        raise TraceFormatError(
            f"implausible {what} count {count} (max {MAX_REGS})",
            path=str(reader.path),
            offset=reader.offset - 1,
        )
    regs = reader.read_exact(count, f"{what} list")
    return tuple(regs)


def load_cvp(
    path: str | Path,
    max_instructions: int | None = None,
    name: str | None = None,
) -> Trace:
    """Read a CVP-1 binary trace into a :class:`Trace`.

    The returned trace is *raw*: PCs keep the recorded values and
    not-taken conditionals keep target 0.  Run it through
    :func:`repro.isa.normalize.normalize_trace` (or load via
    :func:`repro.isa.ingest.load_any`) before simulation.
    """
    path = Path(path)
    pcs: list[int] = []
    classes: list[int] = []
    takens: list[bool] = []
    targets: list[int] = []

    with TraceReader(path) as reader:
        while max_instructions is None or len(pcs) < max_instructions:
            first = reader.read_record(8, "record pc")
            if first is None:
                break
            pc: int = _check_address(_U64.unpack(first)[0], "pc", reader)
            class_byte = _read_u8(reader, "instruction class")
            try:
                insn_class = InstClass(class_byte)
            except ValueError:
                raise TraceFormatError(
                    f"unknown instruction class {class_byte}",
                    path=str(reader.path),
                    offset=reader.offset - 1,
                ) from None

            if insn_class.is_memory:
                _read_u64(reader, "effective address")
                _read_u8(reader, "access size")

            taken = False
            target = 0
            if insn_class.is_branch:
                taken = _read_u8(reader, "taken flag") != 0
                if insn_class is not InstClass.COND_BRANCH and not taken:
                    raise TraceFormatError(
                        "unconditional branch recorded as not taken",
                        path=str(reader.path),
                        offset=reader.offset - 1,
                    )
                if taken:
                    target = _check_address(
                        _read_u64(reader, "branch target"), "branch target", reader
                    )

            in_regs = _read_regs(reader, "input register")
            out_regs = _read_regs(reader, "output register")
            # Output values ride along in the kit's format; the timing
            # model doesn't consume them, so skip without decoding.
            reader.read_exact(8 * len(out_regs), "output register values")

            if insn_class.is_branch:
                branch_class = _classify(insn_class, in_regs, out_regs)
            else:
                branch_class = BranchClass.NOT_BRANCH
                taken = False
                target = 0

            pcs.append(pc)
            classes.append(int(branch_class))
            takens.append(taken)
            targets.append(target)

    return Trace(
        name or path.stem,
        np.array(pcs, dtype=np.int64),
        np.array(classes, dtype=np.uint8),
        np.array(takens, dtype=bool),
        np.array(targets, dtype=np.int64),
    )


#: BranchClass -> (InstClass, in_regs, out_regs) for the writer.
_ENCODE: dict[BranchClass, tuple[InstClass, tuple[int, ...], tuple[int, ...]]] = {
    BranchClass.COND_DIRECT: (InstClass.COND_BRANCH, (), ()),
    BranchClass.UNCOND_DIRECT: (InstClass.UNCOND_DIRECT_BRANCH, (), ()),
    BranchClass.CALL_DIRECT: (InstClass.UNCOND_DIRECT_BRANCH, (), (LINK_REGISTER,)),
    BranchClass.CALL_INDIRECT: (
        InstClass.UNCOND_INDIRECT_BRANCH,
        (1,),
        (LINK_REGISTER,),
    ),
    BranchClass.INDIRECT: (InstClass.UNCOND_INDIRECT_BRANCH, (1,), ()),
    BranchClass.RETURN: (InstClass.UNCOND_INDIRECT_BRANCH, (LINK_REGISTER,), ()),
}


def dump_cvp(trace: Trace, path: str | Path) -> None:
    """Write a :class:`Trace` in the CVP-1 binary record format.

    Non-branches are written as ``ALU``; the memory/value side-channels a
    real CVP-1 trace carries are not reconstructible from a control-flow
    trace and are left empty.  Round-trips through :func:`load_cvp` are
    exact for canonical traces.
    """
    path = Path(path)
    with open_for_write(path) as handle:
        for i in range(len(trace)):
            branch_class = BranchClass(int(trace.branch_classes[i]))
            taken = bool(trace.takens[i])
            pieces = [_U64.pack(int(trace.pcs[i]))]
            if branch_class is BranchClass.NOT_BRANCH:
                pieces.append(_U8.pack(int(InstClass.ALU)))
                in_regs: tuple[int, ...] = ()
                out_regs: tuple[int, ...] = ()
            else:
                insn_class, in_regs, out_regs = _ENCODE[branch_class]
                pieces.append(_U8.pack(int(insn_class)))
                pieces.append(_U8.pack(int(taken)))
                if taken:
                    pieces.append(_U64.pack(int(trace.targets[i])))
            pieces.append(_U8.pack(len(in_regs)))
            pieces.append(bytes(in_regs))
            pieces.append(_U8.pack(len(out_regs)))
            pieces.append(bytes(out_regs))
            pieces.append(b"\x00" * (8 * len(out_regs)))
            handle.write(b"".join(pieces))
