"""Canonicalisation of imported traces.

Every ingestion frontend (:mod:`repro.isa.champsim`, :mod:`repro.isa.cvp`,
:mod:`repro.isa.riscv`, :mod:`repro.isa.textio`) produces a *raw* trace:
PCs may be unaligned, recorded targets may disagree with the dynamic
path, taken flags may be inconsistent, and straight-line records may
hide control transfers (e.g. exceptions or unrecorded branches).  The
simulator's contract — :meth:`repro.isa.trace.Trace.validate` — is much
stricter: the stream must be a *connected* dynamic path in which every
``next_pc`` equals the following record's PC and every unconditional
branch is taken.

:func:`normalize_trace` repairs a raw trace into that canonical form,
treating the recorded *instruction sequence* as ground truth:

* PCs are snapped to the 4-byte grid (fixed-length model);
* a non-branch followed by a non-fall-through PC is reclassified as a
  taken ``UNCOND_DIRECT`` (branch-class inference);
* conditional takenness is re-derived from the actual successor, with
  not-taken conditionals canonicalised to target 0;
* unconditional branches are forced taken and retargeted onto the
  actual successor;
* the final record is closed off consistently (a trailing conditional
  becomes not-taken; a trailing unconditional keeps or synthesises its
  target).

The result always passes ``validate()``; the returned
:class:`NormalizationReport` counts every repair so ``repro ingest
inspect`` can show exactly how far an import deviated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass
from repro.isa.trace import Trace

__all__ = ["NormalizationReport", "normalize_trace"]

_UNCONDITIONAL = (
    BranchClass.UNCOND_DIRECT,
    BranchClass.CALL_DIRECT,
    BranchClass.CALL_INDIRECT,
    BranchClass.INDIRECT,
    BranchClass.RETURN,
)


@dataclass(frozen=True)
class NormalizationReport:
    """Counts of every repair :func:`normalize_trace` applied."""

    instructions: int
    realigned_pcs: int
    inferred_branches: int
    flipped_takens: int
    retargeted_branches: int

    @property
    def repairs(self) -> int:
        return (
            self.realigned_pcs
            + self.inferred_branches
            + self.flipped_takens
            + self.retargeted_branches
        )

    @property
    def clean(self) -> bool:
        return self.repairs == 0

    def as_dict(self) -> dict[str, int]:
        return {
            "instructions": self.instructions,
            "realigned_pcs": self.realigned_pcs,
            "inferred_branches": self.inferred_branches,
            "flipped_takens": self.flipped_takens,
            "retargeted_branches": self.retargeted_branches,
            "repairs": self.repairs,
        }

    def render(self) -> str:
        if self.clean:
            return f"{self.instructions} instructions, already canonical"
        return (
            f"{self.instructions} instructions, {self.repairs} repairs "
            f"(realigned {self.realigned_pcs}, inferred-branch "
            f"{self.inferred_branches}, flipped-taken {self.flipped_takens}, "
            f"retargeted {self.retargeted_branches})"
        )


def normalize_trace(trace: Trace) -> tuple[Trace, NormalizationReport]:
    """Canonicalise ``trace``; returns the repaired trace and a report.

    The input is unchanged (traces are immutable); the output passes
    :meth:`~repro.isa.trace.Trace.validate` by construction.
    """
    n = len(trace)
    if n == 0:
        empty = NormalizationReport(0, 0, 0, 0, 0)
        return Trace(
            trace.name,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.int64),
        ), empty

    grid = ~np.int64(INSTRUCTION_SIZE - 1)
    pcs = trace.pcs & grid
    realigned = int((pcs != trace.pcs).sum())

    classes = trace.branch_classes.copy()
    takens = trace.takens.copy()
    targets = trace.targets & grid

    fallthrough = pcs + INSTRUCTION_SIZE
    # The actual successor of every record but the last; the final slot
    # is handled separately below.
    actual_next = np.empty(n, dtype=np.int64)
    actual_next[:-1] = pcs[1:]
    actual_next[-1] = fallthrough[-1]

    interior = np.zeros(n, dtype=bool)
    interior[:-1] = True

    diverges = actual_next != fallthrough

    # 1. Branch-class inference: a straight-line record whose successor
    #    is not its fall-through hides a control transfer.
    not_branch = classes == np.uint8(BranchClass.NOT_BRANCH)
    inferred_mask = not_branch & diverges & interior
    classes[inferred_mask] = np.uint8(BranchClass.UNCOND_DIRECT)
    inferred = int(inferred_mask.sum())

    # 2. Conditionals: takenness and targets re-derived from the path.
    cond = classes == np.uint8(BranchClass.COND_DIRECT)
    cond_interior = cond & interior
    new_taken_cond = cond_interior & diverges
    cond_trailing = cond & ~interior

    # 3. Unconditional classes: always taken, target = actual successor.
    uncond = np.isin(classes, [np.uint8(kind) for kind in _UNCONDITIONAL])
    uncond_interior = uncond & interior
    uncond_trailing = uncond & ~interior

    new_takens = takens.copy()
    new_takens[inferred_mask] = True
    new_takens[cond_interior] = new_taken_cond[cond_interior]
    new_takens[cond_trailing] = False
    new_takens[uncond] = True
    new_takens[not_branch & ~inferred_mask] = False

    new_targets = targets.copy()
    new_targets[inferred_mask] = actual_next[inferred_mask]
    new_targets[cond_interior & new_taken_cond] = actual_next[
        cond_interior & new_taken_cond
    ]
    new_targets[cond & ~new_taken_cond] = 0
    new_targets[uncond_interior] = actual_next[uncond_interior]
    new_targets[not_branch & ~inferred_mask] = 0
    # A trailing unconditional keeps a recorded target, or synthesises
    # the fall-through so the stream stays closed.
    trailing_fix = uncond_trailing & (new_targets == 0)
    new_targets[trailing_fix] = fallthrough[trailing_fix]

    flipped = int((new_takens != takens).sum())
    branchy = classes != np.uint8(BranchClass.NOT_BRANCH)
    retargeted = int(
        ((new_targets != targets) & branchy & ~inferred_mask).sum()
    )

    normalized = Trace(trace.name, pcs, classes, new_takens, new_targets)
    normalized.validate()
    report = NormalizationReport(
        instructions=n,
        realigned_pcs=realigned,
        inferred_branches=inferred,
        flipped_takens=flipped,
        retargeted_branches=retargeted,
    )
    return normalized, report
