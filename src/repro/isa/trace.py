"""Columnar dynamic-instruction traces.

A :class:`Trace` stores the dynamic instruction stream in parallel numpy
arrays (PC, branch class, taken, target).  The cycle simulator indexes these
arrays directly — far cheaper than a list of objects at the tens-of-
thousands-of-instructions scale we simulate — while tests and generators
can still work with :class:`~repro.isa.instruction.TraceEntry` records.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass, TraceEntry


@dataclass(frozen=True)
class TraceStats:
    """Static/dynamic footprint summary of a trace."""

    instructions: int
    static_instructions: int
    static_code_bytes: int
    cache_lines_touched: int
    conditional_branches: int
    taken_conditionals: int
    branches: int

    @property
    def conditional_taken_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.taken_conditionals / self.conditional_branches


class Trace:
    """An immutable dynamic instruction trace with columnar storage."""

    def __init__(
        self,
        name: str,
        pcs: npt.NDArray[Any],
        branch_classes: npt.NDArray[Any],
        takens: npt.NDArray[Any],
        targets: npt.NDArray[Any],
    ) -> None:
        length = len(pcs)
        if not (len(branch_classes) == len(takens) == len(targets) == length):
            raise ValueError("trace columns have inconsistent lengths")
        self.name = name
        self.pcs = np.ascontiguousarray(pcs, dtype=np.int64)
        self.branch_classes = np.ascontiguousarray(branch_classes, dtype=np.uint8)
        self.takens = np.ascontiguousarray(takens, dtype=bool)
        self.targets = np.ascontiguousarray(targets, dtype=np.int64)
        # next_pc is precomputed once: it is consulted on every simulated
        # instruction to detect mispredictions.
        self.next_pcs = np.where(
            self.takens, self.targets, self.pcs + INSTRUCTION_SIZE
        ).astype(np.int64)
        self._list_columns: (
            tuple[list[int], list[int], list[bool], list[int], list[int]] | None
        ) = None

    def list_columns(
        self,
    ) -> tuple[list[int], list[int], list[bool], list[int], list[int]]:
        """Plain-Python list views ``(pcs, branch_classes, takens, targets,
        next_pcs)`` of the columnar arrays, materialised once per trace.

        Per-element numpy indexing returns numpy scalars whose creation and
        ``int()`` conversion dominate the simulator's per-instruction cost;
        the hot components index these lists instead.
        """
        columns = self._list_columns
        if columns is None:
            columns = self._list_columns = (
                self.pcs.tolist(),
                self.branch_classes.tolist(),
                self.takens.tolist(),
                self.targets.tolist(),
                self.next_pcs.tolist(),
            )
        return columns

    @classmethod
    def from_entries(cls, name: str, entries: Iterable[TraceEntry]) -> "Trace":
        entries = list(entries)
        pcs = np.fromiter((entry.pc for entry in entries), dtype=np.int64, count=len(entries))
        classes = np.fromiter(
            (entry.branch_class for entry in entries), dtype=np.uint8, count=len(entries)
        )
        takens = np.fromiter(
            (entry.taken for entry in entries), dtype=bool, count=len(entries)
        )
        targets = np.fromiter(
            (entry.target for entry in entries), dtype=np.int64, count=len(entries)
        )
        return cls(name, pcs, classes, takens, targets)

    def __len__(self) -> int:
        return len(self.pcs)

    def __getitem__(self, index: int) -> TraceEntry:
        return TraceEntry(
            pc=int(self.pcs[index]),
            branch_class=BranchClass(int(self.branch_classes[index])),
            taken=bool(self.takens[index]),
            target=int(self.targets[index]),
        )

    def __iter__(self) -> Iterator[TraceEntry]:
        for index in range(len(self)):
            yield self[index]

    def stats(self, line_size: int = 64) -> TraceStats:
        """Compute the footprint summary the paper's Section III reports."""
        unique_pcs = np.unique(self.pcs)
        conditional = self.branch_classes == BranchClass.COND_DIRECT
        branches = self.branch_classes != BranchClass.NOT_BRANCH
        return TraceStats(
            instructions=len(self),
            static_instructions=len(unique_pcs),
            static_code_bytes=len(unique_pcs) * INSTRUCTION_SIZE,
            cache_lines_touched=len(np.unique(unique_pcs // line_size)),
            conditional_branches=int(conditional.sum()),
            taken_conditionals=int((conditional & self.takens).sum()),
            branches=int(branches.sum()),
        )

    def validate(self) -> None:
        """Check control-flow consistency of the recorded stream.

        Every instruction's recorded ``next_pc`` must equal the PC of the
        following record — a trace is a *connected* dynamic path.
        """
        if len(self) < 2:
            return
        mismatches = np.nonzero(self.next_pcs[:-1] != self.pcs[1:])[0]
        if len(mismatches):
            index = int(mismatches[0])
            raise ValueError(
                f"trace {self.name!r} broken at index {index}: "
                f"next_pc {int(self.next_pcs[index]):#x} != pc {int(self.pcs[index + 1]):#x}"
            )
        unconditional = np.isin(
            self.branch_classes,
            [
                BranchClass.UNCOND_DIRECT,
                BranchClass.CALL_DIRECT,
                BranchClass.CALL_INDIRECT,
                BranchClass.INDIRECT,
                BranchClass.RETURN,
            ],
        )
        if not self.takens[unconditional].all():
            raise ValueError(f"trace {self.name!r} has a not-taken unconditional branch")

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            name=np.array(self.name),
            pcs=self.pcs,
            branch_classes=self.branch_classes,
            takens=self.takens,
            targets=self.targets,
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with np.load(path) as data:
            return cls(
                name=str(data["name"]),
                pcs=data["pcs"],
                branch_classes=data["branch_classes"],
                takens=data["takens"],
                targets=data["targets"],
            )

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} instructions)"
