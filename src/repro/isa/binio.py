"""Shared binary I/O for trace readers: compressed envelopes, exact reads.

All on-disk trace formats this package reads come either raw or wrapped
in a gzip/lzma envelope selected by file suffix.  :class:`TraceReader`
centralises three things every reader needs:

* **envelope handling** — ``.gz``/``.xz`` suffixes transparently
  decompress; anything codec-level that goes wrong (bad magic, corrupt
  stream, truncated member) surfaces as :class:`TraceFormatError`, never
  as ``gzip.BadGzipFile`` / ``lzma.LZMAError`` / ``EOFError``;
* **exact reads** — :meth:`TraceReader.read_exact` either returns the
  requested bytes or raises a :class:`TraceFormatError` carrying the
  byte offset of the truncation;
* **offset tracking** — errors point at the record that failed, not just
  the file.

Writers get the mirror-image :func:`open_for_write`; gzip output pins
``mtime=0`` so identical traces produce bit-identical files (the golden
fixtures and the result-cache determinism contract both rely on it).
"""

from __future__ import annotations

import gzip
import io
import lzma
import zlib
from pathlib import Path
from types import TracebackType

from repro.isa.errors import TraceFormatError

__all__ = ["TraceReader", "open_for_write"]

#: Exceptions a corrupt or truncated compressed stream can raise on read.
_ENVELOPE_ERRORS = (OSError, EOFError, lzma.LZMAError, zlib.error)


def _open_raw(path: Path) -> io.BufferedIOBase:
    if path.suffix == ".xz":
        return lzma.open(path, "rb")
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return path.open("rb")


class TraceReader:
    """A positioned, envelope-aware byte reader for one trace file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.offset = 0
        try:
            self._handle = _open_raw(self.path)
        except _ENVELOPE_ERRORS as error:
            raise TraceFormatError(
                f"cannot open: {error}", path=str(self.path)
            ) from error

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._handle.close()
        except _ENVELOPE_ERRORS:
            # A corrupt gzip trailer surfaces on close; the payload read
            # already either succeeded or raised, so swallow it.
            pass

    def read(self, n: int) -> bytes:
        """Read up to ``n`` bytes; decompression faults become typed errors."""
        try:
            blob = self._handle.read(n)
        except _ENVELOPE_ERRORS as error:
            raise TraceFormatError(
                f"corrupt envelope: {error}",
                path=str(self.path),
                offset=self.offset,
            ) from error
        self.offset += len(blob)
        return blob

    def read_exact(self, n: int, what: str) -> bytes:
        """Read exactly ``n`` bytes or raise a typed truncation error."""
        blob = self.read(n)
        if len(blob) != n:
            raise TraceFormatError(
                f"truncated {what}: wanted {n} bytes, got {len(blob)}",
                path=str(self.path),
                offset=self.offset - len(blob),
            )
        return blob

    def read_record(self, n: int, what: str) -> bytes | None:
        """Read one fixed-size record; ``None`` at a clean EOF, typed error
        on a trailing partial record."""
        blob = self.read(n)
        if not blob:
            return None
        if len(blob) != n:
            raise TraceFormatError(
                f"truncated {what}: wanted {n} bytes, got {len(blob)}",
                path=str(self.path),
                offset=self.offset - len(blob),
            )
        return blob


class _DeterministicGzipWriter(gzip.GzipFile):
    """Gzip writer with ``mtime=0`` that owns (and closes) its file."""

    def __init__(self, path: Path) -> None:
        self._raw = path.open("wb")
        super().__init__(filename="", mode="wb", fileobj=self._raw, mtime=0)

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


def open_for_write(path: str | Path) -> io.BufferedIOBase:
    """Open ``path`` for binary writing, compressing by suffix.

    Gzip output is written with ``mtime=0`` so repeated dumps of the same
    trace are bit-identical (fixture and cache determinism).
    """
    path = Path(path)
    if path.suffix == ".xz":
        return lzma.open(path, "wb")
    if path.suffix == ".gz":
        return _DeterministicGzipWriter(path)
    return path.open("wb")
