"""Instruction records and branch classes.

Branch classes follow the taxonomy a BTB/BPU cares about (cf. ChampSim):

* ``NOT_BRANCH`` — straight-line instruction.
* ``COND_DIRECT`` — conditional branch, statically known target; the only
  class with a non-trivial *alternate path* (the opposite direction), and
  the trigger class for UCP.
* ``UNCOND_DIRECT`` — jump, always taken, statically known target.
* ``CALL_DIRECT`` — call, pushes a return address on the RAS.
* ``CALL_INDIRECT`` — call through a register; target predicted by ITTAGE.
* ``INDIRECT`` — unconditional indirect jump (e.g. switch dispatch).
* ``RETURN`` — pops the RAS.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

#: Fixed instruction size in bytes (ARMv8-like, paper Section III-A).
INSTRUCTION_SIZE = 4


class BranchClass(IntEnum):
    NOT_BRANCH = 0
    COND_DIRECT = 1
    UNCOND_DIRECT = 2
    CALL_DIRECT = 3
    CALL_INDIRECT = 4
    INDIRECT = 5
    RETURN = 6

    @property
    def is_branch(self) -> bool:
        return self is not BranchClass.NOT_BRANCH

    @property
    def is_conditional(self) -> bool:
        return self is BranchClass.COND_DIRECT

    @property
    def is_call(self) -> bool:
        return self in (BranchClass.CALL_DIRECT, BranchClass.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        return self is BranchClass.RETURN

    @property
    def is_indirect(self) -> bool:
        """Target comes from a register: needs an indirect target predictor."""
        return self in (BranchClass.CALL_INDIRECT, BranchClass.INDIRECT)

    @property
    def is_unconditional(self) -> bool:
        return self.is_branch and self is not BranchClass.COND_DIRECT

    @property
    def needs_btb(self) -> bool:
        """True when the taken target must be provided by the BTB."""
        return self in (
            BranchClass.COND_DIRECT,
            BranchClass.UNCOND_DIRECT,
            BranchClass.CALL_DIRECT,
        )


@dataclass(frozen=True)
class TraceEntry:
    """One dynamic instruction as recorded in a trace.

    ``target`` is the *actual* control-flow destination when ``taken`` is
    true.  For not-taken conditional branches and non-branches it is the
    fall-through PC, so ``next_pc`` is always well defined.
    """

    pc: int
    branch_class: BranchClass = BranchClass.NOT_BRANCH
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        if self.pc % INSTRUCTION_SIZE != 0:
            raise ValueError(f"PC {self.pc:#x} is not {INSTRUCTION_SIZE}-byte aligned")
        if self.branch_class.is_unconditional and not self.taken:
            raise ValueError(f"unconditional {self.branch_class.name} must be taken")
        if not self.branch_class.is_branch and self.taken:
            raise ValueError("non-branch cannot be taken")

    @property
    def fallthrough(self) -> int:
        return self.pc + INSTRUCTION_SIZE

    @property
    def next_pc(self) -> int:
        """The architecturally correct next PC."""
        return self.target if self.taken else self.fallthrough
