"""Human-readable text serialisation of traces.

One instruction per line: ``pc class taken target`` (PC/target in hex,
class as the :class:`~repro.isa.instruction.BranchClass` name).  Lossless
round-trip with :class:`~repro.isa.trace.Trace`; ``#`` lines are comments.
Useful for diffing traces, crafting regression inputs by hand, and
exchanging traces with other simulators.
"""

from __future__ import annotations

from pathlib import Path

from repro.isa.instruction import BranchClass, TraceEntry
from repro.isa.trace import Trace


def dump_text(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write("# pc class taken target\n")
        for i in range(len(trace)):
            branch_class = BranchClass(int(trace.branch_classes[i]))
            handle.write(
                f"{int(trace.pcs[i]):#x} {branch_class.name} "
                f"{int(trace.takens[i])} {int(trace.targets[i]):#x}\n"
            )


def load_text(path: str | Path, name: str | None = None) -> Trace:
    """Parse a text-format trace; the name defaults to a ``# trace:`` header
    comment or the file stem."""
    path = Path(path)
    entries: list[TraceEntry] = []
    trace_name = name
    with path.open() as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if trace_name is None and line.lower().startswith("# trace:"):
                    trace_name = line.split(":", 1)[1].strip()
                continue
            fields = line.split()
            if len(fields) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 fields, got {len(fields)}")
            try:
                pc = int(fields[0], 0)
                branch_class = BranchClass[fields[1]]
                taken = bool(int(fields[2]))
                target = int(fields[3], 0)
            except (ValueError, KeyError) as error:
                raise ValueError(f"{path}:{line_no}: {error}") from None
            entries.append(TraceEntry(pc, branch_class, taken, target))
    return Trace.from_entries(trace_name or path.stem, entries)
