"""Front door for real-trace ingestion: detect, read, normalise.

``load_any`` accepts every trace container this simulator understands,
picks the right reader, and canonicalises the result through
:func:`repro.isa.normalize.normalize_trace` so the returned trace drops
straight into the simulation/cache/serve machinery:

===========  ==========================================  ==================
format       extensions (optionally ``.gz``/``.xz``)      reader
===========  ==========================================  ==================
champsim     ``.bin`` ``.trace`` ``.champsim``           :mod:`repro.isa.champsim`
cvp          ``.cvp``                                    :mod:`repro.isa.cvp`
riscv        ``.rv`` ``.riscv``                          :mod:`repro.isa.riscv`
text         ``.txt``                                    :mod:`repro.isa.textio`
npz          ``.npz``                                    :meth:`Trace.load`
===========  ==========================================  ==================

Every failure — unknown container, corrupt envelope, malformed record —
raises :class:`~repro.isa.errors.TraceFormatError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.isa.errors import TraceFormatError
from repro.isa.normalize import NormalizationReport, normalize_trace
from repro.isa.trace import Trace

__all__ = ["FORMATS", "IngestResult", "detect_format", "load_any"]

#: Known container formats, in detection-priority order.
FORMATS = ("champsim", "cvp", "riscv", "text", "npz")

_EXTENSION_MAP = {
    ".bin": "champsim",
    ".trace": "champsim",
    ".champsim": "champsim",
    ".cvp": "cvp",
    ".rv": "riscv",
    ".riscv": "riscv",
    ".txt": "text",
    ".npz": "npz",
}


@dataclass(frozen=True)
class IngestResult:
    """One ingested trace: canonical columns plus provenance."""

    trace: Trace
    format: str
    report: NormalizationReport


def detect_format(path: str | Path) -> str:
    """Infer the container format from the file name.

    ``.gz``/``.xz`` envelope suffixes are stripped first, so
    ``server.champsim.xz`` and ``server.champsim`` detect identically.
    """
    path = Path(path)
    suffixes = [s.lower() for s in path.suffixes]
    while suffixes and suffixes[-1] in (".gz", ".xz"):
        suffixes.pop()
    if suffixes and suffixes[-1] in _EXTENSION_MAP:
        return _EXTENSION_MAP[suffixes[-1]]
    known = ", ".join(sorted(set(_EXTENSION_MAP)))
    raise TraceFormatError(
        f"cannot detect trace format from name {path.name!r} "
        f"(known extensions: {known}; pass an explicit format)",
        path=str(path),
    )


def _load_raw(
    path: Path, fmt: str, max_instructions: int | None, name: str | None
) -> Trace:
    if fmt == "champsim":
        from repro.isa.champsim import load_champsim

        return load_champsim(path, max_instructions=max_instructions, name=name)
    if fmt == "cvp":
        from repro.isa.cvp import load_cvp

        return load_cvp(path, max_instructions=max_instructions, name=name)
    if fmt == "riscv":
        from repro.isa.riscv import load_riscv

        return load_riscv(path, max_instructions=max_instructions, name=name)
    if fmt == "text":
        from repro.isa.textio import load_text

        try:
            trace = load_text(path, name=name)
        except TraceFormatError:
            raise
        except (ValueError, KeyError, OSError) as error:
            raise TraceFormatError(str(error), path=str(path)) from error
        return _truncate(trace, max_instructions)
    if fmt == "npz":
        try:
            trace = Trace.load(path)
        except TraceFormatError:
            raise
        except Exception as error:
            # np.load surfaces zipfile/pickle/key errors for corrupt
            # containers; fold them all into the typed error.
            raise TraceFormatError(
                f"corrupt npz container: {error}", path=str(path)
            ) from error
        if name is not None:
            trace = Trace(
                name, trace.pcs, trace.branch_classes, trace.takens, trace.targets
            )
        return _truncate(trace, max_instructions)
    raise TraceFormatError(f"unknown trace format {fmt!r} (known: {', '.join(FORMATS)})")


def _truncate(trace: Trace, max_instructions: int | None) -> Trace:
    if max_instructions is None or len(trace) <= max_instructions:
        return trace
    return Trace(
        trace.name,
        trace.pcs[:max_instructions],
        trace.branch_classes[:max_instructions],
        trace.takens[:max_instructions],
        trace.targets[:max_instructions],
    )


def load_any(
    path: str | Path,
    fmt: str | None = None,
    max_instructions: int | None = None,
    name: str | None = None,
    normalize: bool = True,
) -> IngestResult:
    """Read ``path`` in any supported format and canonicalise it.

    ``fmt`` overrides extension-based detection.  With ``normalize=False``
    the raw reader output is returned (useful for inspecting how far an
    import deviates before repair); the report is then computed against a
    throw-away normalisation pass so callers still see the deviation
    counts.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError("no such file", path=str(path))
    chosen = fmt if fmt is not None else detect_format(path)
    if chosen not in FORMATS:
        raise TraceFormatError(
            f"unknown trace format {chosen!r} (known: {', '.join(FORMATS)})"
        )
    raw = _load_raw(path, chosen, max_instructions, name)
    normalized, report = normalize_trace(raw)
    return IngestResult(
        trace=normalized if normalize else raw, format=chosen, report=report
    )
