"""Instruction model: a fixed-length, RISC-style ISA in the spirit of ARMv8.

The paper evaluates on CVP-1 ARMv8 traces and assumes one architectural
instruction decodes to one µ-op, 4 bytes per instruction (Section III-A).
We adopt the same convention: every trace record is one instruction == one
µ-op at a 4-byte-aligned PC.
"""

from repro.isa.errors import TraceFormatError
from repro.isa.ingest import IngestResult, detect_format, load_any
from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass, TraceEntry
from repro.isa.normalize import NormalizationReport, normalize_trace
from repro.isa.trace import Trace, TraceStats

__all__ = [
    "BranchClass",
    "TraceEntry",
    "Trace",
    "TraceStats",
    "INSTRUCTION_SIZE",
    "TraceFormatError",
    "IngestResult",
    "NormalizationReport",
    "detect_format",
    "load_any",
    "normalize_trace",
]
