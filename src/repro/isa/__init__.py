"""Instruction model: a fixed-length, RISC-style ISA in the spirit of ARMv8.

The paper evaluates on CVP-1 ARMv8 traces and assumes one architectural
instruction decodes to one µ-op, 4 bytes per instruction (Section III-A).
We adopt the same convention: every trace record is one instruction == one
µ-op at a 4-byte-aligned PC.
"""

from repro.isa.instruction import INSTRUCTION_SIZE, BranchClass, TraceEntry
from repro.isa.trace import Trace, TraceStats

__all__ = ["BranchClass", "TraceEntry", "Trace", "TraceStats", "INSTRUCTION_SIZE"]
