"""The experiment-server wire protocol: NDJSON messages, typed errors.

One JSON object per ``\\n``-terminated line, both directions.  Client
messages carry a ``type`` (``run``, ``cancel``, ``status``, ``ping``) and
— for ``run`` — a client-chosen request ``id`` that every server message
about that request echoes back, so one connection can multiplex many
requests.

A ``run`` request names an experiment matrix::

    {"type": "run", "id": "r1", "priority": 5, "stream": true,
     "matrix": {"workloads": ["fp_01", "int_02"],
                "configs": [{}, {"ucp": true}],
                "n_instructions": 20000}}

The matrix is normalized through :func:`repro.core.configs.
config_from_spec` — the same normalizer behind the CLI flags — and
expanded to the cross product of workloads × configs as
:class:`~repro.analysis.parallel.SimJob` instances, so a served request
and a CLI run spelling the same experiment share exactly the same result
cache keys.

Server messages: ``accepted``, ``event`` (progress stream, see
:mod:`repro.observe.stream`), ``result``, ``error`` (with a typed
``code`` from :data:`ERROR_CODES`), ``status`` and ``pong``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.analysis.parallel import SimJob
from repro.core.configs import config_from_spec
from repro.core.pipeline import SimResult
from repro.observe.telemetry import SpanContext
from repro.workloads import SUITE, is_ingested

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "RunRequest",
    "ServeError",
    "decode_line",
    "encode_message",
    "expand_matrix",
    "parse_run_request",
    "result_summary",
]

#: Wire protocol version, echoed in ``accepted`` and ``status`` messages.
#: v2: ``run`` accepts an optional ``trace`` field (``{"trace_id",
#: "span_id"}``) propagating the client's span context through the
#: scheduler and workers, and ``status`` replies carry a ``telemetry``
#: snapshot when ``REPRO_SIM_TELEMETRY`` is on.  Both are additive:
#: v1 clients interoperate unchanged.
PROTOCOL_VERSION = 2

#: Hard cap on one NDJSON line (requests are small; results are summaries).
MAX_LINE_BYTES = 1 << 20

#: Every error code the server can attach to an ``error`` message.
#:
#: * ``bad-request``   — unparsable JSON, unknown fields, bad matrix;
#: * ``unknown-workload`` — a name in neither the suite nor the
#:   ingested-trace store;
#: * ``timeout``       — a job ran past the per-job timeout;
#: * ``worker-crash``  — the worker process died (killed, segfault) and
#:   retries were exhausted;
#: * ``quarantined``   — the key previously crashed its workers and is
#:   refused fast until the quarantine is cleared;
#: * ``cache-corrupt`` — the cache tier itself failed while serving
#:   (distinct from a corrupt *entry*, which silently re-simulates);
#: * ``cancelled``     — the client (or a disconnect) cancelled the run;
#: * ``overloaded``    — the server refused new work (queue bound);
#: * ``internal``      — anything else; the detail names the exception.
ERROR_CODES = frozenset(
    {
        "bad-request",
        "unknown-workload",
        "timeout",
        "worker-crash",
        "quarantined",
        "cache-corrupt",
        "cancelled",
        "overloaded",
        "internal",
    }
)


class ServeError(Exception):
    """A typed service failure that maps onto one protocol ``error`` line."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        self.code = code
        super().__init__(message)

    def as_message(self, request_id: str | None = None) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "error",
            "code": self.code,
            "message": str(self),
        }
        if request_id is not None:
            record["id"] = request_id
        return record


def encode_message(message: dict[str, Any]) -> bytes:
    """One protocol message as an NDJSON line (compact separators)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises ``ServeError('bad-request')``."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError("bad-request", f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ServeError("bad-request", f"unparsable message: {error}") from error
    if not isinstance(message, dict):
        raise ServeError("bad-request", "message must be a JSON object")
    return message


def expand_matrix(matrix: object) -> list[SimJob]:
    """Normalize one experiment matrix to its deduplicated job list.

    ``matrix`` must be ``{"workloads": [...], "configs": [spec, ...],
    "n_instructions": N}`` (``configs`` optional, default one baseline
    config; ``n_instructions`` optional, default 40 000 — the engine's
    default).  Jobs are the workloads × configs cross product; duplicate
    cache keys are folded here so a request's job list is already
    single-flight within itself.
    """
    if not isinstance(matrix, dict):
        raise ServeError("bad-request", "matrix must be a JSON object")
    unknown = set(matrix) - {"workloads", "configs", "n_instructions"}
    if unknown:
        raise ServeError(
            "bad-request", f"unknown matrix key(s): {', '.join(sorted(unknown))}"
        )
    workloads = matrix.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ServeError("bad-request", "matrix.workloads must be a non-empty list")
    for name in workloads:
        if not isinstance(name, str):
            raise ServeError("bad-request", f"workload name {name!r} is not a string")
        if name not in SUITE and not is_ingested(name):
            raise ServeError("unknown-workload", f"unknown workload {name!r}")
    specs = matrix.get("configs", [{}])
    if not isinstance(specs, list) or not specs:
        raise ServeError("bad-request", "matrix.configs must be a non-empty list")
    n_instructions = matrix.get("n_instructions", 40_000)
    if (
        isinstance(n_instructions, bool)
        or not isinstance(n_instructions, int)
        or n_instructions <= 0
    ):
        raise ServeError(
            "bad-request", "matrix.n_instructions must be a positive integer"
        )
    jobs: dict[str, SimJob] = {}
    for spec in specs:
        if not isinstance(spec, dict):
            raise ServeError("bad-request", "matrix.configs entries must be objects")
        try:
            config = config_from_spec(spec)
        except ValueError as error:
            raise ServeError("bad-request", str(error)) from error
        for name in workloads:
            job = SimJob(str(name), config, n_instructions)
            jobs.setdefault(job.key, job)
    return list(jobs.values())


@dataclass(frozen=True)
class RunRequest:
    """One parsed, validated ``run`` message."""

    id: str
    jobs: tuple[SimJob, ...]
    priority: int = 0
    timeout: float | None = None
    stream: bool = False
    trace: SpanContext | None = None


def parse_run_request(message: dict[str, Any]) -> RunRequest:
    """Validate a ``run`` message; raises :class:`ServeError` on misuse."""
    unknown = set(message) - {
        "type",
        "id",
        "matrix",
        "priority",
        "timeout",
        "stream",
        "trace",
    }
    if unknown:
        raise ServeError(
            "bad-request", f"unknown run field(s): {', '.join(sorted(unknown))}"
        )
    request_id = message.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ServeError("bad-request", "run.id must be a non-empty string")
    priority = message.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ServeError("bad-request", "run.priority must be an integer")
    timeout = message.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ServeError("bad-request", "run.timeout must be a number")
        if timeout <= 0:
            raise ServeError("bad-request", "run.timeout must be positive")
    stream = message.get("stream", False)
    if not isinstance(stream, bool):
        raise ServeError("bad-request", "run.stream must be a boolean")
    trace_wire = message.get("trace")
    trace: SpanContext | None = None
    if trace_wire is not None:
        trace = SpanContext.from_wire(trace_wire)
        if trace is None:
            raise ServeError(
                "bad-request",
                "run.trace must be {trace_id, span_id} (non-empty strings)",
            )
    jobs = expand_matrix(message.get("matrix"))
    return RunRequest(
        id=request_id,
        jobs=tuple(jobs),
        priority=priority,
        timeout=None if timeout is None else float(timeout),
        stream=stream,
        trace=trace,
    )


def result_summary(job: SimJob, result: SimResult, cached: bool) -> dict[str, Any]:
    """The per-job summary a ``result`` message carries."""
    return {
        "workload": job.workload,
        "key": job.key,
        "n_instructions": job.n_instructions,
        "cached": cached,
        "ipc": round(result.ipc, 6),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "uop_hit_rate": round(result.uop_hit_rate, 4),
        "cond_mpki": round(result.cond_mpki, 4),
        "switch_pki": round(result.switch_pki, 4),
        "prefetch_accuracy": round(result.prefetch_accuracy, 4),
    }
