"""Sharded asyncio scheduler: single-flight, priority, cancellation.

The server's execution core.  Jobs are hashed by cache key onto a fixed
set of :class:`WorkerShard` slots (each one process — or one thread in
``thread`` mode for tests), so one poisoned key can only wedge its own
shard while the others keep serving.  Per shard, queued flights drain in
``(-priority, arrival)`` order off a heap.

**Single-flight across clients.**  :meth:`Scheduler.submit` coalesces by
cache key: while a flight for a key is queued or running, later submits
join it (refcounted) instead of spawning duplicate work — the service
extension of ``run_cached``'s in-process single-flight.  Cache hits
(memory, then disk) resolve in ``submit`` itself and never touch a pool.

**Failure containment.**  A worker that dies mid-job (``BrokenExecutor``)
gets its shard restarted and the job retried with exponential backoff;
when retries are exhausted the key is quarantined — subsequent submits
fail fast with ``quarantined`` instead of re-crashing workers.  A job
past its timeout gets its shard restarted (the worker may be wedged) and
fails with ``timeout``.  Every failure is a typed
:class:`~repro.serve.protocol.ServeError` scoped to its own flight;
other flights, on the same shard or not, are unaffected.

**Cancellation.**  Flights are refcounted by interested requests.
Releasing the last reference cancels the flight: a queued flight is
dropped before dispatch (lazy heap deletion); a running one has its
worker killed via shard restart, leaving the shard schedulable.

The worker entry point is the module-level :func:`_run_job_entry`
trampoline resolving :data:`_JOB_ENTRY` at call time — fault-injection
tests repoint ``_JOB_ENTRY`` and fork-started workers inherit the patch.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.analysis import runner as _runner
from repro.analysis.parallel import (
    SimJob,
    _pool_context,
    _worker_init,
    resolve_job_timeout,
)
from repro.common.stats import StatBlock
from repro.core.configs import SimConfig
from repro.core.kernel import KernelSimulator, kernel_enabled
from repro.core.pipeline import SimResult, Simulator
from repro.observe import telemetry
from repro.observe.telemetry import Span, SpanContext, SpanSink
from repro.serve import eviction
from repro.serve.protocol import ServeError
from repro.workloads.suite import load_workload

__all__ = [
    "Flight",
    "FlightResult",
    "Scheduler",
    "WorkerShard",
]


def _default_shards() -> int:
    raw = os.environ.get("REPRO_SERVE_SHARDS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(2, min(4, (os.cpu_count() or 2) // 2))


def _default_job_entry(
    workload: str,
    config: SimConfig,
    n_instructions: int,
    trace_wire: dict[str, Any] | None = None,
) -> tuple[SimResult, float, dict[str, Any] | None, list[dict[str, Any]]]:
    """Worker-side job body: simulate (observing) and persist to disk.

    Mirrors ``repro.analysis.parallel._execute_job`` — same cache key,
    same atomic store, so served results are interchangeable with CLI
    runs — but runs the simulator with the observer on so the stall
    taxonomy can be streamed back.  Observation is bit-identical to the
    unobserved run, so the cached entry is too.

    ``trace_wire`` is the scheduler span's :meth:`SpanContext.as_wire`
    dict.  With ``REPRO_SIM_TELEMETRY`` on (workers inherit the env) the
    worker opens ``worker.job`` / ``runner.simulate`` child spans and
    ships them back as plain dicts in the fourth tuple slot — telemetry
    objects never cross the pickle boundary, and the spans are built in
    a job-local sink so thread-mode shards cannot double-record.
    """
    start = time.perf_counter()  # lint-ok: SIM002 worker timing telemetry, never touches results
    sink: SpanSink | None = None
    job_span: Span | None = None
    if telemetry.telemetry_enabled():
        sink = SpanSink()
    if sink is not None:
        job_span = sink.start_span(
            "worker.job",
            parent=SpanContext.from_wire(trace_wire),
            attrs={"workload": workload, "pid": os.getpid()},
        )
    key = _runner.cache_key(workload, n_instructions, config)
    result = _runner._load_disk(key)
    taxonomy: dict[str, Any] | None = None
    source = "disk"
    if result is None:
        source = "simulated"
        sim_span = (
            sink.start_span("runner.simulate", parent=job_span.context)
            if sink is not None and job_span is not None
            else None
        )
        spec = load_workload(workload, n_instructions)
        # Same engine selection as the CLI: the replay kernel when enabled
        # (it falls back to the interpreter itself while an observer is
        # armed, recording the fallback counter), the interpreter otherwise.
        sim_cls = KernelSimulator if kernel_enabled() else Simulator
        sim = sim_cls(spec.trace, config, name=workload, observe=True)
        result = sim.run()
        if sim.observer is not None:
            taxonomy = sim.observer.taxonomy.as_dict()
        _runner._store_disk(key, result)
        if sink is not None and sim_span is not None:
            sink.finish(sim_span, instructions=result.instructions)
    spans: list[dict[str, Any]] = []
    if sink is not None and job_span is not None:
        sink.finish(job_span, source=source)
        spans = [span.to_dict() for span in sink.drain()]
    return result, time.perf_counter() - start, taxonomy, spans  # lint-ok: SIM002 timing telemetry


#: The active worker job body.  Fault-injection tests repoint this;
#: fork-started pool workers inherit the patch.
_JOB_ENTRY = _default_job_entry


def _run_job_entry(
    workload: str,
    config: SimConfig,
    n_instructions: int,
    trace_wire: dict[str, Any] | None = None,
) -> tuple[Any, ...]:
    """Picklable trampoline: resolves :data:`_JOB_ENTRY` in the worker.

    Patched entries (fault injectors, test doubles) keep the historical
    3-argument contract and return a 3-tuple; only the default entry
    receives the trace context and appends the span slot.  The caller
    unpacks both shapes.
    """
    entry = _JOB_ENTRY
    if entry is _default_job_entry:
        return entry(workload, config, n_instructions, trace_wire)
    return entry(workload, config, n_instructions)


def _terminate_pool(pool: Executor) -> None:
    """Tear a pool down without joining its (possibly wedged) workers.

    ``_processes`` is snapshotted *before* shutdown — the executor's
    management thread nulls it out during teardown.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


@dataclass(frozen=True)
class FlightResult:
    """What one resolved flight hands every joined request."""

    result: SimResult
    cached: bool
    source: str  # "memory" | "disk" | "simulated"
    seconds: float
    taxonomy: dict[str, Any] | None


# Flight lifecycle states.
_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"


class Flight:
    """One in-progress (or resolved) simulation, shared by every request
    that asked for its key while it was alive."""

    def __init__(self, job: SimJob, priority: int, timeout: float | None) -> None:
        self.job = job
        self.key = job.key
        self.priority = priority
        self.timeout = timeout
        self.state = _QUEUED
        self.refs = 1
        self.future: asyncio.Future[FlightResult] = (
            asyncio.get_running_loop().create_future()
        )
        #: Progress-event callbacks (one per streaming subscriber).
        self.subscribers: list[Callable[[dict[str, Any]], None]] = []
        #: The dispatcher's work task while running (cancellation handle).
        self._work: asyncio.Task[Any] | None = None
        #: Telemetry (populated only when REPRO_SIM_TELEMETRY is on):
        #: the request's propagated trace context, this flight's
        #: ``sched.job`` span, and the enqueue timestamp for the
        #: queue-wait histogram.
        self.trace: SpanContext | None = None
        self.span: Span | None = None
        self.queued_at: float | None = None

    def emit(self, event: dict[str, Any]) -> None:
        for callback in list(self.subscribers):
            callback(event)

    async def wait(self) -> FlightResult:
        """Wait for resolution without cancelling the shared flight if
        *this* waiter is cancelled (other requests may still want it)."""
        return await asyncio.shield(self.future)

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _CANCELLED)


class WorkerShard:
    """One execution slot: a single-worker pool that can be restarted."""

    def __init__(self, index: int, mode: str = "process") -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown shard mode {mode!r}")
        self.index = index
        self.mode = mode
        self.restarts = 0
        self.wake = asyncio.Event()
        #: ``(-priority, seq, key)`` heap of queued flight keys.
        self.heap: list[tuple[int, int, str]] = []
        self._pool: Executor | None = None

    def pool(self) -> Executor:
        if self._pool is None:
            if self.mode == "process":
                context = _pool_context()
                if context is None:  # no usable start method on this platform
                    self._pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"repro-shard-{self.index}"
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_worker_init,
                        initargs=(os.getpid(),),
                    )
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{self.index}"
                )
        return self._pool

    def submit(
        self, job: SimJob, trace_wire: dict[str, Any] | None = None
    ) -> Future[tuple[Any, ...]]:
        return self.pool().submit(
            _run_job_entry, job.workload, job.config, job.n_instructions, trace_wire
        )

    def restart(self) -> None:
        """Kill this shard's worker (it may be wedged) and start fresh."""
        pool, self._pool = self._pool, None
        self.restarts += 1
        if pool is None:
            return
        _terminate_pool(pool)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            _terminate_pool(pool)


@dataclass
class _SchedulerConfig:
    shards: int
    mode: str
    job_timeout: float | None
    retries: int
    backoff: float


class Scheduler:
    """Sharded, single-flight, priority-aware job scheduler.

    Parameters
    ----------
    shards:
        Worker-slot count (default: ``REPRO_SERVE_SHARDS`` or a
        core-count heuristic).  Each shard owns one worker.
    mode:
        ``"process"`` (isolated workers, restartable on crash/timeout) or
        ``"thread"`` (in-process, for tests — crashes cannot be contained
        but everything is observable and fast).
    job_timeout:
        Per-job budget in seconds (default ``REPRO_SIM_JOB_TIMEOUT``).
    retries:
        Worker-crash retries per flight before the key is quarantined.
    backoff:
        Base of the exponential retry backoff, in seconds.
    """

    def __init__(
        self,
        shards: int | None = None,
        *,
        mode: str = "process",
        job_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
    ) -> None:
        self.config = _SchedulerConfig(
            shards=shards if shards is not None else _default_shards(),
            mode=mode,
            job_timeout=resolve_job_timeout(job_timeout),
            retries=max(0, retries),
            backoff=backoff,
        )
        self.counters = StatBlock("serve_scheduler")
        self.shards = [
            WorkerShard(i, mode=mode) for i in range(self.config.shards)
        ]
        self._flights: dict[str, Flight] = {}
        self._quarantine: dict[str, str] = {}
        self._seq = itertools.count()
        self._dispatchers: list[asyncio.Task[None]] = []
        self._closing = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._dispatchers:
            return
        self._closing = False
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard), name=f"shard-{shard.index}")
            for shard in self.shards
        ]

    async def close(self) -> None:
        self._closing = True
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        for flight in list(self._flights.values()):
            if not flight.done:
                self._finish(
                    flight, error=ServeError("cancelled", "scheduler shut down")
                )
        for shard in self.shards:
            shard.close()

    # -- submission ---------------------------------------------------------

    def shard_for(self, key: str) -> WorkerShard:
        return self.shards[int(key, 16) % len(self.shards)]

    # -- telemetry seams (each call site pays one pointer test) -------------

    def _count_job(self, outcome: str) -> None:
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_sched_jobs_total",
                "Scheduler job outcomes (process lifetime).",
                labels=("outcome",),
            ).inc(outcome=outcome)

    def _record_event(self, shard_name: str, event: str, **fields: Any) -> None:
        rec = telemetry.maybe_recorder()
        if rec is not None:
            rec.record(shard_name, event, **fields)

    def _set_queue_gauge(self, shard: WorkerShard) -> None:
        tel = telemetry.maybe()
        if tel is not None:
            tel.gauge(
                "repro_sched_queue_depth",
                "Flights queued per shard (lazy heap entries included).",
                labels=("shard",),
            ).set(len(shard.heap), shard=str(shard.index))

    def submit(
        self,
        job: SimJob,
        *,
        priority: int = 0,
        timeout: float | None = None,
        trace: SpanContext | None = None,
    ) -> Flight:
        """Resolve-or-enqueue one job; returns its (possibly shared) flight.

        ``trace`` is the requesting span's context (from the protocol's
        ``trace`` field); a new flight opens a child ``sched.job`` span
        under it when telemetry is on.  Raises :class:`ServeError`
        (``quarantined`` / ``cache-corrupt``) instead of enqueueing when
        the key is known-bad or the cache tier itself fails.
        """
        self.counters.add("jobs_requested")
        self._count_job("requested")
        quarantined = self._quarantine.get(job.key)
        if quarantined is not None:
            self.counters.add("jobs_quarantined")
            self._count_job("quarantined_reject")
            raise ServeError(
                "quarantined", f"{job.describe()} is quarantined: {quarantined}"
            )

        flight = self._flights.get(job.key)
        if flight is not None and not flight.done:
            flight.refs += 1
            if priority > flight.priority:
                # Escalate: requeue under the higher priority (the heap
                # entry for the old priority is lazily skipped).
                flight.priority = priority
                if flight.state == _QUEUED:
                    self._enqueue(flight)
                tel = telemetry.maybe()
                if tel is not None:
                    tel.counter(
                        "repro_sched_escalations_total",
                        "Queued flights whose priority was raised by a "
                        "later request.",
                    ).inc()
            self.counters.add("jobs_coalesced")
            self._count_job("coalesced")
            return flight

        cached, source = self._probe_cache(job)
        if cached is not None:
            self.counters.add(f"jobs_from_{source}")
            self._count_job(f"from_{source}")
            flight = Flight(job, priority, timeout)
            flight.state = _DONE
            flight.future.set_result(
                FlightResult(
                    result=cached,
                    cached=True,
                    source=source,
                    seconds=0.0,
                    taxonomy=None,
                )
            )
            return flight

        flight = Flight(
            job, priority, timeout if timeout is not None else self.config.job_timeout
        )
        flight.trace = trace
        sink = telemetry.maybe_spans()
        if sink is not None:
            shard = self.shard_for(job.key)
            flight.span = sink.start_span(
                "sched.job",
                parent=trace,
                attrs={
                    "workload": job.workload,
                    "key": job.key,
                    "shard": shard.index,
                },
            )
            flight.queued_at = time.monotonic()  # lint-ok: SIM002 queue-wait telemetry
            self._record_event(
                f"shard-{shard.index}",
                "job-submitted",
                key=job.key,
                workload=job.workload,
                priority=priority,
            )
        self._flights[job.key] = flight
        eviction.protect(job.key)
        self._enqueue(flight)
        return flight

    def release(self, flight: Flight) -> None:
        """Drop one request's interest in ``flight``; the last release
        cancels it (queued → dropped; running → worker killed)."""
        if flight.done:
            return
        flight.refs -= 1
        if flight.refs > 0:
            return
        if flight.state == _RUNNING and flight._work is not None:
            flight._work.cancel()
            return  # the dispatcher finishes the cancellation
        self._finish(
            flight,
            error=ServeError("cancelled", f"{flight.job.describe()} cancelled"),
        )

    def clear_quarantine(self, key: str | None = None) -> int:
        """Forget quarantined keys (all of them when ``key`` is None)."""
        if key is not None:
            return 1 if self._quarantine.pop(key, None) is not None else 0
        count = len(self._quarantine)
        self._quarantine.clear()
        return count

    def stats(self) -> dict[str, Any]:
        return {
            "counters": self.counters.as_dict(),
            "shards": len(self.shards),
            "mode": self.config.mode,
            "queued": sum(len(shard.heap) for shard in self.shards),
            "in_flight": sum(
                1 for f in self._flights.values() if f.state == _RUNNING
            ),
            "restarts": sum(shard.restarts for shard in self.shards),
            "quarantined": sorted(self._quarantine),
        }

    # -- internals ----------------------------------------------------------

    def _probe_cache(self, job: SimJob) -> tuple[SimResult | None, str]:
        result = _runner._memory_cache.get(job.key)
        if result is not None:
            return result, "memory"
        try:
            result = _runner._load_disk(job.key)
        except Exception as error:
            self.counters.add("cache_errors")
            raise ServeError(
                "cache-corrupt",
                f"cache read for {job.describe()} failed: "
                f"{type(error).__name__}: {error}",
            ) from error
        if result is not None:
            _runner._memory_cache[job.key] = result
            return result, "disk"
        return None, ""

    def _enqueue(self, flight: Flight) -> None:
        shard = self.shard_for(flight.key)
        heapq.heappush(
            shard.heap, (-flight.priority, next(self._seq), flight.key)
        )
        self._set_queue_gauge(shard)
        shard.wake.set()

    def _finish(
        self,
        flight: Flight,
        outcome: FlightResult | None = None,
        error: ServeError | None = None,
    ) -> None:
        if flight.done:
            return
        cancelled = error is not None and error.code == "cancelled"
        flight.state = _CANCELLED if cancelled else _DONE
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
        eviction.unprotect(flight.key)
        if flight.span is not None:
            sink = telemetry.maybe_spans()
            if sink is not None:
                sink.finish(
                    flight.span,
                    outcome="error" if error is not None else "ok",
                    code=None if error is None else error.code,
                )
            flight.span = None
        if not flight.future.done():
            if error is not None:
                if error.code == "cancelled":
                    self.counters.add("jobs_cancelled")
                flight.future.set_exception(error)
            else:
                assert outcome is not None
                flight.future.set_result(outcome)
        # A consumed exception that nobody awaits must not warn at GC.
        if error is not None:
            flight.future.exception()

    async def _dispatch(self, shard: WorkerShard) -> None:
        """One shard's drain loop: pop priority order, execute, resolve."""
        while not self._closing:
            await shard.wake.wait()
            shard.wake.clear()
            while shard.heap:
                _, _, key = heapq.heappop(shard.heap)
                self._set_queue_gauge(shard)
                flight = self._flights.get(key)
                if flight is None or flight.done or flight.state != _QUEUED:
                    continue  # cancelled, resolved, or an escalated duplicate
                flight.state = _RUNNING
                tel = telemetry.maybe()
                if tel is not None and flight.queued_at is not None:
                    tel.histogram(
                        "repro_sched_queue_wait_seconds",
                        "Seconds a flight waited in its shard queue before "
                        "dispatch.",
                    ).observe(time.monotonic() - flight.queued_at)  # lint-ok: SIM002 queue-wait telemetry
                self._record_event(
                    f"shard-{shard.index}",
                    "job-started",
                    key=flight.key,
                    workload=flight.job.workload,
                )
                flight.emit(
                    {
                        "event": "job-started",
                        "key": flight.key,
                        "workload": flight.job.workload,
                    }
                )
                work = asyncio.ensure_future(self._run_flight(shard, flight))
                flight._work = work
                try:
                    outcome = await work
                except asyncio.CancelledError:
                    if self._closing:
                        raise
                    # Cancelled mid-run by the last release(): the worker
                    # may still be crunching — kill it so the shard is
                    # immediately schedulable again.
                    shard.restart()
                    self._count_job("cancelled")
                    self._record_event(
                        f"shard-{shard.index}", "job-cancelled", key=flight.key
                    )
                    self._finish(
                        flight,
                        error=ServeError(
                            "cancelled", f"{flight.job.describe()} cancelled"
                        ),
                    )
                except ServeError as error:
                    self.counters.add("jobs_failed")
                    self._count_job("failed")
                    self._record_event(
                        f"shard-{shard.index}",
                        "job-failed",
                        key=flight.key,
                        code=error.code,
                        detail=str(error),
                    )
                    self._finish(flight, error=error)
                else:
                    self.counters.add("jobs_simulated")
                    self._count_job("simulated")
                    tel = telemetry.maybe()
                    if tel is not None:
                        tel.histogram(
                            "repro_sched_job_seconds",
                            "Worker wall seconds per simulated flight.",
                        ).observe(outcome.seconds)
                    self._record_event(
                        f"shard-{shard.index}",
                        "job-finished",
                        key=flight.key,
                        workload=flight.job.workload,
                        seconds=round(outcome.seconds, 6),
                    )
                    self._finish(flight, outcome)

    async def _run_flight(self, shard: WorkerShard, flight: Flight) -> FlightResult:
        """Execute one flight on its shard: timeout, retry, quarantine."""
        job = flight.job
        timeout = flight.timeout
        shard_name = f"shard-{shard.index}"
        trace_wire = (
            flight.span.context.as_wire() if flight.span is not None else None
        )
        attempt = 0
        while True:
            pool_future = shard.submit(job, trace_wire)
            self.counters.add("pool_dispatches")
            try:
                payload = await asyncio.wait_for(
                    asyncio.wrap_future(pool_future), timeout
                )
                # Patched 3-tuple entries carry no span slot (see
                # _run_job_entry); tolerate both shapes.
                result, seconds, taxonomy = payload[0], payload[1], payload[2]
                worker_spans = payload[3] if len(payload) > 3 else []
            except asyncio.TimeoutError:
                pool_future.cancel()
                shard.restart()  # the worker is presumed wedged
                self.counters.add("jobs_timed_out")
                self._count_job("timed_out")
                self._note_restart(shard, "timeout", job)
                raise ServeError(
                    "timeout",
                    f"{job.describe()} exceeded the "
                    f"{timeout:.1f}s per-job timeout",
                ) from None
            except BrokenExecutor as error:
                shard.restart()
                attempt += 1
                if attempt > self.config.retries:
                    reason = f"worker died ({type(error).__name__})"
                    self._quarantine[job.key] = reason
                    self.counters.add("jobs_crashed")
                    self._count_job("crashed")
                    self._record_event(
                        shard_name, "job-quarantined", key=job.key, reason=reason
                    )
                    self._note_restart(shard, "worker-crash", job)
                    raise ServeError(
                        "worker-crash",
                        f"{job.describe()}: {reason} after "
                        f"{attempt} attempt(s); key quarantined",
                    ) from error
                self.counters.add("worker_retries")
                self._count_job("retried")
                self._record_event(
                    shard_name, "job-retry", key=job.key, attempt=attempt
                )
                await asyncio.sleep(self.config.backoff * (2 ** (attempt - 1)))
            except ServeError:
                raise
            except Exception as error:  # worker raised: the job itself failed
                raise ServeError(
                    "internal",
                    f"{job.describe()} failed: {type(error).__name__}: {error}",
                ) from error
            else:
                _runner._memory_cache[job.key] = result
                sink = telemetry.maybe_spans()
                if sink is not None:
                    for span_dict in worker_spans:
                        sink.record(span_dict)
                return FlightResult(
                    result=result,
                    cached=False,
                    source="simulated",
                    seconds=seconds,
                    taxonomy=taxonomy,
                )

    def _note_restart(self, shard: WorkerShard, reason: str, job: SimJob) -> None:
        """Shard-restart telemetry: labeled counter, ring event, crash dump.

        Called *after* the restart on the crash/timeout paths — exactly
        the moments the flight recorder exists for, so the shard's ring
        (ending with this job's final events) is dumped to an artifact.
        """
        tel = telemetry.maybe()
        if tel is not None:
            tel.counter(
                "repro_sched_restarts_total",
                "Worker-shard restarts by shard and reason.",
                labels=("shard", "reason"),
            ).inc(shard=str(shard.index), reason=reason)
        shard_name = f"shard-{shard.index}"
        self._record_event(
            shard_name, "shard-restart", reason=reason, key=job.key
        )
        rec = telemetry.maybe_recorder()
        if rec is not None:
            rec.dump(shard_name, reason)
