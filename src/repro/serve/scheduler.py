"""Sharded asyncio scheduler: single-flight, priority, cancellation.

The server's execution core.  Jobs are hashed by cache key onto a fixed
set of :class:`WorkerShard` slots (each one process — or one thread in
``thread`` mode for tests), so one poisoned key can only wedge its own
shard while the others keep serving.  Per shard, queued flights drain in
``(-priority, arrival)`` order off a heap.

**Single-flight across clients.**  :meth:`Scheduler.submit` coalesces by
cache key: while a flight for a key is queued or running, later submits
join it (refcounted) instead of spawning duplicate work — the service
extension of ``run_cached``'s in-process single-flight.  Cache hits
(memory, then disk) resolve in ``submit`` itself and never touch a pool.

**Failure containment.**  A worker that dies mid-job (``BrokenExecutor``)
gets its shard restarted and the job retried with exponential backoff;
when retries are exhausted the key is quarantined — subsequent submits
fail fast with ``quarantined`` instead of re-crashing workers.  A job
past its timeout gets its shard restarted (the worker may be wedged) and
fails with ``timeout``.  Every failure is a typed
:class:`~repro.serve.protocol.ServeError` scoped to its own flight;
other flights, on the same shard or not, are unaffected.

**Cancellation.**  Flights are refcounted by interested requests.
Releasing the last reference cancels the flight: a queued flight is
dropped before dispatch (lazy heap deletion); a running one has its
worker killed via shard restart, leaving the shard schedulable.

The worker entry point is the module-level :func:`_run_job_entry`
trampoline resolving :data:`_JOB_ENTRY` at call time — fault-injection
tests repoint ``_JOB_ENTRY`` and fork-started workers inherit the patch.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.analysis import runner as _runner
from repro.analysis.parallel import (
    SimJob,
    _pool_context,
    _worker_init,
    resolve_job_timeout,
)
from repro.common.stats import StatBlock
from repro.core.configs import SimConfig
from repro.core.pipeline import SimResult, Simulator
from repro.serve import eviction
from repro.serve.protocol import ServeError
from repro.workloads.suite import load_workload

__all__ = [
    "Flight",
    "FlightResult",
    "Scheduler",
    "WorkerShard",
]


def _default_shards() -> int:
    raw = os.environ.get("REPRO_SERVE_SHARDS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(2, min(4, (os.cpu_count() or 2) // 2))


def _default_job_entry(
    workload: str, config: SimConfig, n_instructions: int
) -> tuple[SimResult, float, dict[str, Any] | None]:
    """Worker-side job body: simulate (observing) and persist to disk.

    Mirrors ``repro.analysis.parallel._execute_job`` — same cache key,
    same atomic store, so served results are interchangeable with CLI
    runs — but runs the simulator with the observer on so the stall
    taxonomy can be streamed back.  Observation is bit-identical to the
    unobserved run, so the cached entry is too.
    """
    start = time.perf_counter()  # lint-ok: SIM002 worker timing telemetry, never touches results
    key = _runner.cache_key(workload, n_instructions, config)
    result = _runner._load_disk(key)
    taxonomy: dict[str, Any] | None = None
    if result is None:
        spec = load_workload(workload, n_instructions)
        sim = Simulator(spec.trace, config, name=workload, observe=True)
        result = sim.run()
        if sim.observer is not None:
            taxonomy = sim.observer.taxonomy.as_dict()
        _runner._store_disk(key, result)
    return result, time.perf_counter() - start, taxonomy  # lint-ok: SIM002 timing telemetry


#: The active worker job body.  Fault-injection tests repoint this;
#: fork-started pool workers inherit the patch.
_JOB_ENTRY = _default_job_entry


def _run_job_entry(
    workload: str, config: SimConfig, n_instructions: int
) -> tuple[SimResult, float, dict[str, Any] | None]:
    """Picklable trampoline: resolves :data:`_JOB_ENTRY` in the worker."""
    return _JOB_ENTRY(workload, config, n_instructions)


def _terminate_pool(pool: Executor) -> None:
    """Tear a pool down without joining its (possibly wedged) workers.

    ``_processes`` is snapshotted *before* shutdown — the executor's
    management thread nulls it out during teardown.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


@dataclass(frozen=True)
class FlightResult:
    """What one resolved flight hands every joined request."""

    result: SimResult
    cached: bool
    source: str  # "memory" | "disk" | "simulated"
    seconds: float
    taxonomy: dict[str, Any] | None


# Flight lifecycle states.
_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"


class Flight:
    """One in-progress (or resolved) simulation, shared by every request
    that asked for its key while it was alive."""

    def __init__(self, job: SimJob, priority: int, timeout: float | None) -> None:
        self.job = job
        self.key = job.key
        self.priority = priority
        self.timeout = timeout
        self.state = _QUEUED
        self.refs = 1
        self.future: asyncio.Future[FlightResult] = (
            asyncio.get_running_loop().create_future()
        )
        #: Progress-event callbacks (one per streaming subscriber).
        self.subscribers: list[Callable[[dict[str, Any]], None]] = []
        #: The dispatcher's work task while running (cancellation handle).
        self._work: asyncio.Task[Any] | None = None

    def emit(self, event: dict[str, Any]) -> None:
        for callback in list(self.subscribers):
            callback(event)

    async def wait(self) -> FlightResult:
        """Wait for resolution without cancelling the shared flight if
        *this* waiter is cancelled (other requests may still want it)."""
        return await asyncio.shield(self.future)

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _CANCELLED)


class WorkerShard:
    """One execution slot: a single-worker pool that can be restarted."""

    def __init__(self, index: int, mode: str = "process") -> None:
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown shard mode {mode!r}")
        self.index = index
        self.mode = mode
        self.restarts = 0
        self.wake = asyncio.Event()
        #: ``(-priority, seq, key)`` heap of queued flight keys.
        self.heap: list[tuple[int, int, str]] = []
        self._pool: Executor | None = None

    def pool(self) -> Executor:
        if self._pool is None:
            if self.mode == "process":
                context = _pool_context()
                if context is None:  # no usable start method on this platform
                    self._pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"repro-shard-{self.index}"
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_worker_init,
                        initargs=(os.getpid(),),
                    )
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{self.index}"
                )
        return self._pool

    def submit(self, job: SimJob) -> Future[tuple[SimResult, float, dict[str, Any] | None]]:
        return self.pool().submit(
            _run_job_entry, job.workload, job.config, job.n_instructions
        )

    def restart(self) -> None:
        """Kill this shard's worker (it may be wedged) and start fresh."""
        pool, self._pool = self._pool, None
        self.restarts += 1
        if pool is None:
            return
        _terminate_pool(pool)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            _terminate_pool(pool)


@dataclass
class _SchedulerConfig:
    shards: int
    mode: str
    job_timeout: float | None
    retries: int
    backoff: float


class Scheduler:
    """Sharded, single-flight, priority-aware job scheduler.

    Parameters
    ----------
    shards:
        Worker-slot count (default: ``REPRO_SERVE_SHARDS`` or a
        core-count heuristic).  Each shard owns one worker.
    mode:
        ``"process"`` (isolated workers, restartable on crash/timeout) or
        ``"thread"`` (in-process, for tests — crashes cannot be contained
        but everything is observable and fast).
    job_timeout:
        Per-job budget in seconds (default ``REPRO_SIM_JOB_TIMEOUT``).
    retries:
        Worker-crash retries per flight before the key is quarantined.
    backoff:
        Base of the exponential retry backoff, in seconds.
    """

    def __init__(
        self,
        shards: int | None = None,
        *,
        mode: str = "process",
        job_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
    ) -> None:
        self.config = _SchedulerConfig(
            shards=shards if shards is not None else _default_shards(),
            mode=mode,
            job_timeout=resolve_job_timeout(job_timeout),
            retries=max(0, retries),
            backoff=backoff,
        )
        self.counters = StatBlock("serve_scheduler")
        self.shards = [
            WorkerShard(i, mode=mode) for i in range(self.config.shards)
        ]
        self._flights: dict[str, Flight] = {}
        self._quarantine: dict[str, str] = {}
        self._seq = itertools.count()
        self._dispatchers: list[asyncio.Task[None]] = []
        self._closing = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._dispatchers:
            return
        self._closing = False
        self._dispatchers = [
            asyncio.create_task(self._dispatch(shard), name=f"shard-{shard.index}")
            for shard in self.shards
        ]

    async def close(self) -> None:
        self._closing = True
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        for flight in list(self._flights.values()):
            if not flight.done:
                self._finish(
                    flight, error=ServeError("cancelled", "scheduler shut down")
                )
        for shard in self.shards:
            shard.close()

    # -- submission ---------------------------------------------------------

    def shard_for(self, key: str) -> WorkerShard:
        return self.shards[int(key, 16) % len(self.shards)]

    def submit(
        self, job: SimJob, *, priority: int = 0, timeout: float | None = None
    ) -> Flight:
        """Resolve-or-enqueue one job; returns its (possibly shared) flight.

        Raises :class:`ServeError` (``quarantined`` / ``cache-corrupt``)
        instead of enqueueing when the key is known-bad or the cache tier
        itself fails.
        """
        self.counters.add("jobs_requested")
        quarantined = self._quarantine.get(job.key)
        if quarantined is not None:
            self.counters.add("jobs_quarantined")
            raise ServeError(
                "quarantined", f"{job.describe()} is quarantined: {quarantined}"
            )

        flight = self._flights.get(job.key)
        if flight is not None and not flight.done:
            flight.refs += 1
            if priority > flight.priority:
                # Escalate: requeue under the higher priority (the heap
                # entry for the old priority is lazily skipped).
                flight.priority = priority
                if flight.state == _QUEUED:
                    self._enqueue(flight)
            self.counters.add("jobs_coalesced")
            return flight

        cached, source = self._probe_cache(job)
        if cached is not None:
            self.counters.add(f"jobs_from_{source}")
            flight = Flight(job, priority, timeout)
            flight.state = _DONE
            flight.future.set_result(
                FlightResult(
                    result=cached,
                    cached=True,
                    source=source,
                    seconds=0.0,
                    taxonomy=None,
                )
            )
            return flight

        flight = Flight(
            job, priority, timeout if timeout is not None else self.config.job_timeout
        )
        self._flights[job.key] = flight
        eviction.protect(job.key)
        self._enqueue(flight)
        return flight

    def release(self, flight: Flight) -> None:
        """Drop one request's interest in ``flight``; the last release
        cancels it (queued → dropped; running → worker killed)."""
        if flight.done:
            return
        flight.refs -= 1
        if flight.refs > 0:
            return
        if flight.state == _RUNNING and flight._work is not None:
            flight._work.cancel()
            return  # the dispatcher finishes the cancellation
        self._finish(
            flight,
            error=ServeError("cancelled", f"{flight.job.describe()} cancelled"),
        )

    def clear_quarantine(self, key: str | None = None) -> int:
        """Forget quarantined keys (all of them when ``key`` is None)."""
        if key is not None:
            return 1 if self._quarantine.pop(key, None) is not None else 0
        count = len(self._quarantine)
        self._quarantine.clear()
        return count

    def stats(self) -> dict[str, Any]:
        return {
            "counters": self.counters.as_dict(),
            "shards": len(self.shards),
            "mode": self.config.mode,
            "queued": sum(len(shard.heap) for shard in self.shards),
            "in_flight": sum(
                1 for f in self._flights.values() if f.state == _RUNNING
            ),
            "restarts": sum(shard.restarts for shard in self.shards),
            "quarantined": sorted(self._quarantine),
        }

    # -- internals ----------------------------------------------------------

    def _probe_cache(self, job: SimJob) -> tuple[SimResult | None, str]:
        result = _runner._memory_cache.get(job.key)
        if result is not None:
            return result, "memory"
        try:
            result = _runner._load_disk(job.key)
        except Exception as error:
            self.counters.add("cache_errors")
            raise ServeError(
                "cache-corrupt",
                f"cache read for {job.describe()} failed: "
                f"{type(error).__name__}: {error}",
            ) from error
        if result is not None:
            _runner._memory_cache[job.key] = result
            return result, "disk"
        return None, ""

    def _enqueue(self, flight: Flight) -> None:
        shard = self.shard_for(flight.key)
        heapq.heappush(
            shard.heap, (-flight.priority, next(self._seq), flight.key)
        )
        shard.wake.set()

    def _finish(
        self,
        flight: Flight,
        outcome: FlightResult | None = None,
        error: ServeError | None = None,
    ) -> None:
        if flight.done:
            return
        cancelled = error is not None and error.code == "cancelled"
        flight.state = _CANCELLED if cancelled else _DONE
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
        eviction.unprotect(flight.key)
        if not flight.future.done():
            if error is not None:
                if error.code == "cancelled":
                    self.counters.add("jobs_cancelled")
                flight.future.set_exception(error)
            else:
                assert outcome is not None
                flight.future.set_result(outcome)
        # A consumed exception that nobody awaits must not warn at GC.
        if error is not None:
            flight.future.exception()

    async def _dispatch(self, shard: WorkerShard) -> None:
        """One shard's drain loop: pop priority order, execute, resolve."""
        while not self._closing:
            await shard.wake.wait()
            shard.wake.clear()
            while shard.heap:
                _, _, key = heapq.heappop(shard.heap)
                flight = self._flights.get(key)
                if flight is None or flight.done or flight.state != _QUEUED:
                    continue  # cancelled, resolved, or an escalated duplicate
                flight.state = _RUNNING
                flight.emit(
                    {
                        "event": "job-started",
                        "key": flight.key,
                        "workload": flight.job.workload,
                    }
                )
                work = asyncio.ensure_future(self._run_flight(shard, flight))
                flight._work = work
                try:
                    outcome = await work
                except asyncio.CancelledError:
                    if self._closing:
                        raise
                    # Cancelled mid-run by the last release(): the worker
                    # may still be crunching — kill it so the shard is
                    # immediately schedulable again.
                    shard.restart()
                    self._finish(
                        flight,
                        error=ServeError(
                            "cancelled", f"{flight.job.describe()} cancelled"
                        ),
                    )
                except ServeError as error:
                    self.counters.add("jobs_failed")
                    self._finish(flight, error=error)
                else:
                    self.counters.add("jobs_simulated")
                    self._finish(flight, outcome)

    async def _run_flight(self, shard: WorkerShard, flight: Flight) -> FlightResult:
        """Execute one flight on its shard: timeout, retry, quarantine."""
        job = flight.job
        timeout = flight.timeout
        attempt = 0
        while True:
            pool_future = shard.submit(job)
            self.counters.add("pool_dispatches")
            try:
                result, seconds, taxonomy = await asyncio.wait_for(
                    asyncio.wrap_future(pool_future), timeout
                )
            except asyncio.TimeoutError:
                pool_future.cancel()
                shard.restart()  # the worker is presumed wedged
                self.counters.add("jobs_timed_out")
                raise ServeError(
                    "timeout",
                    f"{job.describe()} exceeded the "
                    f"{timeout:.1f}s per-job timeout",
                ) from None
            except BrokenExecutor as error:
                shard.restart()
                attempt += 1
                if attempt > self.config.retries:
                    reason = f"worker died ({type(error).__name__})"
                    self._quarantine[job.key] = reason
                    self.counters.add("jobs_crashed")
                    raise ServeError(
                        "worker-crash",
                        f"{job.describe()}: {reason} after "
                        f"{attempt} attempt(s); key quarantined",
                    ) from error
                self.counters.add("worker_retries")
                await asyncio.sleep(self.config.backoff * (2 ** (attempt - 1)))
            except ServeError:
                raise
            except Exception as error:  # worker raised: the job itself failed
                raise ServeError(
                    "internal",
                    f"{job.describe()} failed: {type(error).__name__}: {error}",
                ) from error
            else:
                _runner._memory_cache[job.key] = result
                return FlightResult(
                    result=result,
                    cached=False,
                    source="simulated",
                    seconds=seconds,
                    taxonomy=taxonomy,
                )
